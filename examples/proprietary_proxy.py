"""The paper's headline use case (§II-B.a): a company distributes a
synthetic clone of proprietary code instead of the code itself.

Scenario: a "phone company" has a proprietary voice codec.  It wants a
hardware vendor to tune a cache hierarchy for it, without shipping the
codec.  The clone must (1) expose no source similarity and (2) rank the
candidate cache designs the same way the real codec does.

Run:  python examples/proprietary_proxy.py
"""

from repro import compare_sources, profile_workload, synthesize
from repro.cc import compile_program
from repro.sim import run_binary
from repro.sim.cache import CacheConfig, simulate_cache
from repro.workloads import WORKLOADS


def rank_caches(trace, candidates):
    """Rank cache configurations by miss rate for one address stream."""
    scored = []
    for config in candidates:
        cache = simulate_cache(trace.mem_addrs, config)
        scored.append((cache.miss_rate, config))
    scored.sort(key=lambda item: item[0])
    return scored


def main() -> None:
    # The "proprietary codec": our adpcm workload stands in for it.
    source = WORKLOADS["adpcm"].source_for("large")
    print("Profiling the proprietary codec (never leaves the company)...")
    profile, original_trace = profile_workload(source)

    print("Generating the distributable clone...")
    clone = synthesize(profile, target_instructions=20_000)

    print("\n-- obfuscation check (what the company verifies before "
          "shipping, §V-E) --")
    report = compare_sources(source, clone.source)
    print(f"  Moss-style similarity : {report.moss_similarity:.3f}")
    print(f"  JPlag-style similarity: {report.jplag_similarity:.3f}")
    print(f"  flagged as plagiarism : {report.flagged}")
    assert not report.flagged, "refuse to ship a leaky clone!"

    print("\n-- the hardware vendor's study (only has the clone) --")
    candidates = [
        CacheConfig(2 * 1024, 32, 2),
        CacheConfig(4 * 1024, 32, 4),
        CacheConfig(8 * 1024, 32, 4),
        CacheConfig(16 * 1024, 32, 8),
    ]
    clone_trace = run_binary(compile_program(clone.source, "x86", 0).binary)
    vendor_ranking = rank_caches(clone_trace, candidates)
    company_ranking = rank_caches(original_trace, candidates)

    print(f"  {'design':24s} {'clone miss':>11s} {'codec miss':>11s}")
    for (clone_miss, config), (codec_miss, _) in zip(
        vendor_ranking, company_ranking
    ):
        print(f"  {config.describe():24s} {clone_miss:>10.3%} {codec_miss:>10.3%}")

    vendor_best = vendor_ranking[0][1]
    company_best = company_ranking[0][1]
    print(f"\n  vendor picks : {vendor_best.describe()}")
    print(f"  company needs: {company_best.describe()}")
    print("  => the proxy led the vendor to the same design"
          if vendor_best == company_best
          else "  => rankings diverge (inspect the profile!)")


if __name__ == "__main__":
    main()
