"""Quickstart: clone a workload and verify the clone is a faithful proxy.

This walks the paper's Fig. 1 pipeline end to end:

  original C  --compile -O0-->  binary  --profile-->  statistical profile
  --synthesize-->  synthetic C  --compile anywhere-->  proxy measurements

Run:  python examples/quickstart.py
"""

from repro import compile_program, profile_workload, run_binary, synthesize

# A small "proprietary" workload: a hash-join-ish kernel.
ORIGINAL = r"""
int keys[4096];
int table[1024];

int probe(int n) {
  int hits = 0;
  int i;
  for (i = 0; i < n; i++) {
    int key = keys[i & 4095];
    int slot = (key * 2654435761) & 1023;
    if (table[slot] == (key & 255)) {
      hits++;
    } else {
      table[slot] = key & 255;
    }
  }
  return hits;
}

int main() {
  int i;
  for (i = 0; i < 4096; i++) {
    keys[i] = i * 7919 + 13;
  }
  printf("hits=%d\n", probe(30000));
  return 0;
}
"""


def describe(tag: str, trace) -> None:
    mix = trace.instruction_mix().paper_mix()
    print(f"  {tag:9s} {trace.instructions:>9d} instructions | "
          f"loads {mix['loads']:.2f}  stores {mix['stores']:.2f}  "
          f"branches {mix['branches']:.2f}  others {mix['others']:.2f}")


def main() -> None:
    print("1. Profiling the original at -O0 (the paper's convention)...")
    profile, original_trace = profile_workload(ORIGINAL)
    describe("original", original_trace)

    print("2. Synthesizing a clone targeting ~20k instructions...")
    clone = synthesize(profile, target_instructions=20_000)
    print(f"  reduction factor R = {clone.reduction_factor}")
    print(f"  pattern coverage   = {clone.pattern_stats.coverage():.1%}")

    print("3. Running the clone on every ISA at -O0 and -O2...")
    for isa in ("x86", "x86_64", "ia64"):
        for level in (0, 2):
            binary = compile_program(clone.source, isa, level).binary
            trace = run_binary(binary)
            describe(f"{isa}/O{level}", trace)

    speedup = original_trace.instructions / run_binary(
        compile_program(clone.source, "x86", 0).binary
    ).instructions
    print(f"4. The clone runs {speedup:.1f}x fewer instructions "
          "while matching the mix above.")
    print()
    print("--- first 30 lines of the generated benchmark ---")
    print("\n".join(clone.source.splitlines()[:30]))


if __name__ == "__main__":
    main()
