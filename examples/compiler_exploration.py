"""Compiler-space exploration with synthetic clones (§II-B.b).

Iterative compilation evaluates many optimization settings to find the
best one for a given program.  Because the clone is ~30x shorter-running,
sweeping the compiler space on the clone is ~30x cheaper — provided the
clone ranks the settings the way the original would.  This example
checks exactly that, across all three ISAs.

Run:  python examples/compiler_exploration.py
"""

from repro import compile_program, profile_workload, run_binary, synthesize
from repro.workloads import WORKLOADS

LEVELS = (0, 1, 2, 3)
ISAS = ("x86", "x86_64", "ia64")


def sweep(source: str, isa: str) -> dict[int, int]:
    """Dynamic instruction count at every optimization level."""
    return {
        level: run_binary(compile_program(source, isa, level).binary).instructions
        for level in LEVELS
    }


def main() -> None:
    source = WORKLOADS["sha"].source_for("small")
    print("Profiling sha/small and generating its clone...")
    profile, _ = profile_workload(source)
    clone = synthesize(profile, target_instructions=20_000)

    total_original = 0
    total_clone = 0
    agreements = 0
    for isa in ISAS:
        original = sweep(source, isa)
        synthetic = sweep(clone.source, isa)
        total_original += sum(original.values())
        total_clone += sum(synthetic.values())
        best_original = min(original, key=original.get)
        best_synthetic = min(synthetic, key=synthetic.get)
        agreements += best_original == best_synthetic
        print(f"\n  {isa}:")
        print(f"    {'level':6s} {'original':>10s} {'clone':>8s}")
        for level in LEVELS:
            marker = ""
            if level == best_original:
                marker += "  <- original's best"
            if level == best_synthetic:
                marker += "  <- clone's best"
            print(f"    O{level:<5d} {original[level]:>10d} "
                  f"{synthetic[level]:>8d}{marker}")

    print(f"\nClone agreed with the original on {agreements}/{len(ISAS)} ISAs.")
    print(f"Exploration cost: {total_clone:,} instructions on clones vs "
          f"{total_original:,} on originals "
          f"({total_original / total_clone:.1f}x saved).")


if __name__ == "__main__":
    main()
