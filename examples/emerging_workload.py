"""Generating an emerging/future workload (§II-B.c).

The framework can synthesize benchmarks for workloads that do not exist
yet: build a statistical profile by hand — here, a "future pointer-heavy
analytics" profile with a large random-access working set and hard
branches — and generate a benchmark from it.  We do this by writing a
tiny generator kernel with the desired characteristics, profiling it,
then dialing the memory classes up through the profile before synthesis.

Run:  python examples/emerging_workload.py
"""

from repro import compile_program, profile_workload, run_binary, synthesize
from repro.sim.cache import sweep_cache_sizes

# A seed kernel with the control-flow shape we expect of the future
# workload (chasing, branching); its memory behaviour gets re-specified.
SEED = r"""
int nodes[8192];
int main() {
  int total = 0;
  int cursor = 7;
  int i;
  for (i = 0; i < 12000; i++) {
    cursor = nodes[cursor & 8191] + i;
    if ((cursor & 5) == 1) {
      total = total + cursor;
    } else {
      total = total ^ cursor;
    }
  }
  printf("%d\n", total);
  return 0;
}
"""


def main() -> None:
    print("Profiling the seed kernel...")
    profile, _ = profile_workload(SEED)

    print("Re-specifying memory behaviour: every hot access becomes a "
          "50%-miss (Table I class 4) walk over a 64KB working set...")
    for stats in profile.memory.stats.values():
        if stats.accesses > 1000:
            # Class 4 at the 8KB profiling cache = 43.75-56.25% misses.
            stats.misses_by_size = {
                size: stats.accesses // 2
                for size in (1024, 2048, 4096, 8192, 16384, 32768)
            }

    print("Synthesizing the emerging workload...")
    future = synthesize(profile, target_instructions=30_000)
    trace = run_binary(compile_program(future.source, "x86", 0).binary)

    print(f"  {trace.instructions:,} instructions")
    rates = sweep_cache_sizes(
        trace.mem_addrs, [kb * 1024 for kb in (4, 8, 16, 64, 256)]
    )
    accesses = len(trace.mem_addrs)
    print("  cache behaviour of the generated benchmark:")
    for size, rate in sorted(rates.items()):
        misses = round((1.0 - rate) * accesses)
        print(f"    {size // 1024:>4d}KB: {rate:.2%} hits ({misses} misses)")
    small_misses = (1.0 - rates[4 * 1024]) * accesses
    big_misses = (1.0 - rates[256 * 1024]) * accesses
    print(f"  -> {small_misses / max(1.0, big_misses):.0f}x more misses below "
          "the 128KB stream than above it: a working-set stressor the seed "
          "kernel never was.")


if __name__ == "__main__":
    main()
