"""Benchmark consolidation (§II-B.e): many workloads, one benchmark.

Merges the statistical profiles of three workloads into a single
consolidated synthetic benchmark, then shows that the consolidated
benchmark's behaviour sits where a suite-average would — one program to
hand to a partner instead of a whole proprietary suite (which also
further obfuscates each constituent).

Run:  python examples/benchmark_consolidation.py
"""

from repro import (
    compile_program,
    profile_workload,
    run_binary,
    synthesize_consolidated,
)
from repro.workloads import WORKLOADS

MEMBERS = ("adpcm", "crc32", "qsort")


def main() -> None:
    profiles = []
    mixes = []
    print("Profiling the constituent workloads...")
    for name in MEMBERS:
        source = WORKLOADS[name].source_for("small")
        profile, trace = profile_workload(source)
        profiles.append(profile)
        mixes.append(trace.instruction_mix().paper_mix())
        print(f"  {name:8s} {trace.instructions:>8d} instructions")

    print("\nConsolidating into one synthetic benchmark...")
    merged = synthesize_consolidated(profiles, target_instructions=30_000)
    binary = compile_program(merged.source, "x86", 0).binary
    trace = run_binary(binary)
    merged_mix = trace.instruction_mix().paper_mix()

    average_mix = {
        key: sum(mix[key] for mix in mixes) / len(mixes)
        for key in ("loads", "stores", "branches", "others")
    }
    print(f"  consolidated clone: {trace.instructions:,} instructions "
          f"(originals total "
          f"{sum(p.total_instructions for p in profiles):,})")
    print(f"\n  {'category':10s} {'suite avg':>10s} {'consolidated':>13s}")
    for key in ("loads", "stores", "branches", "others"):
        print(f"  {key:10s} {average_mix[key]:>10.3f} {merged_mix[key]:>13.3f}")

    print("\nThe consolidated benchmark also compiles at any level/ISA:")
    for isa in ("x86_64", "ia64"):
        o2 = run_binary(compile_program(merged.source, isa, 2).binary)
        print(f"  {isa}/O2: {o2.instructions:,} instructions")


if __name__ == "__main__":
    main()
