"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e . --no-use-pep517`` path.
"""

from setuptools import setup

setup()
