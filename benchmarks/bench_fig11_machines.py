"""Fig. 11 — normalized execution time across five machines x four
optimization levels (consolidated synthetic vs suite average).

Paper's findings: Core i7 fastest overall, Itanium 2 slowest; -O2/-O3
give the Itanium a bigger boost than the out-of-order x86 machines; the
synthetic's speedup-prediction error stays bounded (paper: <20% max,
7.4% average — we allow a looser band for the simulated substrate).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig11_machines import run_fig11

PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("fft", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
)


def test_fig11(benchmark, runner):
    result = run_once(benchmark, run_fig11, runner, PAIRS)
    print()
    print(result.format_table())
    org = result.original
    # Machine ordering at -O0: Itanium slowest, Core i7 fastest.
    o0_times = {name: t for (name, lvl), t in org.items() if lvl == 0}
    assert max(o0_times, key=o0_times.get) == "Itanium 2"
    assert min(o0_times, key=o0_times.get) == "Core i7"
    # Synthetic reproduces the ordering.
    syn_o0 = {name: t for (name, lvl), t in result.synthetic.items() if lvl == 0}
    assert max(syn_o0, key=syn_o0.get) == "Itanium 2"
    assert min(syn_o0, key=syn_o0.get) == "Core i7"
    # Itanium gains more from O0->O2 than the Pentium 4 (EPIC story).
    itanium_gain = org[("Itanium 2", 0)] / org[("Itanium 2", 2)]
    p4_gain = org[("Pentium 4, 3GHz", 0)] / org[("Pentium 4, 3GHz", 2)]
    assert itanium_gain > p4_gain
    # Error bounds (paper: avg 7.4%, max <20%; simulated substrate gets
    # a wider allowance).
    assert result.average_error < 0.20, result.average_error
    assert result.max_error < 0.45, result.max_error
