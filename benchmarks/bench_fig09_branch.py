"""Fig. 9 — hybrid branch-predictor accuracy, original vs synthetic.

Paper's finding: accuracies live in the 84-100% band and the synthetic
mirrors which benchmarks are predictor-sensitive (adpcm is the outlier).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig09_branch import run_fig09


def test_fig09(benchmark, runner, pairs):
    result = run_once(benchmark, run_fig09, runner, pairs)
    print()
    print(result.format_table())
    for row in result.rows:
        assert row["accuracy"] > 0.70, row
    # Synthetic tracks original within 9 points on average at -O0.
    gaps = []
    for workload, input_name in pairs:
        org = result.accuracy(workload, input_name, "ORG", 0)
        syn = result.accuracy(workload, input_name, "SYN", 0)
        gaps.append(abs(org - syn))
    assert sum(gaps) / len(gaps) < 0.09, gaps
