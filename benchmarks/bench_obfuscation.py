"""§V-E — plagiarism detectors find no similarity original <-> clone.

Paper's finding: Moss and JPlag both report no similarity between any
original workload and its synthetic clone, while (sanity check) an
original compared against itself scores ~100%.
"""

from benchmarks.conftest import run_once
from repro.experiments.obfuscation import run_obfuscation


def test_obfuscation(benchmark, runner, pairs):
    result = run_once(benchmark, run_obfuscation, runner, pairs)
    print()
    print(result.format_table())
    assert not result.any_flagged, "a clone leaked similarity"
    for row in result.rows:
        assert row["self_moss"] == 1.0  # the detectors do detect copies
        assert row["moss"] < 0.25
        assert row["jplag"] < 0.25
