"""Fig. 5 — normalized dynamic instruction count across -O0..-O3.

Paper's finding: both originals and synthetics drop by roughly a third
from -O0 to any higher optimization level, and the synthetic tracks the
original.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig05_optlevels import run_fig05


def test_fig05(benchmark, runner, pairs):
    result = run_once(benchmark, run_fig05, runner, pairs)
    print()
    print(result.format_table())
    # Both sides normalized to 1.0 at O0.
    assert result.original[0] == 1.0
    assert result.synthetic[0] == 1.0
    # Both drop substantially at O1+ (paper: ~1/3).
    for level in (1, 2, 3):
        assert result.original[level] < 0.85, result.original
        assert result.synthetic[level] < 0.95, result.synthetic
    # The synthetic tracks the original within 0.2 normalized units.
    for level in (1, 2, 3):
        assert abs(result.original[level] - result.synthetic[level]) < 0.2
