"""Replay-kernel throughput: python vs numpy, per machine config.

Unlike the figure benchmarks (which time whole pipelines through the
engine), these time *one replay* of the suite's longest trace —
bitcount/large at the engine's ``-O0`` reference — through each Table
III machine's cycle model, three ways:

* ``python`` — the pure-python ``TimingModel.replay`` loop;
* ``numpy-cold`` — the batched kernel from nothing: trace packing,
  vectorized cache/branch simulation, interpretation with an empty
  segment memo (the first replay of a binary in a fresh process);
* ``numpy-warm`` — the steady state the engine actually lives in, with
  the per-binary pack and segment memo populated (every replay of a
  binary after its first, e.g. across the explorer's machine sweeps).

Each measurement records ``extra_info["replay"]`` — kernel, machine,
instruction count and instrs/sec — so the ``BENCH_engine.json``
trajectory artifact carries python-vs-numpy replay throughput per
machine config (``python -m repro.engine.bench replay BENCH.json``
prints the table; ``scripts/print_bench_summary.py`` diffs it in CI).

``test_speedup_longest_trace`` is the acceptance gate: warm numpy must
replay the longest trace >= 10x faster than python on the default
machines.
"""

from __future__ import annotations

import time

import pytest

from repro.cc.driver import compile_program
from repro.sim import kernels
from repro.sim.inorder import InOrderModel
from repro.sim.machines import MACHINES
from repro.sim.ooo import OutOfOrderModel
from repro.sim.timing_common import decode_binary
from repro.workloads import WORKLOADS

#: The suite's longest trace at the engine's reference config
#: (``repro.engine.tasks``: x86, -O0) — ~2.8M dynamic instructions.
LONGEST_PAIR = ("bitcount", "large")

_TRACE = {}


def _ref_trace():
    if "trace" not in _TRACE:
        from repro.sim.functional import run_binary

        workload, input_name = LONGEST_PAIR
        source = WORKLOADS[workload].source_for(input_name)
        binary = compile_program(source, "x86", 0).binary
        _TRACE["trace"] = run_binary(binary)
    return _TRACE["trace"]


def _clear_kernel_caches() -> None:
    """Forget every per-binary/per-trace kernel artifact (packs, static
    stats, segment memos) so the next replay pays first-replay costs."""
    kernels._STAT_CACHE.clear()
    kernels._PACK_CACHE.clear()


def _timed_replay(benchmark, machine, kernel: str, fn, trace) -> float:
    """Run *fn* once under pytest-benchmark, recording replay metadata."""
    elapsed = []

    def run():
        start = time.perf_counter()
        result = fn()
        elapsed.append(time.perf_counter() - start)
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = elapsed[0]
    benchmark.extra_info["replay"] = {
        "kernel": kernel,
        "machine": machine.name,
        "pair": "/".join(LONGEST_PAIR) + "@x86-O0",
        "instructions": trace.instructions,
        "instrs_per_sec": trace.instructions / seconds if seconds else 0.0,
    }
    return seconds


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
def test_python_replay(benchmark, machine):
    trace = _ref_trace()
    decoded = decode_binary(trace.binary)
    model = machine.model()
    _timed_replay(benchmark, machine, "python",
                  lambda: model.replay(trace, decoded), trace)


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
def test_numpy_replay_cold(benchmark, machine):
    trace = _ref_trace()
    decoded = decode_binary(trace.binary)
    model = machine.model()
    _clear_kernel_caches()
    _timed_replay(benchmark, machine, "numpy-cold",
                  lambda: kernels.replay_trace(model, trace, decoded), trace)


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
def test_numpy_replay_warm(benchmark, machine):
    trace = _ref_trace()
    decoded = decode_binary(trace.binary)
    model = machine.model()
    kernels.replay_trace(model, trace, decoded)  # populate pack + memo
    _timed_replay(benchmark, machine, "numpy-warm",
                  lambda: kernels.replay_trace(model, trace, decoded), trace)


def test_speedup_longest_trace(benchmark):
    """Acceptance: warm numpy >= 10x python on the longest trace, for
    both default cycle models; the measured ratio lands in extra_info."""
    trace = _ref_trace()
    decoded = decode_binary(trace.binary)
    speedups = {}

    def measure():
        for label, model in (("ooo", OutOfOrderModel()),
                             ("inorder", InOrderModel())):
            start = time.perf_counter()
            py = model.replay(trace, decoded)
            t_py = time.perf_counter() - start
            kernels.replay_trace(model, trace, decoded)  # warm up
            start = time.perf_counter()
            fast = kernels.replay_trace(model, trace, decoded)
            t_np = time.perf_counter() - start
            assert py == fast
            speedups[label] = t_py / t_np
        return speedups

    benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["replay"] = {
        "kernel": "speedup",
        "machine": "default",
        "pair": "/".join(LONGEST_PAIR) + "@x86-O0",
        "instructions": trace.instructions,
        "speedup": {k: round(v, 2) for k, v in speedups.items()},
    }
    print()
    for label, ratio in speedups.items():
        print(f"warm replay speedup [{label}]: {ratio:.1f}x")
    assert min(speedups.values()) >= 10.0, speedups
