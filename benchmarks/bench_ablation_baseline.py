"""Ablation — SFGL synthesis vs the linear-sequence baseline (prior work).

The paper's claimed advance over Bell & John-style synthesis is the SFGL:
loops, calls and conditional structure instead of one flat block sequence.
This benchmark quantifies the fidelity gap on branch behaviour,
instruction mix and cache behaviour.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation import run_ablation


def test_ablation_sfgl_vs_linear(benchmark, runner, pairs):
    result = run_once(benchmark, run_ablation, runner, pairs)
    print()
    print(result.format_table())
    # SFGL at least matches the linear baseline on every averaged axis,
    # and strictly wins on branch behaviour (the axis loops/conditionals
    # directly control).
    assert result.average("sfgl_branch_err") <= result.average(
        "linear_branch_err"
    ) + 0.01
    assert result.average("sfgl_mix_err") <= result.average("linear_mix_err") + 0.02
    assert result.average("sfgl_cache_err") <= result.average(
        "linear_cache_err"
    ) + 0.02
