"""Fig. 10 — CPI on a 2-wide out-of-order core, varying D-cache size.

Paper's findings: fft has the highest CPI (floating point), sha the
lowest; cache-size sensitivity (dijkstra, qsort) appears on both sides;
the synthetic tracks overall CPI.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig10_cpi import run_fig10

PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("dijkstra", "large"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
)


def test_fig10(benchmark, runner):
    result = run_once(benchmark, run_fig10, runner, PAIRS)
    print()
    print(result.format_table())
    org_cpi = {
        (row["workload"]): row["cpi"][8]
        for row in result.rows
        if row["side"] == "ORG"
    }
    syn_cpi = {
        (row["workload"]): row["cpi"][8]
        for row in result.rows
        if row["side"] == "SYN"
    }
    # fft is the CPI outlier, sha among the cheapest — on BOTH sides.
    assert org_cpi["fft"] == max(org_cpi.values())
    assert syn_cpi["fft"] == max(syn_cpi.values())
    assert org_cpi["sha"] <= sorted(org_cpi.values())[1]
    assert syn_cpi["sha"] <= sorted(syn_cpi.values())[1]
    # Synthetic CPI within 35% of the original (paper shows similar
    # residual errors for its dependency/branch model limitations).
    for workload in org_cpi:
        ratio = syn_cpi[workload] / org_cpi[workload]
        assert 0.55 < ratio < 1.5, (workload, ratio)
    # Cache sensitivity: dijkstra/large's CPI drops with a bigger cache.
    dijkstra = next(
        row for row in result.rows
        if row["workload"] == "dijkstra" and row["side"] == "ORG"
    )
    assert dijkstra["cpi"][32] <= dijkstra["cpi"][8]
