"""Functional-execution throughput: python vs fast engine.

Times one functional run of the suite's longest workload —
bitcount/large at the engine's ``-O0`` reference — through both
execution engines:

* ``python`` — the reference per-instruction interpreter
  (``Simulator._run_python``);
* ``fast-cold`` — the block-compiling engine from nothing: per-binary
  source generation + ``exec`` compile + the run (the first run of a
  binary in a fresh process);
* ``fast-warm`` — the steady state the engine actually lives in, with
  the compiled unit cached and the segment-memo anchor tables adapted
  (every run of a binary after its first).

Each measurement records ``extra_info["functional"]`` — engine, pair,
instruction count and instrs/sec — so the ``BENCH_engine.json``
trajectory artifact carries python-vs-fast functional throughput
(``scripts/print_bench_summary.py`` renders the table).

``test_speedup_longest_workload`` is the acceptance gate: the warm fast
engine must execute bitcount/large >= 5x faster than the reference
interpreter with a pickle-equal trace.
"""

from __future__ import annotations

import pickle
import time

from repro.cc.driver import compile_program
from repro.sim import fastexec
from repro.sim.functional import Simulator
from repro.workloads import WORKLOADS

#: The suite's longest functional run at the engine's reference config
#: (``repro.engine.tasks``: x86, -O0) — ~2.8M dynamic instructions.
LONGEST_PAIR = ("bitcount", "large")

_BINARY = {}


def _ref_binary():
    if "binary" not in _BINARY:
        workload, input_name = LONGEST_PAIR
        source = WORKLOADS[workload].source_for(input_name)
        _BINARY["binary"] = compile_program(source, "x86", 0).binary
    return _BINARY["binary"]


def _timed_run(benchmark, engine: str, fn) -> float:
    elapsed = []

    def run():
        start = time.perf_counter()
        result = fn()
        elapsed.append(time.perf_counter() - start)
        return result

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = elapsed[0]
    benchmark.extra_info["functional"] = {
        "engine": engine,
        "pair": "/".join(LONGEST_PAIR) + "@x86-O0",
        "instructions": trace.instructions,
        "instrs_per_sec": trace.instructions / seconds if seconds else 0.0,
    }
    return seconds


def test_python_run(benchmark):
    binary = _ref_binary()
    _timed_run(benchmark, "python",
               lambda: Simulator(binary)._run_python(True))


def test_fast_run_cold(benchmark):
    binary = _ref_binary()
    fastexec._UNIT_CACHE.clear()
    _timed_run(benchmark, "fast-cold",
               lambda: fastexec.FastSimulator(binary).run(True))


def test_fast_run_warm(benchmark):
    binary = _ref_binary()
    fastexec.FastSimulator(binary).run(True)  # compile unit, adapt anchors
    _timed_run(benchmark, "fast-warm",
               lambda: fastexec.FastSimulator(binary).run(True))


def test_speedup_longest_workload(benchmark):
    """Acceptance: warm fast >= 5x python on bitcount/large, traces
    pickle-equal; the measured ratio lands in extra_info."""
    binary = _ref_binary()
    measured = {}

    def measure():
        start = time.perf_counter()
        ref = Simulator(binary)._run_python(True)
        t_py = time.perf_counter() - start
        fastexec.FastSimulator(binary).run(True)  # warm up
        start = time.perf_counter()
        fast = fastexec.FastSimulator(binary).run(True)
        t_fast = time.perf_counter() - start
        assert pickle.dumps(ref) == pickle.dumps(fast)
        measured["speedup"] = t_py / t_fast
        return measured

    benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["functional"] = {
        "engine": "speedup",
        "pair": "/".join(LONGEST_PAIR) + "@x86-O0",
        "speedup": round(measured["speedup"], 2),
    }
    print(f"\nfast functional speedup: {measured['speedup']:.1f}x")
    assert measured["speedup"] >= 5.0, measured
