"""Fig. 4 — reduction in dynamic instruction count.

Paper's finding: synthetics run ~30x fewer instructions on average, with
per-benchmark reduction factors between ~1 and ~250 (short workloads
reduce less because R clamps at 1).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig04_reduction import run_fig04


def test_fig04(benchmark, runner, pairs):
    result = run_once(benchmark, run_fig04, runner, pairs)
    print()
    print(result.format_table())
    # Shape assertions (not absolute numbers).
    assert result.average_reduction > 4, "synthetics must be much shorter"
    for row in result.rows:
        assert row["reduction"] > 1.0, row
        assert row["synthetic_instructions"] < row["original_instructions"]
    # R spans a range, as in the paper (1..250 there).
    factors = [row["reduction_factor_R"] for row in result.rows]
    assert max(factors) > 2 * min(factors)
