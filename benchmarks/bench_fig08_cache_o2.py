"""Fig. 8 — data cache hit rates across 1..32 KB at -O2.

Same sweep as Fig. 7 on the -O2 binaries: optimization removes many
always-hit scalar accesses, so overall hit rates drop slightly while the
size trend stays; the synthetic must keep tracking.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig07_cache import run_cache_figure


def test_fig08(benchmark, runner, pairs):
    result = run_once(benchmark, run_cache_figure, runner, pairs, 2)
    print()
    print(result.format_table())
    for workload, input_name in pairs:
        org = result.series(workload, input_name, "ORG")
        syn = result.series(workload, input_name, "SYN")
        assert abs(org[8 * 1024] - syn[8 * 1024]) < 0.15, (workload, org, syn)
        # Bigger caches never hurt much (monotone-ish curves).
        assert org[32 * 1024] >= org[1024] - 0.02
        assert syn[32 * 1024] >= syn[1024] - 0.02
