"""Fig. 6 — instruction mix (loads/stores/branches/others) at -O0/-O2.

Paper's finding: synthetics track the originals' mixes, and both show
the load fraction dropping (arithmetic fraction rising) at -O2 because
copy propagation removes reloads.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig06_instmix import run_fig06


def test_fig06(benchmark, runner, pairs):
    result = run_once(benchmark, run_fig06, runner, pairs)
    print()
    print(result.format_table())
    # Average mixes track within 0.12 per category at both levels.
    for level in (0, 2):
        for key in ("loads", "stores", "branches", "others"):
            org = result.average("ORG", level, key)
            syn = result.average("SYN", level, key)
            assert abs(org - syn) < 0.12, (level, key, org, syn)
    # The paper's O0 -> O2 load-fraction drop, on both sides.
    assert result.average("ORG", 2, "loads") < result.average("ORG", 0, "loads")
    assert result.average("SYN", 2, "loads") < result.average("SYN", 0, "loads")
