"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables/figures end to end
(compile originals, profile, synthesize clones, compile and measure both
sides) and asserts the paper's qualitative findings.  A session-scoped
:class:`ExperimentRunner` delegates to the engine, whose in-process memo
and persistent artifact store let later figures reuse earlier figures'
work, exactly like the paper's one-pass profiling methodology.

Every timed run records the engine's cache hit/miss/put deltas in
``benchmark.extra_info`` (so ``--benchmark-json`` output — the
``BENCH_*.json`` baselines — can attribute speedups to caching vs
compute), and the terminal summary prints the session totals.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables.  Set ``REPRO_CACHE_DIR`` to relocate the store, or
``REPRO_BENCH_NO_CACHE=1`` to benchmark pure compute.

Baseline comparison is cache-aware: point ``REPRO_BENCH_BASELINE`` at a
saved ``--benchmark-json`` file and the terminal summary classifies
each benchmark against it with :mod:`repro.engine.bench` — separating
cache-hit speedups and cache-state shifts from genuine compute
regressions.  Set ``REPRO_BENCH_EMIT_PAIR`` to a directory to also
split the baseline into its cold/warm pair (``*_cold.json`` /
``*_warm.json``) for mode-matched future comparisons.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import bench as bench_compare
from repro.engine.api import Engine
from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS

_SESSION_RUNNER: ExperimentRunner | None = None


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    global _SESSION_RUNNER
    use_cache = not os.environ.get("REPRO_BENCH_NO_CACHE")
    _SESSION_RUNNER = ExperimentRunner(
        engine=Engine(use_cache=use_cache),
    )
    return _SESSION_RUNNER


@pytest.fixture(scope="session")
def pairs():
    return QUICK_PAIRS


def _stats_snapshot(runner: ExperimentRunner | None) -> dict:
    if runner is None:
        return {}
    return dict(runner.cache_stats.as_dict())


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing.

    Cache-counter deltas for the timed call land in
    ``benchmark.extra_info["cache"]``.  The runner is taken from the
    call's own arguments: pytest loads this file twice (as the conftest
    plugin and as ``benchmarks.conftest`` for this import), so a module
    global set by the fixture in one instance is invisible to the other.
    """
    runner = next(
        (arg for arg in args if isinstance(arg, ExperimentRunner)),
        _SESSION_RUNNER,
    )
    before = _stats_snapshot(runner)
    result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                                iterations=1)
    after = _stats_snapshot(runner)
    if after:
        benchmark.extra_info["cache"] = {
            counter: after[counter] - before.get(counter, 0)
            for counter in after
        }
    return result


def _session_records(config) -> dict:
    """Current session's benchmarks as cache-aware compare records."""
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return {}
    records = {}
    for bench in session.benchmarks:
        try:
            mean = bench.stats.mean
        except (AttributeError, TypeError):
            continue
        records[bench.name] = bench_compare.BenchRecord(
            name=bench.name,
            mean=mean,
            cache=(bench.extra_info or {}).get("cache") or {},
        )
    return records


def pytest_terminal_summary(terminalreporter):
    if _SESSION_RUNNER is None:
        return
    stats = _SESSION_RUNNER.cache_stats
    store = _SESSION_RUNNER.engine.store
    root = store.root if store is not None else "(disabled)"
    terminalreporter.write_line(
        f"repro.engine cache [{root}]: {stats.hits} hits, "
        f"{stats.misses} misses, {stats.puts} puts, "
        f"{stats.evictions} evictions"
    )
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if baseline_path:
        records = _session_records(terminalreporter.config)
        if records:
            verdicts = bench_compare.compare_baselines(
                bench_compare.load_benchmark_json(baseline_path), records
            )
            terminalreporter.write_line(
                f"cache-aware comparison vs {baseline_path}:"
            )
            for line in bench_compare.format_verdicts(verdicts).splitlines():
                terminalreporter.write_line("  " + line)
            bad = bench_compare.regressions(verdicts)
            if bad:
                terminalreporter.write_line(
                    f"  WARNING: {len(bad)} genuine compute regression(s) "
                    "(cache-hit speedups excluded)"
                )
        pair_dir = os.environ.get("REPRO_BENCH_EMIT_PAIR")
        if pair_dir:
            cold, warm = bench_compare.write_cold_warm_pair(
                baseline_path, pair_dir
            )
            terminalreporter.write_line(
                f"cold/warm baseline pair: {cold} / {warm}"
            )
