"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables/figures end to end
(compile originals, profile, synthesize clones, compile and measure both
sides) and asserts the paper's qualitative findings.  A session-scoped
:class:`ExperimentRunner` memoizes compilations and traces so later
figures reuse the earlier ones' work, exactly like the paper's one-pass
profiling methodology.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def pairs():
    return QUICK_PAIRS


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
