"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables/figures end to end
(compile originals, profile, synthesize clones, compile and measure both
sides) and asserts the paper's qualitative findings.  A session-scoped
:class:`ExperimentRunner` delegates to the engine, whose in-process memo
and persistent artifact store let later figures reuse earlier figures'
work, exactly like the paper's one-pass profiling methodology.

Every timed run records the engine's cache hit/miss/put deltas in
``benchmark.extra_info`` (so ``--benchmark-json`` output — the
``BENCH_*.json`` baselines — can attribute speedups to caching vs
compute), and the terminal summary prints the session totals.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables.  Set ``REPRO_CACHE_DIR`` to relocate the store, or
``REPRO_BENCH_NO_CACHE=1`` to benchmark pure compute.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.api import Engine
from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS

_SESSION_RUNNER: ExperimentRunner | None = None


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    global _SESSION_RUNNER
    use_cache = not os.environ.get("REPRO_BENCH_NO_CACHE")
    _SESSION_RUNNER = ExperimentRunner(
        engine=Engine(use_cache=use_cache),
    )
    return _SESSION_RUNNER


@pytest.fixture(scope="session")
def pairs():
    return QUICK_PAIRS


def _stats_snapshot() -> dict:
    if _SESSION_RUNNER is None:
        return {}
    return dict(_SESSION_RUNNER.cache_stats.as_dict())


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing.

    Cache-counter deltas for the timed call land in
    ``benchmark.extra_info["cache"]``.
    """
    before = _stats_snapshot()
    result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                                iterations=1)
    after = _stats_snapshot()
    if after:
        benchmark.extra_info["cache"] = {
            counter: after[counter] - before.get(counter, 0)
            for counter in after
        }
    return result


def pytest_terminal_summary(terminalreporter):
    if _SESSION_RUNNER is None:
        return
    stats = _SESSION_RUNNER.cache_stats
    store = _SESSION_RUNNER.engine.store
    root = store.root if store is not None else "(disabled)"
    terminalreporter.write_line(
        f"repro.engine cache [{root}]: {stats.hits} hits, "
        f"{stats.misses} misses, {stats.puts} puts, "
        f"{stats.evictions} evictions"
    )
