"""Fig. 7 — data cache hit rates across 1..32 KB at -O0.

Paper's finding: the synthetic reproduces each benchmark's cache
behaviour, including dijkstra's working-set knee around 8 KB.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig07_cache import CACHE_SIZES, run_cache_figure

# dijkstra/large has the 16 KB adjacency matrix that shows the knee.
PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("dijkstra", "large"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
    ("susan", "small"),
)


def test_fig07(benchmark, runner):
    result = run_once(benchmark, run_cache_figure, runner, PAIRS, 0)
    print()
    print(result.format_table())
    for workload, input_name in PAIRS:
        org = result.series(workload, input_name, "ORG")
        syn = result.series(workload, input_name, "SYN")
        # Hit rates are high (the paper's Fig. 7 axis starts at 84%)
        # and the synthetic tracks the original at the profiling size.
        assert org[8 * 1024] > 0.8
        assert abs(org[8 * 1024] - syn[8 * 1024]) < 0.08, (workload, org, syn)
    # dijkstra/large: the most cache-sensitive benchmark; its hit rate
    # grows monotonically from 1KB to 32KB in the original (the paper's
    # working-set knee, scaled to our smaller inputs).
    org = result.series("dijkstra", "large", "ORG")
    assert org[32 * 1024] - org[1024] > 0.003
