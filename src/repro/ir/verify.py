"""IR structural invariant checker.

Run after lowering and after every optimization pass (in debug mode) to
catch malformed IR early: every block must end in exactly one terminator,
branch targets must exist, temps must be defined before use on every path
(approximated: defined somewhere in the function), and operand kinds must
match opcode expectations.
"""

from __future__ import annotations

from repro.ir.instructions import (
    ALL_BINOPS,
    Branch,
    BinOp,
    Const,
    IRFunction,
    IRProgram,
    Instr,
    Jump,
    Ret,
    Temp,
    TERMINATORS,
    UNARY_OPS,
    UnOp,
)


class IRVerificationError(AssertionError):
    """Raised when an IR invariant is violated."""


def verify_function(func: IRFunction) -> None:
    """Check structural invariants of one function; raises on violation."""
    if not func.blocks:
        raise IRVerificationError(f"{func.name}: no blocks")
    labels = [blk.label for blk in func.blocks]
    if len(labels) != len(set(labels)):
        raise IRVerificationError(f"{func.name}: duplicate labels")
    label_set = set(labels)
    defined: set[Temp] = set(func.param_temps)
    for blk in func.blocks:
        for instr in blk.instrs:
            dst = instr.defs()
            if dst is not None:
                defined.add(dst)
    for blk in func.blocks:
        if not blk.instrs or not isinstance(blk.instrs[-1], TERMINATORS):
            raise IRVerificationError(f"{func.name}/{blk.label}: missing terminator")
        for i, instr in enumerate(blk.instrs):
            if isinstance(instr, TERMINATORS) and i != len(blk.instrs) - 1:
                raise IRVerificationError(
                    f"{func.name}/{blk.label}: terminator mid-block at {i}"
                )
            _check_instr(func, blk.label, instr, defined)
        term = blk.instrs[-1]
        if isinstance(term, Branch):
            if term.then_label not in label_set or term.other_label not in label_set:
                raise IRVerificationError(
                    f"{func.name}/{blk.label}: branch to unknown label"
                )
        elif isinstance(term, Jump):
            if term.label not in label_set:
                raise IRVerificationError(f"{func.name}/{blk.label}: jump to unknown label")
        elif isinstance(term, Ret):
            if func.return_kind == "v" and term.value is not None:
                raise IRVerificationError(f"{func.name}: void function returns a value")


def _check_instr(func: IRFunction, label: str, instr: Instr, defined: set[Temp]) -> None:
    for temp in instr.uses():
        if temp not in defined:
            raise IRVerificationError(f"{func.name}/{label}: use of undefined {temp!r}")
    if isinstance(instr, BinOp):
        if instr.op not in ALL_BINOPS:
            raise IRVerificationError(f"{func.name}/{label}: unknown binop {instr.op!r}")
        _check_kinds(func, label, instr)
    if isinstance(instr, UnOp) and instr.op not in UNARY_OPS:
        raise IRVerificationError(f"{func.name}/{label}: unknown unop {instr.op!r}")


def _check_kinds(func: IRFunction, label: str, instr: BinOp) -> None:
    from repro.ir.instructions import Address

    is_float_op = instr.op.startswith("f")
    for operand in (instr.lhs, instr.rhs):
        if isinstance(operand, Address):
            continue  # fused CISC memory operand (kind checked at codegen)
        kind = operand.kind
        if is_float_op and kind != "f":
            raise IRVerificationError(
                f"{func.name}/{label}: {instr.op} with int operand {operand!r}"
            )
        if not is_float_op and kind != "i":
            raise IRVerificationError(
                f"{func.name}/{label}: {instr.op} with float operand {operand!r}"
            )
    if isinstance(instr.dst, Temp):
        expect = "i" if ("cmp" in instr.op or not is_float_op) else "f"
        if instr.dst.kind != expect:
            raise IRVerificationError(
                f"{func.name}/{label}: {instr.op} writes {instr.dst!r}, expected kind {expect}"
            )


def verify_program(program: IRProgram) -> None:
    """Verify every function in *program*."""
    for func in program.functions.values():
        verify_function(func)
