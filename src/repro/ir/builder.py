"""Lowering from the mini-C AST to three-address IR.

Two modes, selected by ``promote_scalars``:

* ``False`` (the -O0 pipeline): scalar locals and parameters live in stack
  slots; every use loads, every assignment stores.  This reproduces GCC
  -O0's code shape, which is what the paper profiles and what Table II's
  pattern recognizer expects (``movl t+512, %eax`` / ``addl`` /
  ``movl %eax, t+504`` sequences).
* ``True`` (-O1 and above): scalar locals and parameters are virtual
  registers; only globals, arrays and address-taken storage touch memory.

Short-circuit ``&&``/``||`` and the ternary operator lower to control flow
(fresh basic blocks), so the branch-behaviour profile of the program is
realistic — a key input to the SFGL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast_nodes as ast
from repro.lang.errors import SemanticError
from repro.lang.semantics import MATH_BUILTINS, SemanticAnalyzer
from repro.lang.types import Type
from repro.ir.instructions import (
    Address,
    BasicBlockRef,
    BinOp,
    Branch,
    Call,
    GlobalVar,
    IRFunction,
    IRProgram,
    Jump,
    Load,
    LoadAddress,
    LoadConst,
    Operand,
    Print,
    Ret,
    StackSlot,
    Store,
    Temp,
    UnOp,
    Const,
)

_WORD_MASK = 0xFFFFFFFF


def _to_unsigned(value: int) -> int:
    return value & _WORD_MASK


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


def _kind_of(ctype: Type) -> str:
    """Map a semantic type to an IR value kind ('i' or 'f')."""
    return "f" if ctype.is_float() else "i"


@dataclass
class _VarBinding:
    """Where a source variable lives during lowering."""

    category: str  # 'temp' | 'slot' | 'gscalar' | 'garray' | 'larray' | 'pslot_array' | 'ptemp_array'
    kind: str  # 'i' or 'f' (element kind for arrays)
    temp: Temp | None = None
    slot: StackSlot | None = None
    symbol: str | None = None


class _FunctionLowering:
    """Lowers one function body."""

    def __init__(self, builder: "IRBuilder", func_ast: ast.FuncDecl):
        self.builder = builder
        self.func_ast = func_ast
        return_kind = "v" if func_ast.return_type.is_void() else _kind_of(func_ast.return_type)
        self.func = IRFunction(name=func_ast.name, return_kind=return_kind)
        self.scopes: list[dict[str, _VarBinding]] = []
        self.break_labels: list[str] = []
        self.continue_labels: list[str] = []
        self._label_counter = 0
        self._slot_counter = 0
        self.current: BasicBlockRef | None = None

    # -- plumbing -------------------------------------------------------

    def new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def new_slot(self, hint: str, size: int = 1) -> StackSlot:
        self._slot_counter += 1
        slot = StackSlot(f"{hint}.{self._slot_counter}", size)
        self.func.stack_slots.append(slot)
        return slot

    def start_block(self, label: str) -> BasicBlockRef:
        block = BasicBlockRef(label)
        self.func.blocks.append(block)
        self.current = block
        return block

    def emit(self, instr) -> None:
        self.current.instrs.append(instr)

    def terminated(self) -> bool:
        return self.current.terminator is not None

    def lookup(self, name: str) -> _VarBinding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        binding = self.builder.global_bindings.get(name)
        if binding is None:
            raise SemanticError(f"unbound variable {name!r} during lowering")
        return binding

    # -- top level -------------------------------------------------------

    def lower(self) -> IRFunction:
        promote = self.builder.promote_scalars
        self.scopes.append({})
        self.start_block("entry")
        for param in self.func_ast.params:
            kind = _kind_of(param.base_type)
            if param.is_array:
                arg_temp = self.func.new_temp("i")
                self.func.params.append((param.name, "i", True))
                self.func.param_temps.append(arg_temp)
                if promote:
                    binding = _VarBinding("ptemp_array", kind, temp=arg_temp)
                else:
                    slot = self.new_slot(param.name)
                    self.emit(Store(arg_temp, Address(slot)))
                    binding = _VarBinding("pslot_array", kind, slot=slot)
            else:
                arg_temp = self.func.new_temp(kind)
                self.func.params.append((param.name, kind, False))
                self.func.param_temps.append(arg_temp)
                if promote:
                    binding = _VarBinding("temp", kind, temp=arg_temp)
                else:
                    slot = self.new_slot(param.name)
                    self.emit(Store(arg_temp, Address(slot)))
                    binding = _VarBinding("slot", kind, slot=slot)
            self.scopes[-1][param.name] = binding
        self.lower_block(self.func_ast.body)
        if not self.terminated():
            if self.func.return_kind == "v":
                self.emit(Ret())
            else:
                zero = 0.0 if self.func.return_kind == "f" else 0
                self.emit(Ret(Const(zero)))
        self.scopes.pop()
        self._prune_dead_blocks()
        return self.func

    def _prune_dead_blocks(self) -> None:
        """Drop blocks unreachable from entry (created by break/return)."""
        reachable: set[str] = set()
        by_label = {blk.label: blk for blk in self.func.blocks}
        stack = [self.func.blocks[0].label]
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            stack.extend(by_label[label].successor_labels())
        self.func.blocks = [blk for blk in self.func.blocks if blk.label in reachable]

    # -- statements --------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        for stmt in block.stmts:
            if self.terminated():
                break  # unreachable code after return/break
            self.lower_stmt(stmt)
        self.scopes.pop()

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Decl):
            self.lower_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            self.emit(Jump(self.break_labels[-1]))
        elif isinstance(stmt, ast.Continue):
            self.emit(Jump(self.continue_labels[-1]))
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit(Ret())
            else:
                value = self.lower_expr(stmt.value)
                value = self.coerce(value, self.func.return_kind)
                self.emit(Ret(value))
        else:
            raise SemanticError(f"cannot lower statement {stmt!r}")

    def lower_decl(self, decl: ast.Decl) -> None:
        kind = _kind_of(decl.base_type)
        promote = self.builder.promote_scalars
        if decl.is_array:
            slot = self.new_slot(decl.name, decl.array_length)
            binding = _VarBinding("larray", kind, slot=slot)
            self.scopes[-1][decl.name] = binding
            if isinstance(decl.init, list):
                for i, item in enumerate(decl.init):
                    value = self.coerce(self.lower_expr(item), kind)
                    self.emit(Store(value, Address(slot, Const(i))))
            return
        if promote:
            temp = self.func.new_temp(kind)
            binding = _VarBinding("temp", kind, temp=temp)
            self.scopes[-1][decl.name] = binding
            init = decl.init if decl.init is not None else ast.IntLit(value=0)
            value = self.coerce(self.lower_expr(init), kind)
            self.emit(UnOp("fmov" if kind == "f" else "mov", temp, value))
        else:
            slot = self.new_slot(decl.name)
            binding = _VarBinding("slot", kind, slot=slot)
            self.scopes[-1][decl.name] = binding
            if decl.init is not None:
                value = self.coerce(self.lower_expr(decl.init), kind)
                self.emit(Store(value, Address(slot)))

    def lower_if(self, stmt: ast.If) -> None:
        then_label = self.new_label("then")
        end_label = self.new_label("endif")
        other_label = self.new_label("else") if stmt.other is not None else end_label
        self.lower_condition(stmt.cond, then_label, other_label)
        self.start_block(then_label)
        self.lower_stmt(stmt.then)
        if not self.terminated():
            self.emit(Jump(end_label))
        if stmt.other is not None:
            self.start_block(other_label)
            self.lower_stmt(stmt.other)
            if not self.terminated():
                self.emit(Jump(end_label))
        self.start_block(end_label)

    def lower_while(self, stmt: ast.While) -> None:
        head = self.new_label("while")
        body = self.new_label("body")
        end = self.new_label("endwhile")
        self.emit(Jump(head))
        self.start_block(head)
        self.lower_condition(stmt.cond, body, end)
        self.start_block(body)
        self.break_labels.append(end)
        self.continue_labels.append(head)
        self.lower_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        if not self.terminated():
            self.emit(Jump(head))
        self.start_block(end)

    def lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.new_label("dobody")
        cond = self.new_label("docond")
        end = self.new_label("enddo")
        self.emit(Jump(body))
        self.start_block(body)
        self.break_labels.append(end)
        self.continue_labels.append(cond)
        self.lower_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        if not self.terminated():
            self.emit(Jump(cond))
        self.start_block(cond)
        self.lower_condition(stmt.cond, body, end)
        self.start_block(end)

    def lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.new_label("for")
        body = self.new_label("body")
        step = self.new_label("step")
        end = self.new_label("endfor")
        self.emit(Jump(head))
        self.start_block(head)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body, end)
        else:
            self.emit(Jump(body))
        self.start_block(body)
        self.break_labels.append(end)
        self.continue_labels.append(step)
        self.lower_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        if not self.terminated():
            self.emit(Jump(step))
        self.start_block(step)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.emit(Jump(head))
        self.start_block(end)
        self.scopes.pop()

    def lower_condition(self, cond: ast.Expr, true_label: str, false_label: str) -> None:
        """Lower a boolean context, exploiting short-circuit structure."""
        if isinstance(cond, ast.BinOp) and cond.op == "&&":
            mid = self.new_label("and")
            self.lower_condition(cond.left, mid, false_label)
            self.start_block(mid)
            self.lower_condition(cond.right, true_label, false_label)
            return
        if isinstance(cond, ast.BinOp) and cond.op == "||":
            mid = self.new_label("or")
            self.lower_condition(cond.left, true_label, mid)
            self.start_block(mid)
            self.lower_condition(cond.right, true_label, false_label)
            return
        if isinstance(cond, ast.UnaryOp) and cond.op == "!":
            self.lower_condition(cond.operand, false_label, true_label)
            return
        value = self.lower_expr(cond)
        self.emit(Branch(value, true_label, false_label))

    # -- expressions --------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLit):
            return Const(_to_unsigned(expr.value))
        if isinstance(expr, ast.CharLit):
            return Const(_to_unsigned(expr.value))
        if isinstance(expr, ast.FloatLit):
            return Const(float(expr.value))
        if isinstance(expr, ast.Ident):
            return self.read_var(expr.name)
        if isinstance(expr, ast.ArrayRef):
            addr, kind = self.array_address(expr)
            dst = self.func.new_temp(kind)
            self.emit(Load(dst, addr))
            return dst
        if isinstance(expr, ast.BinOp):
            return self.lower_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.lower_unop(expr)
        if isinstance(expr, ast.Cast):
            return self.lower_cast(expr)
        if isinstance(expr, ast.Call):
            return self.lower_call(expr)
        if isinstance(expr, ast.Assign):
            return self.lower_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.lower_incdec(expr)
        if isinstance(expr, ast.Ternary):
            return self.lower_ternary(expr)
        raise SemanticError(f"cannot lower expression {expr!r}")

    def read_var(self, name: str) -> Operand:
        binding = self.lookup(name)
        if binding.category == "temp":
            return binding.temp
        if binding.category == "slot":
            dst = self.func.new_temp(binding.kind)
            self.emit(Load(dst, Address(binding.slot)))
            return dst
        if binding.category == "gscalar":
            dst = self.func.new_temp(binding.kind)
            self.emit(Load(dst, Address(binding.symbol)))
            return dst
        if binding.category in ("garray", "larray", "pslot_array", "ptemp_array"):
            # Whole-array reference: yields the base word address (for calls).
            return self.array_base(binding)
        raise SemanticError(f"cannot read {name!r} ({binding.category})")

    def array_base(self, binding: _VarBinding) -> Temp:
        """Materialize an array's base word address into a temp."""
        if binding.category == "garray":
            dst = self.func.new_temp("i")
            self.emit(LoadAddress(dst, binding.symbol))
            return dst
        if binding.category == "larray":
            dst = self.func.new_temp("i")
            self.emit(LoadAddress(dst, binding.slot))
            return dst
        if binding.category == "ptemp_array":
            return binding.temp
        if binding.category == "pslot_array":
            dst = self.func.new_temp("i")
            self.emit(Load(dst, Address(binding.slot)))
            return dst
        raise SemanticError(f"not an array binding: {binding.category}")

    def array_address(self, ref: ast.ArrayRef) -> tuple[Address, str]:
        """Compute the :class:`Address` for ``base[index]``."""
        binding = self.lookup(ref.base)
        index = self.lower_expr(ref.index)
        if binding.category == "garray":
            return Address(binding.symbol, index), binding.kind
        if binding.category == "larray":
            return Address(binding.slot, index), binding.kind
        if binding.category in ("ptemp_array", "pslot_array"):
            base = self.array_base(binding)
            return Address(base, index), binding.kind
        raise SemanticError(f"{ref.base!r} is not an array")

    def lower_binop(self, expr: ast.BinOp) -> Operand:
        op = expr.op
        if op in ("&&", "||"):
            return self.lower_logical(expr)
        left_type = expr.left.ctype
        right_type = expr.right.ctype
        is_float = left_type.is_float() or right_type.is_float()
        lhs = self.lower_expr(expr.left)
        rhs = self.lower_expr(expr.right)
        if is_float:
            lhs = self.coerce(lhs, "f", unsigned=left_type.is_unsigned())
            rhs = self.coerce(rhs, "f", unsigned=right_type.is_unsigned())
            opcode = _FLOAT_OPS.get(op)
            if opcode is None:
                raise SemanticError(f"operator {op!r} not valid on floats", expr.line)
            result_kind = "i" if "cmp" in opcode else "f"
            dst = self.func.new_temp(result_kind)
            self.emit(BinOp(opcode, dst, lhs, rhs))
            return dst
        either_unsigned = left_type.is_unsigned() or right_type.is_unsigned()
        opcode = _int_opcode(op, either_unsigned, left_type.is_unsigned())
        dst = self.func.new_temp("i")
        self.emit(BinOp(opcode, dst, lhs, rhs))
        return dst

    def lower_logical(self, expr: ast.BinOp) -> Operand:
        """&&/|| in value position: lower through control flow to 0/1."""
        result = self.func.new_temp("i")
        true_label = self.new_label("ltrue")
        false_label = self.new_label("lfalse")
        end_label = self.new_label("lend")
        self.lower_condition(expr, true_label, false_label)
        self.start_block(true_label)
        self.emit(UnOp("mov", result, Const(1)))
        self.emit(Jump(end_label))
        self.start_block(false_label)
        self.emit(UnOp("mov", result, Const(0)))
        self.emit(Jump(end_label))
        self.start_block(end_label)
        return result

    def lower_unop(self, expr: ast.UnaryOp) -> Operand:
        operand = self.lower_expr(expr.operand)
        is_float = expr.operand.ctype.is_float()
        if expr.op == "-":
            dst = self.func.new_temp("f" if is_float else "i")
            self.emit(UnOp("fneg" if is_float else "neg", dst, operand))
            return dst
        if expr.op == "~":
            dst = self.func.new_temp("i")
            self.emit(UnOp("not", dst, operand))
            return dst
        if expr.op == "!":
            dst = self.func.new_temp("i")
            if is_float:
                zero = self.func.new_temp("i")
                self.emit(BinOp("fcmpeq", zero, operand, Const(0.0)))
                return zero
            self.emit(UnOp("lognot", dst, operand))
            return dst
        raise SemanticError(f"unknown unary {expr.op!r}", expr.line)

    def lower_cast(self, expr: ast.Cast) -> Operand:
        operand = self.lower_expr(expr.operand)
        src_type = expr.operand.ctype
        dst_kind = _kind_of(expr.target)
        if dst_kind == "f":
            return self.coerce(operand, "f", unsigned=src_type.is_unsigned())
        if src_type.is_float():
            dst = self.func.new_temp("i")
            self.emit(UnOp("ftoi", dst, operand))
            return dst
        return operand  # int <-> unsigned is a bit-level no-op

    def lower_call(self, expr: ast.Call) -> Operand:
        if expr.name == "printf":
            fmt = expr.args[0]
            args = [self.lower_expr(arg) for arg in expr.args[1:]]
            self.emit(Print(fmt.value, args))
            return Const(0)
        if expr.name in MATH_BUILTINS:
            arg_expr = expr.args[0]
            arg = self.coerce(
                self.lower_expr(arg_expr), "f", unsigned=arg_expr.ctype.is_unsigned()
            )
            dst = self.func.new_temp("f")
            self.emit(UnOp(expr.name, dst, arg))
            return dst
        if expr.name == "abs":
            arg = self.lower_expr(expr.args[0])
            dst = self.func.new_temp("i")
            self.emit(UnOp("absi", dst, arg))
            return dst
        sig = self.builder.analyzer.functions[expr.name]
        args: list[Operand] = []
        for arg_ast, param_type in zip(expr.args, sig.param_types):
            value = self.lower_expr(arg_ast)
            if not param_type.is_array():
                value = self.coerce(
                    value, _kind_of(param_type), unsigned=arg_ast.ctype.is_unsigned()
                )
            args.append(value)
        if sig.return_type.is_void():
            self.emit(Call(expr.name, args, None))
            return Const(0)
        dst = self.func.new_temp(_kind_of(sig.return_type))
        self.emit(Call(expr.name, args, dst))
        return dst

    def lower_assign(self, expr: ast.Assign) -> Operand:
        target = expr.target
        target_type = target.ctype
        target_kind = _kind_of(target_type)
        if expr.op == "=":
            value = self.coerce(
                self.lower_expr(expr.value), target_kind,
                unsigned=expr.value.ctype.is_unsigned(),
            )
        else:
            # Compound assignment: read-modify-write.
            current = self.lower_expr_of_target(target)
            rhs_raw = self.lower_expr(expr.value)
            base_op = expr.op[:-1]
            if target_type.is_float() or expr.value.ctype.is_float():
                current = self.coerce(current, "f", unsigned=target_type.is_unsigned())
                rhs = self.coerce(rhs_raw, "f", unsigned=expr.value.ctype.is_unsigned())
                opcode = _FLOAT_OPS[base_op]
                tmp = self.func.new_temp("f")
                self.emit(BinOp(opcode, tmp, current, rhs))
                value = self.coerce(tmp, target_kind)
            else:
                either_unsigned = (
                    target_type.is_unsigned() or expr.value.ctype.is_unsigned()
                )
                opcode = _int_opcode(base_op, either_unsigned, target_type.is_unsigned())
                tmp = self.func.new_temp("i")
                self.emit(BinOp(opcode, tmp, current, rhs_raw))
                value = tmp
        self.write_target(target, value)
        return value

    def lower_expr_of_target(self, target: ast.Expr) -> Operand:
        if isinstance(target, ast.Ident):
            return self.read_var(target.name)
        if isinstance(target, ast.ArrayRef):
            addr, kind = self.array_address(target)
            dst = self.func.new_temp(kind)
            self.emit(Load(dst, addr))
            return dst
        raise SemanticError("invalid assignment target")

    def write_target(self, target: ast.Expr, value: Operand) -> None:
        if isinstance(target, ast.Ident):
            binding = self.lookup(target.name)
            if binding.category == "temp":
                op = "fmov" if binding.kind == "f" else "mov"
                self.emit(UnOp(op, binding.temp, value))
            elif binding.category == "slot":
                self.emit(Store(value, Address(binding.slot)))
            elif binding.category == "gscalar":
                self.emit(Store(value, Address(binding.symbol)))
            else:
                raise SemanticError(f"cannot assign to array {target.name!r}")
            return
        if isinstance(target, ast.ArrayRef):
            addr, _ = self.array_address(target)
            self.emit(Store(value, addr))
            return
        raise SemanticError("invalid assignment target")

    def lower_incdec(self, expr: ast.IncDec) -> Operand:
        current = self.lower_expr_of_target(expr.target)
        opcode = "add" if expr.op == "++" else "sub"
        updated = self.func.new_temp("i")
        self.emit(BinOp(opcode, updated, current, Const(1)))
        self.write_target(expr.target, updated)
        return updated if expr.prefix else current

    def lower_ternary(self, expr: ast.Ternary) -> Operand:
        kind = _kind_of(expr.ctype)
        result = self.func.new_temp(kind)
        then_label = self.new_label("tthen")
        else_label = self.new_label("telse")
        end_label = self.new_label("tend")
        self.lower_condition(expr.cond, then_label, else_label)
        mov = "fmov" if kind == "f" else "mov"
        self.start_block(then_label)
        then_value = self.coerce(
            self.lower_expr(expr.then), kind, unsigned=expr.then.ctype.is_unsigned()
        )
        self.emit(UnOp(mov, result, then_value))
        self.emit(Jump(end_label))
        self.start_block(else_label)
        else_value = self.coerce(
            self.lower_expr(expr.other), kind, unsigned=expr.other.ctype.is_unsigned()
        )
        self.emit(UnOp(mov, result, else_value))
        self.emit(Jump(end_label))
        self.start_block(end_label)
        return result

    def coerce(self, value: Operand, kind: str, unsigned: bool = False) -> Operand:
        """Convert *value* to the requested kind, emitting casts as needed."""
        value_kind = value.kind
        if value_kind == kind:
            return value
        if kind == "f":
            if isinstance(value, Const):
                base = _to_unsigned(int(value.value)) if unsigned else _to_signed(int(value.value))
                return Const(float(base))
            dst = self.func.new_temp("f")
            self.emit(UnOp("utof" if unsigned else "itof", dst, value))
            return dst
        # float -> int
        if isinstance(value, Const):
            return Const(_to_unsigned(int(value.value)))
        dst = self.func.new_temp("i")
        self.emit(UnOp("ftoi", dst, value))
        return dst


_FLOAT_OPS = {
    "+": "fadd",
    "-": "fsub",
    "*": "fmul",
    "/": "fdiv",
    "==": "fcmpeq",
    "!=": "fcmpne",
    "<": "fcmplt",
    "<=": "fcmple",
    ">": "fcmpgt",
    ">=": "fcmpge",
}

_INT_OPS_SIGNED = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "sar",
    "==": "cmpeq", "!=": "cmpne", "<": "cmplt", "<=": "cmple",
    ">": "cmpgt", ">=": "cmpge",
}
_INT_OPS_UNSIGNED = {
    "/": "udiv", "%": "umod", ">>": "shr",
    "<": "cmpltu", "<=": "cmpleu", ">": "cmpgtu", ">=": "cmpgeu",
}


def _int_opcode(op: str, either_unsigned: bool, left_unsigned: bool) -> str:
    """Choose the signed or unsigned integer opcode for a C operator.

    Shifts key off the left operand only; the rest follow C's usual
    conversions (either side unsigned makes the operation unsigned).
    """
    if op == ">>":
        return "shr" if left_unsigned else "sar"
    if either_unsigned and op in _INT_OPS_UNSIGNED:
        return _INT_OPS_UNSIGNED[op]
    return _INT_OPS_SIGNED[op]


class IRBuilder:
    """Lowers a type-checked program into an :class:`IRProgram`."""

    def __init__(
        self, program: ast.Program, analyzer: SemanticAnalyzer, promote_scalars: bool = False
    ):
        self.program = program
        self.analyzer = analyzer
        self.promote_scalars = promote_scalars
        self.global_bindings: dict[str, _VarBinding] = {}

    def build(self) -> IRProgram:
        ir_program = IRProgram()
        for decl in self.program.globals:
            kind = _kind_of(decl.base_type)
            if decl.is_array:
                init = self._array_init(decl, kind)
                ir_program.globals[decl.name] = GlobalVar(
                    decl.name, decl.array_length, init, kind
                )
                self.global_bindings[decl.name] = _VarBinding(
                    "garray", kind, symbol=decl.name
                )
            else:
                value = self._const_value(decl.init, kind) if decl.init is not None else (
                    0.0 if kind == "f" else 0
                )
                ir_program.globals[decl.name] = GlobalVar(decl.name, 1, [value], kind)
                self.global_bindings[decl.name] = _VarBinding(
                    "gscalar", kind, symbol=decl.name
                )
        for func_ast in self.program.functions:
            lowering = _FunctionLowering(self, func_ast)
            ir_program.functions[func_ast.name] = lowering.lower()
        return ir_program

    def _array_init(self, decl: ast.Decl, kind: str) -> list[int | float]:
        fill: int | float = 0.0 if kind == "f" else 0
        init = [fill] * decl.array_length
        if isinstance(decl.init, list):
            for i, item in enumerate(decl.init):
                init[i] = self._const_value(item, kind)
        return init

    def _const_value(self, expr: ast.Expr, kind: str) -> int | float:
        value = _eval_const(expr)
        if kind == "f":
            return float(value)
        return _to_unsigned(int(value))


def _eval_const(expr: ast.Expr) -> int | float:
    """Compile-time evaluation of constant initializer expressions."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.UnaryOp):
        value = _eval_const(expr.operand)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~int(value)
        if expr.op == "!":
            return 0 if value else 1
    if isinstance(expr, ast.Cast):
        value = _eval_const(expr.operand)
        return float(value) if expr.target.is_float() else int(value)
    if isinstance(expr, ast.BinOp):
        left = _eval_const(expr.left)
        right = _eval_const(expr.right)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else a // b,
            "%": lambda a, b: a % b,
            "&": lambda a, b: int(a) & int(b),
            "|": lambda a, b: int(a) | int(b),
            "^": lambda a, b: int(a) ^ int(b),
            "<<": lambda a, b: int(a) << int(b),
            ">>": lambda a, b: int(a) >> int(b),
        }
        if expr.op in ops:
            return ops[expr.op](left, right)
    raise SemanticError("initializer is not a compile-time constant", expr.line)


def lower_program(
    program: ast.Program, analyzer: SemanticAnalyzer, promote_scalars: bool = False
) -> IRProgram:
    """Convenience wrapper building IR from an analyzed AST."""
    return IRBuilder(program, analyzer, promote_scalars).build()
