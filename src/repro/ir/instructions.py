"""IR instruction and operand definitions.

Operands are :class:`Temp` (virtual register), :class:`Const` (immediate),
or — for memory instructions — an :class:`Address`.  Memory is word
addressed (one word = 4 bytes = one ``int``/``unsigned``/``float`` value;
see DESIGN.md).  Addresses have three base kinds:

* a global symbol (``str``) — resolved to a static word address at link;
* a :class:`StackSlot` — resolved to a frame-pointer offset;
* a :class:`Temp` — a computed word address (array parameters).

Binary opcodes carry their signedness/floatness explicitly (``add`` vs
``fadd``, ``div`` vs ``udiv`` vs ``fdiv``, ``shr`` vs ``sar``...), so later
stages never need type inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Temp:
    """A virtual register.  ``kind`` is 'i' (32-bit int word) or 'f'."""

    id: int
    kind: str = "i"

    def __repr__(self) -> str:
        return f"%{'f' if self.kind == 'f' else 't'}{self.id}"


@dataclass(frozen=True)
class Const:
    """An immediate operand: Python int (as unsigned 32-bit) or float."""

    value: int | float

    @property
    def kind(self) -> str:
        return "f" if isinstance(self.value, float) else "i"

    def __repr__(self) -> str:
        return f"${self.value}"


Operand = Temp | Const


@dataclass(frozen=True)
class StackSlot:
    """A word-sized (or array) slot in the current function's frame."""

    name: str
    size: int = 1  # in words

    def __repr__(self) -> str:
        return f"[{self.name}]"


@dataclass(frozen=True)
class Address:
    """A memory address: base plus optional word index.

    ``base`` is a global symbol name, a stack slot, or a temp holding a
    word address.  ``index`` (if present) is added in word units.
    """

    base: str | StackSlot | Temp
    index: Operand | None = None

    def __repr__(self) -> str:
        if self.index is None:
            return f"mem({self.base!r})"
        return f"mem({self.base!r} + {self.index!r})"


# --------------------------------------------------------------------------
# Instructions
# --------------------------------------------------------------------------

# Integer binary ops (operate on 32-bit words).
INT_BINOPS = {
    "add", "sub", "mul", "div", "udiv", "mod", "umod",
    "and", "or", "xor", "shl", "shr", "sar",
    "cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge",
    "cmpltu", "cmpleu", "cmpgtu", "cmpgeu",
}
# Float binary ops.
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "fcmpeq", "fcmpne", "fcmplt", "fcmple",
                "fcmpgt", "fcmpge"}
ALL_BINOPS = INT_BINOPS | FLOAT_BINOPS
# Comparison opcodes produce an int 0/1.
COMPARE_OPS = {op for op in ALL_BINOPS if "cmp" in op}
# Unary ops.
UNARY_OPS = {"neg", "not", "lognot", "fneg", "itof", "utof", "ftoi", "mov", "fmov",
             "sqrt", "sin", "cos", "log", "exp", "fabs", "floor", "absi"}


@dataclass
class Instr:
    """Base class for IR instructions."""

    def uses(self) -> list[Temp]:
        """Temps read by this instruction."""
        return []

    def defs(self) -> Temp | None:
        """Temp written by this instruction, if any."""
        return None


def _operand_uses(*operands: object) -> list[Temp]:
    uses: list[Temp] = []
    for operand in operands:
        if isinstance(operand, Temp):
            uses.append(operand)
        elif isinstance(operand, Address):
            if isinstance(operand.base, Temp):
                uses.append(operand.base)
            if isinstance(operand.index, Temp):
                uses.append(operand.index)
    return uses


@dataclass
class LoadConst(Instr):
    """dst <- constant."""

    dst: Temp
    value: int | float

    def defs(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst!r} = const {self.value}"


@dataclass
class Load(Instr):
    """dst <- memory[address]."""

    dst: Temp
    addr: Address

    def uses(self) -> list[Temp]:
        return _operand_uses(self.addr)

    def defs(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst!r} = load {self.addr!r}"


@dataclass
class Store(Instr):
    """memory[address] <- src."""

    src: Operand
    addr: Address

    def uses(self) -> list[Temp]:
        return _operand_uses(self.src, self.addr)

    def __repr__(self) -> str:
        return f"store {self.src!r} -> {self.addr!r}"


@dataclass
class LoadAddress(Instr):
    """dst <- word address of a symbol/slot (used for array arguments)."""

    dst: Temp
    base: str | StackSlot

    def defs(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst!r} = lea {self.base!r}"


@dataclass
class BinOp(Instr):
    """dst <- lhs op rhs."""

    op: str
    dst: Temp
    lhs: Operand
    rhs: Operand

    def uses(self) -> list[Temp]:
        return _operand_uses(self.lhs, self.rhs)

    def defs(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst!r} = {self.op} {self.lhs!r}, {self.rhs!r}"


@dataclass
class UnOp(Instr):
    """dst <- op src (also carries casts, moves and math builtins)."""

    op: str
    dst: Temp
    src: Operand

    def uses(self) -> list[Temp]:
        return _operand_uses(self.src)

    def defs(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst!r} = {self.op} {self.src!r}"


@dataclass
class Call(Instr):
    """dst <- func(args); dst is None for void calls."""

    func: str
    args: list[Operand] = field(default_factory=list)
    dst: Temp | None = None

    def uses(self) -> list[Temp]:
        return _operand_uses(*self.args)

    def defs(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        head = f"{self.dst!r} = " if self.dst is not None else ""
        return f"{head}call {self.func}({', '.join(map(repr, self.args))})"


@dataclass
class Print(Instr):
    """printf with a literal format and scalar arguments."""

    fmt: str
    args: list[Operand] = field(default_factory=list)

    def uses(self) -> list[Temp]:
        return _operand_uses(*self.args)

    def __repr__(self) -> str:
        return f"print {self.fmt!r}, {self.args!r}"


@dataclass
class Branch(Instr):
    """Conditional branch: if cond != 0 goto then_label else other_label."""

    cond: Operand
    then_label: str
    other_label: str

    def uses(self) -> list[Temp]:
        return _operand_uses(self.cond)

    def __repr__(self) -> str:
        return f"br {self.cond!r} ? {self.then_label} : {self.other_label}"


@dataclass
class Jump(Instr):
    """Unconditional branch."""

    label: str

    def __repr__(self) -> str:
        return f"jmp {self.label}"


@dataclass
class Ret(Instr):
    """Return, with optional value."""

    value: Operand | None = None

    def uses(self) -> list[Temp]:
        return _operand_uses(self.value) if self.value is not None else []

    def __repr__(self) -> str:
        return f"ret {self.value!r}" if self.value is not None else "ret"


TERMINATORS = (Branch, Jump, Ret)


# --------------------------------------------------------------------------
# Containers
# --------------------------------------------------------------------------


@dataclass
class IRFunction:
    """A function in IR form.

    ``blocks`` is an ordered list; the first block is the entry.  ``params``
    records (name, kind, is_array); array parameters arrive as a word
    address in an 'i' temp.  ``stack_slots`` lists frame objects (O0
    scalars, local arrays, spills).
    """

    name: str
    params: list[tuple[str, str, bool]] = field(default_factory=list)
    return_kind: str = "v"  # 'i', 'f' or 'v'
    blocks: list["BasicBlockRef"] = field(default_factory=list)
    stack_slots: list[StackSlot] = field(default_factory=list)
    param_temps: list[Temp] = field(default_factory=list)
    next_temp: int = 0

    def new_temp(self, kind: str = "i") -> Temp:
        temp = Temp(self.next_temp, kind)
        self.next_temp += 1
        return temp

    def block(self, label: str) -> "BasicBlockRef":
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(label)

    def instruction_count(self) -> int:
        return sum(len(blk.instrs) for blk in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"func {self.name}({self.params})"]
        for blk in self.blocks:
            lines.append(f"{blk.label}:")
            lines.extend(f"  {instr!r}" for instr in blk.instrs)
        return "\n".join(lines)


@dataclass
class BasicBlockRef:
    """A labelled straight-line instruction list ending in a terminator."""

    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and isinstance(self.instrs[-1], TERMINATORS):
            return self.instrs[-1]
        return None

    def successor_labels(self) -> list[str]:
        term = self.terminator
        if isinstance(term, Branch):
            return [term.then_label, term.other_label]
        if isinstance(term, Jump):
            return [term.label]
        return []


@dataclass
class GlobalVar:
    """A global scalar or array with its initial words."""

    name: str
    size: int  # words
    init: list[int | float] = field(default_factory=list)
    kind: str = "i"


@dataclass
class IRProgram:
    """A whole program in IR form."""

    functions: dict[str, IRFunction] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)

    def function(self, name: str) -> IRFunction:
        return self.functions[name]
