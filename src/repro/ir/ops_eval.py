"""Single source of truth for operator semantics.

Both the constant folder and the functional simulator evaluate opcodes
through these tables, so compile-time and run-time arithmetic can never
disagree.  Integer values are canonically represented as unsigned 32-bit
Python ints (0 .. 2**32-1); floats are Python floats (C ``double``).
"""

from __future__ import annotations

import math

WORD_MASK = 0xFFFFFFFF
SIGN_BIT = 0x80000000


def to_signed(value: int) -> int:
    """Interpret an unsigned 32-bit word as a signed int."""
    value &= WORD_MASK
    return value - 0x100000000 if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int to its unsigned 32-bit representation."""
    return value & WORD_MASK


def _div_trunc(a: int, b: int) -> int:
    """C-style truncating signed division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _mod_trunc(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - _div_trunc(a, b) * b


def int_add(a: int, b: int) -> int:
    return (a + b) & WORD_MASK


def int_sub(a: int, b: int) -> int:
    return (a - b) & WORD_MASK


def int_mul(a: int, b: int) -> int:
    return (a * b) & WORD_MASK


def int_div(a: int, b: int) -> int:
    return to_unsigned(_div_trunc(to_signed(a), to_signed(b)))


def int_udiv(a: int, b: int) -> int:
    return (a & WORD_MASK) // (b & WORD_MASK)


def int_mod(a: int, b: int) -> int:
    return to_unsigned(_mod_trunc(to_signed(a), to_signed(b)))


def int_umod(a: int, b: int) -> int:
    return (a & WORD_MASK) % (b & WORD_MASK)


def int_shl(a: int, b: int) -> int:
    return (a << (b & 31)) & WORD_MASK


def int_shr(a: int, b: int) -> int:
    return (a & WORD_MASK) >> (b & 31)


def int_sar(a: int, b: int) -> int:
    return to_unsigned(to_signed(a) >> (b & 31))


# op name -> binary function over canonical representations.
BINOPS = {
    "add": int_add,
    "sub": int_sub,
    "mul": int_mul,
    "div": int_div,
    "udiv": int_udiv,
    "mod": int_mod,
    "umod": int_umod,
    "and": lambda a, b: (a & b) & WORD_MASK,
    "or": lambda a, b: (a | b) & WORD_MASK,
    "xor": lambda a, b: (a ^ b) & WORD_MASK,
    "shl": int_shl,
    "shr": int_shr,
    "sar": int_sar,
    "cmpeq": lambda a, b: 1 if (a & WORD_MASK) == (b & WORD_MASK) else 0,
    "cmpne": lambda a, b: 1 if (a & WORD_MASK) != (b & WORD_MASK) else 0,
    "cmplt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "cmple": lambda a, b: 1 if to_signed(a) <= to_signed(b) else 0,
    "cmpgt": lambda a, b: 1 if to_signed(a) > to_signed(b) else 0,
    "cmpge": lambda a, b: 1 if to_signed(a) >= to_signed(b) else 0,
    "cmpltu": lambda a, b: 1 if (a & WORD_MASK) < (b & WORD_MASK) else 0,
    "cmpleu": lambda a, b: 1 if (a & WORD_MASK) <= (b & WORD_MASK) else 0,
    "cmpgtu": lambda a, b: 1 if (a & WORD_MASK) > (b & WORD_MASK) else 0,
    "cmpgeu": lambda a, b: 1 if (a & WORD_MASK) >= (b & WORD_MASK) else 0,
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: _float_div(a, b),
    "fcmpeq": lambda a, b: 1 if a == b else 0,
    "fcmpne": lambda a, b: 1 if a != b else 0,
    "fcmplt": lambda a, b: 1 if a < b else 0,
    "fcmple": lambda a, b: 1 if a <= b else 0,
    "fcmpgt": lambda a, b: 1 if a > b else 0,
    "fcmpge": lambda a, b: 1 if a >= b else 0,
}

# C <math.h> semantics: domain errors yield NaN/inf rather than trapping
# (cos(inf) is NaN, log(0) is -inf, exp overflow is +inf, ...).
_NAN = float("nan")
_INF = float("inf")


def _float_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or a != a:
            return _NAN
        positive = (a > 0.0) == (not _sign_bit(b))
        return _INF if positive else -_INF
    return a / b


def _sign_bit(value: float) -> bool:
    return math.copysign(1.0, value) < 0


def c_sqrt(a: float) -> float:
    if a != a or a < 0.0:
        return _NAN
    return math.sqrt(a)


def c_sin(a: float) -> float:
    if a != a or a in (_INF, -_INF):
        return _NAN
    return math.sin(a)


def c_cos(a: float) -> float:
    if a != a or a in (_INF, -_INF):
        return _NAN
    return math.cos(a)


def c_log(a: float) -> float:
    if a != a or a < 0.0:
        return _NAN
    if a == 0.0:
        return -_INF
    return math.log(a)


def c_exp(a: float) -> float:
    if a != a:
        return _NAN
    try:
        return math.exp(a)
    except OverflowError:
        return _INF


def c_ftoi(a: float) -> int:
    """Float-to-int conversion; out-of-range picks x86's sentinel."""
    if a != a or a in (_INF, -_INF) or not (-(2**63) < a < 2**63):
        return SIGN_BIT  # 0x80000000, what cvttsd2si yields
    return to_unsigned(int(a))


def c_floor(a: float) -> float:
    if a != a or a in (_INF, -_INF):
        return a
    return float(math.floor(a))


UNOPS = {
    "neg": lambda a: (-a) & WORD_MASK,
    "not": lambda a: (~a) & WORD_MASK,
    "lognot": lambda a: 0 if (a & WORD_MASK) else 1,
    "absi": lambda a: to_unsigned(abs(to_signed(a))),
    "mov": lambda a: a,
    "fmov": lambda a: a,
    "fneg": lambda a: -a,
    "itof": lambda a: float(to_signed(a)),
    "utof": lambda a: float(a & WORD_MASK),
    "ftoi": c_ftoi,
    "sqrt": c_sqrt,
    "sin": c_sin,
    "cos": c_cos,
    "log": c_log,
    "exp": c_exp,
    "fabs": abs,
    "floor": c_floor,
}

# Operations that can trap and must not be speculated (LICM) or folded
# when the divisor might be zero.
TRAPPING_OPS = {"div", "udiv", "mod", "umod", "fdiv", "sqrt", "log"}

COMMUTATIVE_OPS = {"add", "mul", "and", "or", "xor", "fadd", "fmul",
                   "cmpeq", "cmpne", "fcmpeq", "fcmpne"}
