"""Control-flow graph utilities: dominators and natural-loop detection.

Used twice in the system: by the optimizer (LICM, unrolling) and — more
importantly for the paper — by the SFGL profiler, which needs to know
which basic blocks form loops and how deeply they nest so that the
synthesizer can regenerate ``for`` nests (§III-A.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import BasicBlockRef, IRFunction

BasicBlock = BasicBlockRef


class ControlFlowGraph:
    """Successor/predecessor view over an :class:`IRFunction`."""

    def __init__(self, func: IRFunction):
        self.func = func
        self.labels = [blk.label for blk in func.blocks]
        self.by_label = {blk.label: blk for blk in func.blocks}
        self.successors: dict[str, list[str]] = {}
        self.predecessors: dict[str, list[str]] = {label: [] for label in self.labels}
        for blk in func.blocks:
            succs = blk.successor_labels()
            self.successors[blk.label] = succs
            for succ in succs:
                self.predecessors[succ].append(blk.label)

    @property
    def entry(self) -> str:
        return self.func.blocks[0].label

    def reachable(self) -> set[str]:
        """Labels reachable from the entry block."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            label = stack.pop()
            for succ in self.successors[label]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


def reverse_postorder(cfg: ControlFlowGraph) -> list[str]:
    """Reverse postorder of reachable blocks (entry first)."""
    visited: set[str] = set()
    order: list[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(cfg.successors[label]))]
        visited.add(label)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(cfg.successors[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(cfg.entry)
    order.reverse()
    return order


def compute_dominators(cfg: ControlFlowGraph) -> dict[str, set[str]]:
    """Iterative dataflow dominator computation.

    Returns, for each reachable label, the set of labels dominating it
    (including itself).
    """
    order = reverse_postorder(cfg)
    reachable = set(order)
    dominators: dict[str, set[str]] = {label: reachable.copy() for label in order}
    dominators[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == cfg.entry:
                continue
            preds = [p for p in cfg.predecessors[label] if p in reachable]
            if not preds:
                continue
            new_set = set(dominators[preds[0]])
            for pred in preds[1:]:
                new_set &= dominators[pred]
            new_set.add(label)
            if new_set != dominators[label]:
                dominators[label] = new_set
                changed = True
    return dominators


@dataclass
class Loop:
    """A natural loop: header plus body blocks, with nesting links."""

    header: str
    body: set[str] = field(default_factory=set)  # includes the header
    back_edges: list[str] = field(default_factory=list)  # latch labels
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Loop(header={self.header}, body={sorted(self.body)})"


def find_natural_loops(cfg: ControlFlowGraph) -> list[Loop]:
    """Detect natural loops via back edges and build the nesting forest.

    A back edge is an edge ``latch -> header`` where ``header`` dominates
    ``latch``.  Loops sharing a header are merged.  The returned list is
    ordered outermost-first; each loop links to its parent/children.
    """
    dominators = compute_dominators(cfg)
    reachable = set(dominators)
    loops_by_header: dict[str, Loop] = {}
    for label in reachable:
        for succ in cfg.successors[label]:
            if succ in dominators.get(label, set()):
                # label -> succ is a back edge; succ is the header.
                loop = loops_by_header.setdefault(succ, Loop(header=succ))
                loop.back_edges.append(label)
                loop.body |= _loop_body(cfg, succ, label)
    loops = list(loops_by_header.values())
    # Establish nesting: parent is the smallest strictly-containing loop.
    loops.sort(key=lambda lp: len(lp.body))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1 :]:
            if inner.header in outer.body and inner.body <= outer.body and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break
    loops.sort(key=lambda lp: -len(lp.body))
    return loops


def _loop_body(cfg: ControlFlowGraph, header: str, latch: str) -> set[str]:
    """Blocks of the natural loop for back edge ``latch -> header``."""
    body = {header, latch}
    stack = [latch]
    while stack:
        label = stack.pop()
        if label == header:
            continue
        for pred in cfg.predecessors[label]:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def loop_of_block(loops: list[Loop], label: str) -> Loop | None:
    """Innermost loop containing *label* (None if not in any loop)."""
    innermost: Loop | None = None
    for loop in loops:
        if label in loop.body:
            if innermost is None or len(loop.body) < len(innermost.body):
                innermost = loop
    return innermost
