"""Three-address intermediate representation.

The compiler lowers the mini-C AST into a conventional CFG-of-basic-blocks
IR with unlimited virtual registers (temps).  Optimization passes in
:mod:`repro.opt` transform it; :mod:`repro.isa` lowers it to virtual
machine code.  Two lowering modes mirror GCC's behaviour:

* **O0 mode** — every local scalar lives in a stack slot; each use emits a
  load and each definition a store.  This is what makes Table II's
  ``load-arith-store`` patterns appear in O0 binaries.
* **promoted mode (O1+)** — locals are kept in virtual registers.
"""

from repro.ir.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Loop,
    compute_dominators,
    find_natural_loops,
    reverse_postorder,
)
from repro.ir.instructions import (
    Address,
    BinOp,
    Branch,
    Call,
    Const,
    IRFunction,
    IRProgram,
    Instr,
    Jump,
    Load,
    Print,
    Ret,
    StackSlot,
    Store,
    Temp,
    UnOp,
)
from repro.ir.builder import IRBuilder, lower_program
from repro.ir.verify import verify_function, verify_program

__all__ = [
    "Address",
    "BasicBlock",
    "BinOp",
    "Branch",
    "Call",
    "Const",
    "ControlFlowGraph",
    "IRBuilder",
    "IRFunction",
    "IRProgram",
    "Instr",
    "Jump",
    "Load",
    "Loop",
    "Print",
    "Ret",
    "StackSlot",
    "Store",
    "Temp",
    "UnOp",
    "compute_dominators",
    "find_natural_loops",
    "lower_program",
    "reverse_postorder",
    "verify_function",
    "verify_program",
]
