"""Constant folding and algebraic simplification.

Folds ``BinOp``/``UnOp`` instructions whose operands are constants using
the shared semantics in :mod:`repro.ir.ops_eval`, and applies the safe
identities (x+0, x*1, x*0, x-0, x|0, x&~0, shifts by 0).  Branches with a
constant condition keep their form here (codegen turns them into
unconditional jumps); folding never changes control flow.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Address,
    BinOp,
    Const,
    IRFunction,
    IRProgram,
    LoadConst,
    UnOp,
)
from repro.ir.ops_eval import BINOPS, TRAPPING_OPS, UNOPS


def _fold_binop(instr: BinOp):
    """Return a replacement instruction or None."""
    lhs, rhs = instr.lhs, instr.rhs
    if isinstance(rhs, Address):
        return None
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        if instr.op in TRAPPING_OPS and not rhs.value:
            return None  # let it trap at run time, like the hardware
        value = BINOPS[instr.op](lhs.value, rhs.value)
        return LoadConst(instr.dst, value)
    if isinstance(rhs, Const):
        value = rhs.value
        if instr.op in ("add", "sub", "or", "xor", "shl", "shr", "sar") and value == 0:
            return UnOp("mov", instr.dst, lhs)
        if instr.op in ("fadd", "fsub") and value == 0.0:
            return UnOp("fmov", instr.dst, lhs)
        if instr.op in ("mul", "udiv", "div") and value == 1:
            return UnOp("mov", instr.dst, lhs)
        if instr.op in ("fmul", "fdiv") and value == 1.0:
            return UnOp("fmov", instr.dst, lhs)
        if instr.op in ("mul", "and") and value == 0:
            return LoadConst(instr.dst, 0)
    if isinstance(lhs, Const):
        value = lhs.value
        if instr.op == "add" and value == 0:
            return UnOp("mov", instr.dst, rhs)
        if instr.op == "fadd" and value == 0.0:
            return UnOp("fmov", instr.dst, rhs)
        if instr.op in ("mul", "and") and value == 0:
            return LoadConst(instr.dst, 0)
        if instr.op == "mul" and value == 1:
            return UnOp("mov", instr.dst, rhs)
        if instr.op == "fmul" and value == 1.0:
            return UnOp("fmov", instr.dst, rhs)
    return None


def fold_constants_function(func: IRFunction) -> int:
    """Fold constants in one function; returns the number of changes."""
    changes = 0
    for blk in func.blocks:
        for i, instr in enumerate(blk.instrs):
            if isinstance(instr, BinOp):
                replacement = _fold_binop(instr)
                if replacement is not None:
                    blk.instrs[i] = replacement
                    changes += 1
            elif isinstance(instr, UnOp) and isinstance(instr.src, Const):
                if instr.op in ("mov", "fmov"):
                    blk.instrs[i] = LoadConst(instr.dst, instr.src.value)
                    changes += 1
                elif instr.op in UNOPS and instr.op not in TRAPPING_OPS:
                    value = UNOPS[instr.op](instr.src.value)
                    blk.instrs[i] = LoadConst(instr.dst, value)
                    changes += 1
    return changes


def fold_constants(program: IRProgram) -> int:
    """Fold constants program-wide; returns total change count."""
    return sum(fold_constants_function(func) for func in program.functions.values())
