"""Block-local copy and constant propagation.

Within a basic block, after ``t2 = mov t1`` every use of ``t2`` is
replaced by ``t1`` until either temp is redefined; after
``t2 = const k`` uses of ``t2`` become the immediate ``k``.  Combined with
constant folding and DCE this removes the reload/spill chatter that
separates -O1 from -O2 code (the paper's Fig. 6 load-fraction effect).
"""

from __future__ import annotations

from repro.ir.instructions import (
    Address,
    BinOp,
    Branch,
    Call,
    Const,
    IRFunction,
    IRProgram,
    Load,
    LoadConst,
    Operand,
    Print,
    Ret,
    Store,
    Temp,
    UnOp,
)


def _substitute(operand, env: dict[Temp, Operand]):
    if isinstance(operand, Temp) and operand in env:
        return env[operand]
    if isinstance(operand, Address):
        base = operand.base
        index = operand.index
        new_base = base
        if isinstance(base, Temp) and base in env and isinstance(env[base], Temp):
            new_base = env[base]
        new_index = index
        if isinstance(index, Temp) and index in env:
            new_index = env[index]
        if new_base is not base or new_index is not index:
            return Address(new_base, new_index)
    return operand


def _kill(env: dict[Temp, Operand], temp: Temp) -> None:
    """Remove every mapping involving *temp* (as key or value)."""
    env.pop(temp, None)
    dead = [key for key, value in env.items() if value == temp]
    for key in dead:
        del env[key]


def propagate_copies_function(func: IRFunction) -> int:
    changes = 0
    for blk in func.blocks:
        env: dict[Temp, Operand] = {}
        for instr in blk.instrs:
            before = changes
            if isinstance(instr, BinOp):
                new_lhs = _substitute(instr.lhs, env)
                new_rhs = _substitute(instr.rhs, env)
                if new_lhs is not instr.lhs:
                    instr.lhs = new_lhs
                    changes += 1
                if new_rhs is not instr.rhs:
                    instr.rhs = new_rhs
                    changes += 1
            elif isinstance(instr, UnOp):
                new_src = _substitute(instr.src, env)
                if new_src is not instr.src:
                    instr.src = new_src
                    changes += 1
            elif isinstance(instr, Load):
                new_addr = _substitute(instr.addr, env)
                if new_addr is not instr.addr:
                    instr.addr = new_addr
                    changes += 1
            elif isinstance(instr, Store):
                new_src = _substitute(instr.src, env)
                new_addr = _substitute(instr.addr, env)
                if new_src is not instr.src:
                    instr.src = new_src
                    changes += 1
                if new_addr is not instr.addr:
                    instr.addr = new_addr
                    changes += 1
            elif isinstance(instr, Call):
                for i, arg in enumerate(instr.args):
                    new_arg = _substitute(arg, env)
                    if new_arg is not arg:
                        instr.args[i] = new_arg
                        changes += 1
            elif isinstance(instr, Print):
                for i, arg in enumerate(instr.args):
                    new_arg = _substitute(arg, env)
                    if new_arg is not arg:
                        instr.args[i] = new_arg
                        changes += 1
            elif isinstance(instr, Branch):
                new_cond = _substitute(instr.cond, env)
                if new_cond is not instr.cond:
                    instr.cond = new_cond
                    changes += 1
            elif isinstance(instr, Ret) and instr.value is not None:
                new_value = _substitute(instr.value, env)
                if new_value is not instr.value:
                    instr.value = new_value
                    changes += 1
            del before
            # Update the environment with this instruction's definition.
            definition = instr.defs()
            if definition is not None:
                _kill(env, definition)
                if isinstance(instr, UnOp) and instr.op in ("mov", "fmov"):
                    if isinstance(instr.src, Temp):
                        env[definition] = instr.src
                    elif isinstance(instr.src, Const):
                        env[definition] = instr.src
                elif isinstance(instr, LoadConst):
                    env[definition] = Const(instr.value)
    return changes


def propagate_copies(program: IRProgram) -> int:
    """Propagate copies/constants program-wide; returns change count."""
    return sum(propagate_copies_function(func) for func in program.functions.values())
