"""Optimization pipelines for the -O0..-O3 levels.

``optimize_ir`` applies IR-level passes for a given level; the AST-level
O3 transforms (inlining, unrolling) are applied by the compiler driver
before lowering.  Pass ordering follows the classic recipe: canonicalize
(fold) → clean copies → value-number → strength-reduce → hoist → clean up.
"""

from __future__ import annotations

from repro.ir.instructions import IRProgram
from repro.opt.constant_folding import fold_constants
from repro.opt.copy_propagation import propagate_copies
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.fuse import fuse_memory_operands
from repro.opt.licm import hoist_loop_invariants
from repro.opt.promote_globals import promote_globals
from repro.opt.strength import reduce_strength

OPT_LEVELS = (0, 1, 2, 3)


def optimize_ir(
    program: IRProgram,
    opt_level: int,
    cisc_fusion: bool = False,
    allocatable_int_regs: int = 16,
) -> dict:
    """Run the IR pass pipeline for *opt_level* in place.

    ``allocatable_int_regs`` gates the register-pressure-sensitive passes
    (LICM, global promotion): on a register-starved target like x86,
    hoisting aggressively just converts reloads into spills, so those
    passes throttle back — mirroring how production compilers tune for
    CISC register files.

    Returns a statistics dict (pass name -> change count) for
    introspection and tests.
    """
    stats: dict[str, int] = {}

    def run(name: str, func, *args) -> None:
        stats[name] = stats.get(name, 0) + func(program, *args)

    if opt_level >= 1:
        run("fold", fold_constants)
        run("cse", eliminate_common_subexpressions)
        run("fold", fold_constants)
        run("dce", eliminate_dead_code)
        run("promote", promote_globals, allocatable_int_regs)
        run("copyprop", propagate_copies)
        run("cse", eliminate_common_subexpressions)
        run("dce", eliminate_dead_code)
    if opt_level >= 2:
        for _ in range(2):
            run("copyprop", propagate_copies)
            run("fold", fold_constants)
            run("cse", eliminate_common_subexpressions)
            run("strength", reduce_strength)
            run("dce", eliminate_dead_code)
        # Promotion already ran at O1; re-running would stack more live
        # ranges onto register-starved targets and spill.  Wide targets
        # get a second promotion round plus LICM.
        if allocatable_int_regs >= 8:
            run("promote", promote_globals, allocatable_int_regs)
            run("licm", hoist_loop_invariants)
        run("copyprop", propagate_copies)
        run("fold", fold_constants)
        run("cse", eliminate_common_subexpressions)
        run("dce", eliminate_dead_code)
    if opt_level >= 1 and cisc_fusion:
        run("fuse", fuse_memory_operands)
    return stats


def run_pipeline(
    program: IRProgram,
    opt_level: int,
    cisc_fusion: bool = False,
    allocatable_int_regs: int = 16,
) -> dict:
    """Alias of :func:`optimize_ir` kept for the public API."""
    return optimize_ir(program, opt_level, cisc_fusion, allocatable_int_regs)
