"""Linear-scan register allocation over IR virtual registers.

Classic Poletto/Sarkar linear scan with interval extension from block-level
liveness (the IR is not SSA, so a temp may have several defs; intervals are
widened to cover every block where the temp is live-in/live-out).

Integer and float temps are allocated from separate register files.  The
last two registers of each file are reserved by the target as spill
scratch and never allocated here.  Spilled temps are materialized by the
code generator through those scratch registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Address, IRFunction, StackSlot, Temp


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    # temp -> physical register index (within its file)
    registers: dict[Temp, int] = field(default_factory=dict)
    # temp -> spill slot
    spills: dict[Temp, StackSlot] = field(default_factory=dict)
    spill_count: int = 0

    def location(self, temp: Temp) -> tuple[str, int | StackSlot]:
        if temp in self.registers:
            return ("reg", self.registers[temp])
        return ("spill", self.spills[temp])


def _instruction_temps(instr) -> tuple[list[Temp], Temp | None]:
    """(uses, def) of an instruction, including temps inside addresses."""
    uses = list(instr.uses())
    # BinOp rhs may be a fused Address (after the fusion pass); Instr.uses()
    # already walks Address operands via _operand_uses.
    return uses, instr.defs()


def _block_liveness(func: IRFunction) -> tuple[dict[str, set[Temp]], dict[str, set[Temp]]]:
    """Compute live-in / live-out sets per block (backward dataflow)."""
    use: dict[str, set[Temp]] = {}
    defs: dict[str, set[Temp]] = {}
    succs: dict[str, list[str]] = {}
    for blk in func.blocks:
        block_use: set[Temp] = set()
        block_def: set[Temp] = set()
        for instr in blk.instrs:
            instr_uses, instr_def = _instruction_temps(instr)
            for temp in instr_uses:
                if temp not in block_def:
                    block_use.add(temp)
            if instr_def is not None:
                block_def.add(instr_def)
        use[blk.label] = block_use
        defs[blk.label] = block_def
        succs[blk.label] = blk.successor_labels()
    live_in: dict[str, set[Temp]] = {blk.label: set() for blk in func.blocks}
    live_out: dict[str, set[Temp]] = {blk.label: set() for blk in func.blocks}
    changed = True
    order = [blk.label for blk in reversed(func.blocks)]
    while changed:
        changed = False
        for label in order:
            out: set[Temp] = set()
            for succ in succs[label]:
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out


@dataclass
class _Interval:
    temp: Temp
    start: int
    end: int


def _build_intervals(func: IRFunction) -> list[_Interval]:
    live_in, live_out = _block_liveness(func)
    starts: dict[Temp, int] = {}
    ends: dict[Temp, int] = {}

    def note(temp: Temp, pos: int) -> None:
        if temp not in starts or pos < starts[temp]:
            starts[temp] = pos
        if temp not in ends or pos > ends[temp]:
            ends[temp] = pos

    position = 0
    for param in func.param_temps:
        note(param, 0)
    for blk in func.blocks:
        block_start = position
        for instr in blk.instrs:
            uses, definition = _instruction_temps(instr)
            for temp in uses:
                note(temp, position)
            if definition is not None:
                note(definition, position)
            position += 1
        block_end = position - 1 if position > block_start else block_start
        for temp in live_in[blk.label]:
            note(temp, block_start)
        for temp in live_out[blk.label]:
            note(temp, block_end)
    intervals = [_Interval(temp, starts[temp], ends[temp]) for temp in starts]
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals


def allocate_registers(
    func: IRFunction, num_int_regs: int, num_float_regs: int
) -> Allocation:
    """Allocate physical registers for every temp in *func*.

    ``num_int_regs``/``num_float_regs`` are the *allocatable* counts
    (scratch registers excluded by the caller).  Spill slots are appended
    to ``func.stack_slots``.
    """
    allocation = Allocation()
    intervals = _build_intervals(func)
    free: dict[str, list[int]] = {
        "i": list(range(num_int_regs - 1, -1, -1)),
        "f": list(range(num_float_regs - 1, -1, -1)),
    }
    active: dict[str, list[_Interval]] = {"i": [], "f": []}

    def expire(kind: str, start: int) -> None:
        keep: list[_Interval] = []
        for interval in active[kind]:
            if interval.end < start:
                free[kind].append(allocation.registers[interval.temp])
            else:
                keep.append(interval)
        active[kind] = keep

    def spill(interval: _Interval) -> None:
        allocation.spill_count += 1
        slot = StackSlot(f"spill.{allocation.spill_count}", 1)
        func.stack_slots.append(slot)
        allocation.spills[interval.temp] = slot

    for interval in intervals:
        kind = interval.temp.kind
        expire(kind, interval.start)
        if free[kind]:
            allocation.registers[interval.temp] = free[kind].pop()
            active[kind].append(interval)
            continue
        # No free register: spill whichever interval ends last.
        victim = max(active[kind], key=lambda iv: iv.end)
        if victim.end > interval.end:
            allocation.registers[interval.temp] = allocation.registers.pop(victim.temp)
            active[kind].remove(victim)
            active[kind].append(interval)
            spill(victim)
        else:
            spill(interval)
    return allocation
