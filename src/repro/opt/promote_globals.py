"""Register promotion of global scalars across loops (O2).

Mini-C has no address-of operator, so a global *scalar* can never alias
an array access or another name — promoting it to a register across a
loop is unconditionally sound provided the loop makes no calls (a callee
could read/write it) and does not return from inside the loop.

For each natural loop (innermost first) and each global scalar accessed
in it:

* a preheader load brings the value into a fresh temp;
* loads inside the loop become register moves, stores become moves into
  the temp;
* if the loop writes the scalar, every exit edge is split and a
  write-back store placed on it.

This is the optimization that lets tight loops over globals (SHA's H0..H4
chain, the synthetic benchmarks' scalar pool) speed up at -O2 the way
real compilers make them — without it, Fig. 11's speedups collapse for
any globals-heavy code.
"""

from __future__ import annotations

from repro.ir.cfg import ControlFlowGraph, find_natural_loops
from repro.ir.instructions import (
    Address,
    BasicBlockRef,
    Branch,
    Call,
    IRFunction,
    IRProgram,
    Jump,
    Load,
    LoadAddress,
    Print,
    Ret,
    Store,
    Temp,
    UnOp,
)


def _global_scalar_symbol(addr: Address, scalar_globals: set[str]) -> str | None:
    if isinstance(addr.base, str) and addr.index is None and addr.base in scalar_globals:
        return addr.base
    return None


def promote_globals_function(
    func: IRFunction,
    scalar_globals: dict[str, str],
    max_int_candidates: int = 8,
    max_float_candidates: int = 8,
) -> int:
    """Promote global scalars across loops of *func*; returns count.

    ``max_*_candidates`` bound how many scalars are promoted per loop —
    on a register-starved target, promoting everything just converts
    reloads into spill traffic, so the hottest (most-accessed) scalars
    win.
    """
    promoted = 0
    # Label counter continues past any stubs from earlier pipeline stages
    # (the pass runs at both O1 and O2).
    stub_counter = sum(
        1 for blk in func.blocks if blk.label.startswith(("gpromo", "gwb"))
    )
    # Innermost-first: sort loops by body size ascending each round.
    changed = True
    processed_headers: set[str] = set()
    while changed:
        changed = False
        cfg = ControlFlowGraph(func)
        loops = sorted(find_natural_loops(cfg), key=lambda lp: len(lp.body))
        for loop in loops:
            if loop.header in processed_headers:
                continue
            processed_headers.add(loop.header)
            body_blocks = [blk for blk in func.blocks if blk.label in loop.body]
            has_call = any(
                isinstance(instr, Call)
                for blk in body_blocks
                for instr in blk.instrs
            )
            has_ret = any(
                isinstance(instr, Ret)
                for blk in body_blocks
                for instr in blk.instrs
            )
            if has_call:
                continue
            reads: dict[str, str] = {}
            writes: dict[str, str] = {}
            access_counts: dict[str, int] = {}
            for blk in body_blocks:
                for instr in blk.instrs:
                    if isinstance(instr, Load):
                        symbol = _global_scalar_symbol(instr.addr, set(scalar_globals))
                        if symbol is not None:
                            reads[symbol] = scalar_globals[symbol]
                            access_counts[symbol] = access_counts.get(symbol, 0) + 1
                    elif isinstance(instr, Store):
                        symbol = _global_scalar_symbol(instr.addr, set(scalar_globals))
                        if symbol is not None:
                            writes[symbol] = scalar_globals[symbol]
                            access_counts[symbol] = access_counts.get(symbol, 0) + 1
            if has_ret:
                # Cannot place write-backs before an in-loop return: only
                # promote read-only scalars.
                candidates = {s: k for s, k in reads.items() if s not in writes}
            else:
                candidates = {**reads, **writes}
            if not candidates:
                continue
            # Keep the hottest candidates within the register budget.
            by_heat = sorted(candidates, key=lambda s: -access_counts.get(s, 0))
            kept: dict[str, str] = {}
            int_used = 0
            float_used = 0
            for symbol in by_heat:
                kind = candidates[symbol]
                if kind == "f":
                    if float_used < max_float_candidates:
                        kept[symbol] = kind
                        float_used += 1
                elif int_used < max_int_candidates:
                    kept[symbol] = kind
                    int_used += 1
            if not kept:
                continue
            stub_counter = self_promote(func, loop, kept, stub_counter)
            promoted += len(kept)
            changed = True
            break  # CFG changed: recompute loops
    return promoted


def self_promote(func: IRFunction, loop, candidates: dict[str, str],
                 stub_counter: int) -> int:
    """Apply promotion of *candidates* for one loop.  Returns stub count."""
    temps: dict[str, Temp] = {
        symbol: func.new_temp(kind) for symbol, kind in candidates.items()
    }
    written: set[str] = set()
    # Rewrite loads/stores inside the loop body.
    for blk in func.blocks:
        if blk.label not in loop.body:
            continue
        rewritten = []
        for instr in blk.instrs:
            if isinstance(instr, Load):
                symbol = instr.addr.base if isinstance(instr.addr.base, str) else None
                if symbol in temps and instr.addr.index is None:
                    op = "fmov" if instr.dst.kind == "f" else "mov"
                    rewritten.append(UnOp(op, instr.dst, temps[symbol]))
                    continue
            elif isinstance(instr, Store):
                symbol = instr.addr.base if isinstance(instr.addr.base, str) else None
                if symbol in temps and instr.addr.index is None:
                    temp = temps[symbol]
                    op = "fmov" if temp.kind == "f" else "mov"
                    rewritten.append(UnOp(op, temp, instr.src))
                    written.add(symbol)
                    continue
            rewritten.append(instr)
        blk.instrs = rewritten
    # Preheader: load every candidate before entering the loop.
    preheader_instrs = [
        Load(temps[symbol], Address(symbol)) for symbol in temps
    ]
    preheader_label = f"gpromo{stub_counter}.{loop.header}"
    stub_counter += 1
    preheader = BasicBlockRef(preheader_label, preheader_instrs + [Jump(loop.header)])
    back_edges = set(loop.back_edges)
    for blk in func.blocks:
        if blk.label in back_edges or blk.label == preheader_label:
            continue
        term = blk.terminator
        if isinstance(term, Jump) and term.label == loop.header:
            term.label = preheader_label
        elif isinstance(term, Branch):
            if term.then_label == loop.header:
                term.then_label = preheader_label
            if term.other_label == loop.header:
                term.other_label = preheader_label
    header_index = next(
        i for i, blk in enumerate(func.blocks) if blk.label == loop.header
    )
    func.blocks.insert(header_index, preheader)
    # Write-backs on every exit edge (written scalars only).
    if written:
        exits: list[tuple[str, str]] = []  # (from label, to label)
        for blk in func.blocks:
            if blk.label not in loop.body:
                continue
            for succ in blk.successor_labels():
                if succ not in loop.body:
                    exits.append((blk.label, succ))
        for src_label, dst_label in exits:
            stub_label = f"gwb{stub_counter}.{src_label}"
            stub_counter += 1
            stores = [
                Store(temps[symbol], Address(symbol)) for symbol in written
            ]
            stub = BasicBlockRef(stub_label, stores + [Jump(dst_label)])
            src_block = next(b for b in func.blocks if b.label == src_label)
            term = src_block.terminator
            if isinstance(term, Jump) and term.label == dst_label:
                term.label = stub_label
            elif isinstance(term, Branch):
                if term.then_label == dst_label:
                    term.then_label = stub_label
                if term.other_label == dst_label:
                    term.other_label = stub_label
            dst_index = next(
                i for i, b in enumerate(func.blocks) if b.label == dst_label
            )
            func.blocks.insert(dst_index, stub)
    return stub_counter


def promote_globals(program: IRProgram, allocatable_int_regs: int = 16) -> int:
    """Run global-scalar promotion program-wide; returns promotion count."""
    scalar_globals = {
        name: gvar.kind
        for name, gvar in program.globals.items()
        if gvar.size == 1
    }
    if not scalar_globals:
        return 0
    max_int = max(3, allocatable_int_regs - 4)
    max_float = max(3, allocatable_int_regs - 4)
    return sum(
        promote_globals_function(func, scalar_globals, max_int, max_float)
        for func in program.functions.values()
    )
