"""Dead-code elimination.

Removes pure instructions (ALU ops, loads, address computations, constant
loads, moves) whose destination temp is never used anywhere in the
function.  Iterates to a fixpoint so chains of dead computations collapse.
Stores, calls, prints and terminators are always live.
"""

from __future__ import annotations

from repro.ir.instructions import (
    BinOp,
    IRFunction,
    IRProgram,
    Load,
    LoadAddress,
    LoadConst,
    Temp,
    UnOp,
)

_PURE = (BinOp, UnOp, Load, LoadAddress, LoadConst)


def _use_counts(func: IRFunction) -> dict[Temp, int]:
    counts: dict[Temp, int] = {}
    for blk in func.blocks:
        for instr in blk.instrs:
            for temp in instr.uses():
                counts[temp] = counts.get(temp, 0) + 1
    return counts


def eliminate_dead_code_function(func: IRFunction) -> int:
    removed = 0
    while True:
        counts = _use_counts(func)
        changed = False
        for blk in func.blocks:
            kept = []
            for instr in blk.instrs:
                if isinstance(instr, _PURE):
                    dst = instr.defs()
                    if dst is not None and counts.get(dst, 0) == 0:
                        removed += 1
                        changed = True
                        continue
                kept.append(instr)
            blk.instrs = kept
        if not changed:
            return removed


def eliminate_dead_code(program: IRProgram) -> int:
    """Remove dead code program-wide; returns removed instruction count."""
    return sum(eliminate_dead_code_function(func) for func in program.functions.values())
