"""CISC load-op fusion (x86-style memory operands).

For targets with ``cisc_fusion``, a load whose result feeds exactly one
immediately-following ALU instruction is folded into that instruction as a
memory operand — mirroring ``addl t+504, %eax``.  The fused instruction
keeps its ALU klass for instruction-mix purposes but still produces a
data-cache access, exactly like hardware.

Constraints (soundness + spill safety):

* load and consumer are adjacent in the same block;
* the loaded temp has exactly one use in the whole function;
* the address contains at most one temp (scratch-register budget);
* value kinds match (int loads into int ops, float into float).
"""

from __future__ import annotations

from repro.ir.instructions import Address, BinOp, IRFunction, IRProgram, Load, Temp


def _use_counts(func: IRFunction) -> dict[Temp, int]:
    counts: dict[Temp, int] = {}
    for blk in func.blocks:
        for instr in blk.instrs:
            for temp in instr.uses():
                counts[temp] = counts.get(temp, 0) + 1
    return counts


def _address_temp_count(addr: Address) -> int:
    count = 0
    if isinstance(addr.base, Temp):
        count += 1
    if isinstance(addr.index, Temp):
        count += 1
    return count


def fuse_memory_operands_function(func: IRFunction) -> int:
    counts = _use_counts(func)
    fused = 0
    for blk in func.blocks:
        result: list = []
        i = 0
        while i < len(blk.instrs):
            instr = blk.instrs[i]
            nxt = blk.instrs[i + 1] if i + 1 < len(blk.instrs) else None
            if (
                isinstance(instr, Load)
                and isinstance(nxt, BinOp)
                and not isinstance(nxt.rhs, Address)
                and counts.get(instr.dst, 0) == 1
                and nxt.rhs == instr.dst
                and nxt.lhs != instr.dst
                and _address_temp_count(instr.addr) <= 1
            ):
                float_op = nxt.op.startswith("f")
                if (instr.dst.kind == "f") == float_op:
                    nxt.rhs = instr.addr
                    result.append(nxt)
                    fused += 1
                    i += 2
                    continue
            result.append(instr)
            i += 1
        blk.instrs = result
    return fused


def fuse_memory_operands(program: IRProgram) -> int:
    """Fuse load-op pairs program-wide; returns fusion count."""
    return sum(
        fuse_memory_operands_function(func) for func in program.functions.values()
    )
