"""Loop unrolling (O3, source-to-source).

Rewrites counted loops of the canonical shape

    for (i = A; i < N; i++) body          (also <=, and i += 1)

into a 2x-unrolled main loop plus a remainder loop:

    { i = A;
      while ((i + 1) < N) { body; i++; body; i++; }
      while (i < N)       { body; i++; } }

Constraints: the induction variable is a scalar ``int``/``unsigned``
identifier, the body contains no ``break``/``continue``/``return`` and
never writes the induction variable or any identifier appearing in the
bound, and the bound expression is pure.  Innermost loops are rewritten
first (the walker recurses before transforming).
"""

from __future__ import annotations

import copy

from repro.lang import ast_nodes as ast
from repro.opt.inline import _is_pure  # shared purity test

MAX_BODY_STATEMENTS = 12


def _writes_name(stmt: ast.Stmt, names: set[str]) -> bool:
    """Does *stmt* assign to / increment any identifier in *names*?"""

    def expr_writes(expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Assign):
            target = expr.target
            if isinstance(target, ast.Ident) and target.name in names:
                return True
            if isinstance(target, ast.ArrayRef) and expr_writes(target.index):
                return True
            return expr_writes(expr.value)
        if isinstance(expr, ast.IncDec):
            target = expr.target
            if isinstance(target, ast.Ident) and target.name in names:
                return True
            return False
        if isinstance(expr, ast.BinOp):
            return expr_writes(expr.left) or expr_writes(expr.right)
        if isinstance(expr, (ast.UnaryOp, ast.Cast)):
            return expr_writes(expr.operand)
        if isinstance(expr, ast.ArrayRef):
            return expr_writes(expr.index)
        if isinstance(expr, ast.Ternary):
            return expr_writes(expr.cond) or expr_writes(expr.then) or expr_writes(expr.other)
        if isinstance(expr, ast.Call):
            return any(expr_writes(arg) for arg in expr.args)
        return False

    if isinstance(stmt, ast.ExprStmt):
        return expr_writes(stmt.expr)
    if isinstance(stmt, ast.Decl):
        if stmt.name in names:
            return True
        if isinstance(stmt.init, ast.Expr):
            return expr_writes(stmt.init)
        return False
    if isinstance(stmt, ast.Block):
        return any(_writes_name(inner, names) for inner in stmt.stmts)
    if isinstance(stmt, ast.If):
        return (
            expr_writes(stmt.cond)
            or _writes_name(stmt.then, names)
            or (stmt.other is not None and _writes_name(stmt.other, names))
        )
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        return expr_writes(stmt.cond) or _writes_name(stmt.body, names)
    if isinstance(stmt, ast.For):
        parts = [stmt.body]
        if stmt.init is not None:
            parts.append(stmt.init)
        inner = any(_writes_name(part, names) for part in parts)
        if stmt.cond is not None:
            inner = inner or expr_writes(stmt.cond)
        if stmt.step is not None:
            inner = inner or expr_writes(stmt.step)
        return inner
    return False


def _has_jumps(stmt: ast.Stmt, top: bool = True) -> bool:
    """break/continue/return anywhere in *stmt* (not descending into
    nested loops for break/continue, which re-bind)."""
    if isinstance(stmt, (ast.Break, ast.Continue, ast.Return)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_has_jumps(inner, False) for inner in stmt.stmts)
    if isinstance(stmt, ast.If):
        if _has_jumps(stmt.then, False):
            return True
        return stmt.other is not None and _has_jumps(stmt.other, False)
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        # A nested loop captures break/continue but a return still escapes;
        # be conservative and refuse to unroll around nested loops with
        # returns inside.
        return _contains_return(stmt)
    return False


def _contains_return(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.Return):
        return True
    if isinstance(stmt, ast.Block):
        return any(_contains_return(inner) for inner in stmt.stmts)
    if isinstance(stmt, ast.If):
        if _contains_return(stmt.then):
            return True
        return stmt.other is not None and _contains_return(stmt.other)
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        return _contains_return(stmt.body)
    if isinstance(stmt, ast.For):
        return _contains_return(stmt.body)
    return False


def _bound_names(expr: ast.Expr) -> set[str]:
    names: set[str] = set()
    if isinstance(expr, ast.Ident):
        names.add(expr.name)
    elif isinstance(expr, ast.BinOp):
        names |= _bound_names(expr.left)
        names |= _bound_names(expr.right)
    elif isinstance(expr, (ast.UnaryOp, ast.Cast)):
        names |= _bound_names(expr.operand)
    elif isinstance(expr, ast.ArrayRef):
        names.add(expr.base)
        names |= _bound_names(expr.index)
    return names


def _step_var(step: ast.Expr) -> str | None:
    """Induction variable name if the step is i++/++i/i += 1, else None."""
    if isinstance(step, ast.IncDec) and step.op == "++":
        if isinstance(step.target, ast.Ident):
            return step.target.name
    if isinstance(step, ast.Assign) and step.op == "+=":
        if isinstance(step.target, ast.Ident) and isinstance(step.value, ast.IntLit):
            if step.value.value == 1:
                return step.target.name
    return None


def _body_size(stmt: ast.Stmt) -> int:
    if isinstance(stmt, ast.Block):
        return sum(_body_size(inner) for inner in stmt.stmts)
    if isinstance(stmt, ast.If):
        size = 1 + _body_size(stmt.then)
        if stmt.other is not None:
            size += _body_size(stmt.other)
        return size
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        return 1 + _body_size(stmt.body)
    return 1


def _try_unroll(loop: ast.For) -> ast.Stmt | None:
    if loop.cond is None or loop.step is None or loop.body is None:
        return None
    var = _step_var(loop.step)
    if var is None:
        return None
    cond = loop.cond
    if not isinstance(cond, ast.BinOp) or cond.op not in ("<", "<="):
        return None
    if not (isinstance(cond.left, ast.Ident) and cond.left.name == var):
        return None
    bound = cond.right
    if not _is_pure(bound):
        return None
    if _body_size(loop.body) > MAX_BODY_STATEMENTS:
        return None
    if _has_jumps(loop.body):
        return None
    protected = {var} | _bound_names(bound)
    if _writes_name(loop.body, protected):
        return None

    def ident() -> ast.Ident:
        return ast.Ident(name=var)

    def incr() -> ast.ExprStmt:
        return ast.ExprStmt(expr=ast.IncDec(op="++", target=ident(), prefix=False))

    main_cond = ast.BinOp(
        op=cond.op,
        left=ast.BinOp(op="+", left=ident(), right=ast.IntLit(value=1)),
        right=copy.deepcopy(bound),
    )
    main_body = ast.Block(
        stmts=[
            copy.deepcopy(loop.body),
            incr(),
            copy.deepcopy(loop.body),
            incr(),
        ]
    )
    remainder_cond = ast.BinOp(op=cond.op, left=ident(), right=copy.deepcopy(bound))
    remainder_body = ast.Block(stmts=[copy.deepcopy(loop.body), incr()])
    stmts: list[ast.Stmt] = []
    if loop.init is not None:
        stmts.append(copy.deepcopy(loop.init))
    stmts.append(ast.While(cond=main_cond, body=main_body, line=loop.line))
    stmts.append(ast.While(cond=remainder_cond, body=remainder_body, line=loop.line))
    return ast.Block(stmts=stmts, line=loop.line)


class _Unroller:
    def __init__(self) -> None:
        self.count = 0

    def rewrite(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            stmt.stmts = [self.rewrite(inner) for inner in stmt.stmts]
            return stmt
        if isinstance(stmt, ast.If):
            stmt.then = self.rewrite(stmt.then)
            if stmt.other is not None:
                stmt.other = self.rewrite(stmt.other)
            return stmt
        if isinstance(stmt, ast.While):
            stmt.body = self.rewrite(stmt.body)
            return stmt
        if isinstance(stmt, ast.DoWhile):
            stmt.body = self.rewrite(stmt.body)
            return stmt
        if isinstance(stmt, ast.For):
            stmt.body = self.rewrite(stmt.body)
            unrolled = _try_unroll(stmt)
            if unrolled is not None:
                self.count += 1
                return unrolled
            return stmt
        return stmt


def unroll_loops(program: ast.Program) -> ast.Program:
    """Return a copy of *program* with eligible loops 2x-unrolled."""
    clone = copy.deepcopy(program)
    unroller = _Unroller()
    for func in clone.functions:
        func.body = unroller.rewrite(func.body)
    return clone
