"""Function inlining (O3, source-to-source).

Inlines calls to *expression functions* — functions whose body is a single
``return expr;`` with scalar parameters and no calls — by substituting the
argument expressions into a copy of the returned expression.  Arguments
must be pure (no assignments, ++/--, or calls); non-trivial arguments are
only substituted when the parameter is used at most once.

Operating at the AST level mirrors how such abstraction-removal shows up
to the rest of *this* pipeline and keeps the transform trivially correct.
"""

from __future__ import annotations

import copy

from repro.lang import ast_nodes as ast

MAX_INLINE_USES = 4


def _is_pure(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit, ast.Ident)):
        return True
    if isinstance(expr, ast.ArrayRef):
        return _is_pure(expr.index)
    if isinstance(expr, ast.BinOp):
        return _is_pure(expr.left) and _is_pure(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _is_pure(expr.operand)
    if isinstance(expr, ast.Cast):
        return _is_pure(expr.operand)
    if isinstance(expr, ast.Ternary):
        return _is_pure(expr.cond) and _is_pure(expr.then) and _is_pure(expr.other)
    return False


def _is_trivial(expr: ast.Expr) -> bool:
    return isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit, ast.Ident))


def _count_ident_uses(expr: ast.Expr, name: str) -> int:
    count = 0
    if isinstance(expr, ast.Ident) and expr.name == name:
        return 1
    for child in _expr_children(expr):
        count += _count_ident_uses(child, name)
    return count


def _expr_children(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.ArrayRef):
        return [expr.index]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.then, expr.other]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.IncDec):
        return [expr.target]
    return []


def _substitute(expr: ast.Expr, bindings: dict[str, ast.Expr]) -> ast.Expr:
    """Deep-copy *expr* with parameter identifiers replaced."""
    if isinstance(expr, ast.Ident) and expr.name in bindings:
        return copy.deepcopy(bindings[expr.name])
    clone = copy.copy(expr)
    if isinstance(expr, ast.BinOp):
        clone.left = _substitute(expr.left, bindings)
        clone.right = _substitute(expr.right, bindings)
    elif isinstance(expr, ast.UnaryOp):
        clone.operand = _substitute(expr.operand, bindings)
    elif isinstance(expr, ast.Cast):
        clone.operand = _substitute(expr.operand, bindings)
    elif isinstance(expr, ast.ArrayRef):
        clone.index = _substitute(expr.index, bindings)
    elif isinstance(expr, ast.Ternary):
        clone.cond = _substitute(expr.cond, bindings)
        clone.then = _substitute(expr.then, bindings)
        clone.other = _substitute(expr.other, bindings)
    elif isinstance(expr, ast.Call):
        clone.args = [_substitute(arg, bindings) for arg in expr.args]
    return clone


def _has_calls(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Call):
        return True
    return any(_has_calls(child) for child in _expr_children(expr))


def _find_candidates(program: ast.Program) -> dict[str, ast.FuncDecl]:
    """Expression functions eligible for inlining."""
    candidates: dict[str, ast.FuncDecl] = {}
    for func in program.functions:
        if func.name == "main" or func.return_type.is_void():
            continue
        if any(param.is_array for param in func.params):
            continue
        stmts = func.body.stmts
        if len(stmts) != 1 or not isinstance(stmts[0], ast.Return):
            continue
        expr = stmts[0].value
        if expr is None or _has_calls(expr) or not _is_pure(expr):
            continue
        candidates[func.name] = func
    return candidates


class _Inliner:
    def __init__(self, candidates: dict[str, ast.FuncDecl]):
        self.candidates = candidates
        self.count = 0

    def rewrite_expr(self, expr: ast.Expr) -> ast.Expr:
        # Rewrite children first so nested calls inline inside-out.
        if isinstance(expr, ast.BinOp):
            expr.left = self.rewrite_expr(expr.left)
            expr.right = self.rewrite_expr(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            expr.operand = self.rewrite_expr(expr.operand)
        elif isinstance(expr, ast.Cast):
            expr.operand = self.rewrite_expr(expr.operand)
        elif isinstance(expr, ast.ArrayRef):
            expr.index = self.rewrite_expr(expr.index)
        elif isinstance(expr, ast.Ternary):
            expr.cond = self.rewrite_expr(expr.cond)
            expr.then = self.rewrite_expr(expr.then)
            expr.other = self.rewrite_expr(expr.other)
        elif isinstance(expr, ast.Assign):
            expr.value = self.rewrite_expr(expr.value)
            if isinstance(expr.target, ast.ArrayRef):
                expr.target.index = self.rewrite_expr(expr.target.index)
        elif isinstance(expr, ast.IncDec):
            pass
        elif isinstance(expr, ast.Call):
            expr.args = [self.rewrite_expr(arg) for arg in expr.args]
            inlined = self._try_inline(expr)
            if inlined is not None:
                return inlined
        return expr

    def _try_inline(self, call: ast.Call) -> ast.Expr | None:
        func = self.candidates.get(call.name)
        if func is None:
            return None
        body_expr = func.body.stmts[0].value
        bindings: dict[str, ast.Expr] = {}
        for param, arg in zip(func.params, call.args):
            if not _is_pure(arg):
                return None
            uses = _count_ident_uses(body_expr, param.name)
            if uses > 1 and not _is_trivial(arg):
                return None
            if uses > MAX_INLINE_USES:
                return None
            bindings[param.name] = arg
        self.count += 1
        result = _substitute(body_expr, bindings)
        if not func.return_type.is_float():
            return result
        return ast.Cast(target=func.return_type, operand=result, line=call.line)

    def rewrite_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.rewrite_expr(stmt.expr)
        elif isinstance(stmt, ast.Decl) and isinstance(stmt.init, ast.Expr):
            stmt.init = self.rewrite_expr(stmt.init)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self.rewrite_stmt(inner)
        elif isinstance(stmt, ast.If):
            stmt.cond = self.rewrite_expr(stmt.cond)
            self.rewrite_stmt(stmt.then)
            if stmt.other is not None:
                self.rewrite_stmt(stmt.other)
        elif isinstance(stmt, ast.While):
            stmt.cond = self.rewrite_expr(stmt.cond)
            self.rewrite_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            stmt.cond = self.rewrite_expr(stmt.cond)
            self.rewrite_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.rewrite_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self.rewrite_expr(stmt.cond)
            if stmt.step is not None:
                stmt.step = self.rewrite_expr(stmt.step)
            self.rewrite_stmt(stmt.body)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            stmt.value = self.rewrite_expr(stmt.value)


def inline_small_functions(program: ast.Program) -> ast.Program:
    """Return a copy of *program* with expression functions inlined."""
    clone = copy.deepcopy(program)
    candidates = _find_candidates(clone)
    if not candidates:
        return clone
    inliner = _Inliner(candidates)
    for func in clone.functions:
        if func.name in candidates:
            continue  # don't rewrite the candidates themselves
        for stmt in func.body.stmts:
            inliner.rewrite_stmt(stmt)
    return clone
