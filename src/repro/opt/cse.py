"""Block-local common-subexpression elimination (local value numbering).

Within a basic block, a pure expression ``(op, operands)`` that was
already computed into a still-valid temp is replaced by a move from that
temp.  Loads participate too, keyed on their address, and are invalidated
by any store or call (conservative alias model: all memory is one
location class).  An expression also dies when any temp it mentions is
redefined.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Address,
    BinOp,
    Call,
    Const,
    IRFunction,
    IRProgram,
    Load,
    LoadAddress,
    Print,
    StackSlot,
    Store,
    Temp,
    UnOp,
)
from repro.ir.ops_eval import COMMUTATIVE_OPS


def _operand_key(operand) -> tuple | None:
    if isinstance(operand, Temp):
        return ("t", operand.id, operand.kind)
    if isinstance(operand, Const):
        return ("c", operand.value, operand.kind)
    return None


def _address_key(addr: Address) -> tuple | None:
    if isinstance(addr.base, str):
        base_key = ("g", addr.base)
    elif isinstance(addr.base, StackSlot):
        base_key = ("s", addr.base.name)
    else:
        base_key = ("t", addr.base.id)
    index_key = _operand_key(addr.index) if addr.index is not None else None
    return (base_key, index_key)


def _expr_key(instr) -> tuple | None:
    """Hashable signature of a pure computation, or None if not eligible."""
    if isinstance(instr, BinOp):
        if isinstance(instr.rhs, Address):
            return None  # fused memory operand: leave alone
        lhs, rhs = _operand_key(instr.lhs), _operand_key(instr.rhs)
        if instr.op in COMMUTATIVE_OPS and rhs < lhs:
            lhs, rhs = rhs, lhs
        return ("bin", instr.op, lhs, rhs)
    if isinstance(instr, UnOp) and instr.op not in ("mov", "fmov"):
        return ("un", instr.op, _operand_key(instr.src))
    if isinstance(instr, LoadAddress):
        base = instr.base if isinstance(instr.base, str) else instr.base.name
        return ("lea", base)
    if isinstance(instr, Load):
        return ("mem", _address_key(instr.addr))
    return None


def _mentioned_temps(key: tuple) -> set[int]:
    temps: set[int] = set()

    def walk(item) -> None:
        if isinstance(item, tuple):
            if len(item) >= 2 and item[0] == "t" and isinstance(item[1], int):
                temps.add(item[1])
            for sub in item:
                walk(sub)

    walk(key)
    return temps


def eliminate_common_subexpressions_function(func: IRFunction) -> int:
    changes = 0
    for blk in func.blocks:
        available: dict[tuple, Temp] = {}
        for i, instr in enumerate(blk.instrs):
            if isinstance(instr, (Store, Call, Print)):
                # Conservative: all loads die on stores and calls.
                available = {
                    key: temp for key, temp in available.items() if key[0] != "mem"
                }
                continue
            key = _expr_key(instr)
            definition = instr.defs()
            if key is not None and key in available:
                source = available[key]
                op = "fmov" if instr.defs().kind == "f" else "mov"
                blk.instrs[i] = UnOp(op, instr.defs(), source)
                changes += 1
                definition = blk.instrs[i].defs()
                key = None
            if definition is not None:
                # Kill expressions that mention the redefined temp, and
                # any availability produced by an earlier def of it.
                dead = [
                    k
                    for k, temp in available.items()
                    if temp == definition or definition.id in _mentioned_temps(k)
                ]
                for k in dead:
                    del available[k]
            if key is not None and definition is not None:
                available[key] = definition
    return changes


def eliminate_common_subexpressions(program: IRProgram) -> int:
    """Run local CSE program-wide; returns replacement count."""
    return sum(
        eliminate_common_subexpressions_function(func)
        for func in program.functions.values()
    )
