"""Optimization passes and the -O0..-O3 pass pipelines.

The pipelines mirror GCC's first-order behaviour, which is what the
paper's evaluation reads off (Fig. 5: ~1/3 dynamic-instruction drop from
O0 to O1+; Fig. 6: load fraction shrinks at O2 because copy propagation
removes reloads):

* **O0** — no passes; locals memory-resident (set at IR build time).
* **O1** — scalar promotion (build-time) + constant folding + local CSE
  + dead-code elimination.
* **O2** — O1 + copy propagation + loop-invariant code motion + strength
  reduction, run to a fixpoint.
* **O3** — O2 + inlining of small leaf functions + unrolling of small
  counted loops.
"""

from repro.opt.constant_folding import fold_constants
from repro.opt.copy_propagation import propagate_copies
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.fuse import fuse_memory_operands
from repro.opt.inline import inline_small_functions
from repro.opt.licm import hoist_loop_invariants
from repro.opt.pipeline import OPT_LEVELS, run_pipeline
from repro.opt.regalloc import Allocation, allocate_registers
from repro.opt.strength import reduce_strength
from repro.opt.unroll import unroll_loops

__all__ = [
    "Allocation",
    "OPT_LEVELS",
    "allocate_registers",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "fuse_memory_operands",
    "hoist_loop_invariants",
    "inline_small_functions",
    "propagate_copies",
    "reduce_strength",
    "run_pipeline",
    "unroll_loops",
]
