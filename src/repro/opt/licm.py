"""Loop-invariant code motion.

Hoists pure, non-trapping computations out of natural loops into a
freshly-created preheader.  An instruction is hoistable when:

* it is a pure ALU op, constant load, or address computation (loads are
  hoisted only from loops containing no stores or calls);
* every temp it reads is defined outside the loop (or by an instruction
  already hoisted);
* its destination temp has exactly one definition in the whole function
  (quasi-SSA condition that makes the motion trivially sound).

The preheader takes over every non-back edge into the loop header.
"""

from __future__ import annotations

from repro.ir.cfg import ControlFlowGraph, find_natural_loops
from repro.ir.instructions import (
    Address,
    BasicBlockRef,
    BinOp,
    Branch,
    Call,
    IRFunction,
    IRProgram,
    Jump,
    Load,
    LoadAddress,
    LoadConst,
    Print,
    Store,
    Temp,
    UnOp,
)
from repro.ir.ops_eval import TRAPPING_OPS

_PURE_ALU = (BinOp, UnOp, LoadConst, LoadAddress)


def _definition_counts(func: IRFunction) -> dict[Temp, int]:
    counts: dict[Temp, int] = {}
    for blk in func.blocks:
        for instr in blk.instrs:
            dst = instr.defs()
            if dst is not None:
                counts[dst] = counts.get(dst, 0) + 1
    return counts


def _loop_has_side_effects(func: IRFunction, body: set[str]) -> bool:
    for blk in func.blocks:
        if blk.label in body:
            for instr in blk.instrs:
                if isinstance(instr, (Store, Call, Print)):
                    return True
    return False


def hoist_loop_invariants_function(func: IRFunction) -> int:
    cfg = ControlFlowGraph(func)
    loops = find_natural_loops(cfg)
    if not loops:
        return 0
    def_counts = _definition_counts(func)
    # Temps defined inside each loop body.
    hoisted_total = 0
    preheader_counter = 0
    for loop in loops:  # outermost first: inner loops can re-hoist later
        defined_in_loop: set[Temp] = set()
        for blk in func.blocks:
            if blk.label in loop.body:
                for instr in blk.instrs:
                    dst = instr.defs()
                    if dst is not None:
                        defined_in_loop.add(dst)
        loads_ok = not _loop_has_side_effects(func, loop.body)
        hoisted: list = []
        moved_temps: set[Temp] = set()

        def invariant(instr) -> bool:
            dst = instr.defs()
            if dst is None or def_counts.get(dst, 0) != 1:
                return False
            if isinstance(instr, BinOp):
                if instr.op in TRAPPING_OPS:
                    return False
                if isinstance(instr.rhs, Address):
                    return False
            elif isinstance(instr, UnOp):
                if instr.op in TRAPPING_OPS:
                    return False
            elif isinstance(instr, Load):
                if not loads_ok:
                    return False
            elif not isinstance(instr, (LoadConst, LoadAddress)):
                return False
            for temp in instr.uses():
                if temp in defined_in_loop and temp not in moved_temps:
                    return False
            return True

        changed = True
        while changed:
            changed = False
            for blk in func.blocks:
                if blk.label not in loop.body:
                    continue
                kept = []
                for instr in blk.instrs:
                    if (
                        isinstance(instr, _PURE_ALU + (Load,))
                        and instr.defs() is not None
                        and instr.defs() not in moved_temps
                        and invariant(instr)
                    ):
                        hoisted.append(instr)
                        moved_temps.add(instr.defs())
                        changed = True
                    else:
                        kept.append(instr)
                blk.instrs = kept
        if not hoisted:
            continue
        hoisted_total += len(hoisted)
        preheader_counter += 1
        _insert_preheader(func, loop.header, loop.back_edges, hoisted, preheader_counter)
        cfg = ControlFlowGraph(func)  # structure changed
    return hoisted_total


def _insert_preheader(
    func: IRFunction,
    header: str,
    back_edges: list[str],
    hoisted: list,
    counter: int,
) -> None:
    """Create a preheader with the hoisted code before *header*."""
    label = f"preheader{counter}.{header}"
    preheader = BasicBlockRef(label, hoisted + [Jump(header)])
    back = set(back_edges)
    for blk in func.blocks:
        if blk.label in back or blk.label == label:
            continue
        term = blk.terminator
        if isinstance(term, Jump) and term.label == header:
            term.label = label
        elif isinstance(term, Branch):
            if term.then_label == header:
                term.then_label = label
            if term.other_label == header:
                term.other_label = label
    header_index = next(i for i, blk in enumerate(func.blocks) if blk.label == header)
    func.blocks.insert(header_index, preheader)
    # If the entry block *is* the header, the preheader must become the
    # new entry.
    if header_index == 0:
        pass  # insert already placed the preheader first


def hoist_loop_invariants(program: IRProgram) -> int:
    """Run LICM program-wide; returns hoisted instruction count."""
    return sum(
        hoist_loop_invariants_function(func) for func in program.functions.values()
    )
