"""Strength reduction.

Rewrites expensive integer operations with power-of-two constants into
cheap shifts and masks:

* ``mul x, 2^k``  -> ``shl x, k`` (both signednesses);
* ``udiv x, 2^k`` -> ``shr x, k``;
* ``umod x, 2^k`` -> ``and x, 2^k - 1``.

Signed division is left alone (C's truncation toward zero differs from an
arithmetic shift for negative operands).
"""

from __future__ import annotations

from repro.ir.instructions import BinOp, Const, IRProgram, IRFunction, Temp


def _log2_exact(value: int) -> int | None:
    if value > 0 and (value & (value - 1)) == 0:
        return value.bit_length() - 1
    return None


def reduce_strength_function(func: IRFunction) -> int:
    changes = 0
    for blk in func.blocks:
        for instr in blk.instrs:
            if not isinstance(instr, BinOp) or not isinstance(instr.rhs, Const):
                continue
            if isinstance(instr.rhs.value, float):
                continue
            shift = _log2_exact(instr.rhs.value)
            if shift is None:
                continue
            if instr.op == "mul":
                instr.op = "shl"
                instr.rhs = Const(shift)
                changes += 1
            elif instr.op == "udiv":
                instr.op = "shr"
                instr.rhs = Const(shift)
                changes += 1
            elif instr.op == "umod":
                instr.op = "and"
                instr.rhs = Const(instr.rhs.value - 1)
                changes += 1
    return changes


def reduce_strength(program: IRProgram) -> int:
    """Apply strength reduction program-wide; returns rewrite count."""
    return sum(reduce_strength_function(func) for func in program.functions.values())
