"""Similarity reports for original/synthetic pairs (§V-E)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.obfuscation.gst import gst_similarity
from repro.obfuscation.tokens import normalize_tokens
from repro.obfuscation.winnowing import fingerprint_similarity

# Moss/JPlag flag pairs above roughly this level; the paper reports both
# tools find *no* similarity between originals and clones.
SUSPICION_THRESHOLD = 0.25


@dataclass
class SimilarityReport:
    """Both tools' scores for one document pair."""

    moss_similarity: float  # winnowing fingerprints, Jaccard
    jplag_similarity: float  # greedy string tiling coverage

    @property
    def flagged(self) -> bool:
        return (
            self.moss_similarity >= SUSPICION_THRESHOLD
            or self.jplag_similarity >= SUSPICION_THRESHOLD
        )


def compare_sources(original: str, synthetic: str) -> SimilarityReport:
    """Run both detectors on a source pair."""
    tokens_a = normalize_tokens(original)
    tokens_b = normalize_tokens(synthetic)
    return SimilarityReport(
        moss_similarity=fingerprint_similarity(tokens_a, tokens_b),
        jplag_similarity=gst_similarity(tokens_a, tokens_b),
    )
