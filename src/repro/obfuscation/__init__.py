"""Software-plagiarism detection (§V-E).

The paper validates that synthetic clones expose no proprietary
information by running Moss and JPlag on (original, clone) pairs.  We
implement both tools' published algorithms:

* :mod:`repro.obfuscation.winnowing` — Moss's winnowing fingerprinter
  (Schleimer, Wilkerson & Aiken, SIGMOD 2003): k-gram hashes over a
  normalized token stream, window-minimum fingerprint selection, Jaccard
  similarity over fingerprint sets;
* :mod:`repro.obfuscation.gst` — JPlag's Greedy String Tiling (Prechelt,
  Malpohl & Philippsen): maximal non-overlapping token-run matching with
  a minimum match length, similarity = matched coverage.

Both operate on the mini-C token stream with identifiers/literals
normalized to class tokens, exactly as the real tools normalize source.
"""

from repro.obfuscation.tokens import normalize_tokens
from repro.obfuscation.winnowing import (
    fingerprint_similarity,
    winnow,
    winnow_fingerprints,
)
from repro.obfuscation.gst import greedy_string_tiling, gst_similarity
from repro.obfuscation.report import SimilarityReport, compare_sources

__all__ = [
    "SimilarityReport",
    "compare_sources",
    "fingerprint_similarity",
    "greedy_string_tiling",
    "gst_similarity",
    "normalize_tokens",
    "winnow",
    "winnow_fingerprints",
]
