"""JPlag-style Running-Karp-Rabin Greedy String Tiling.

Implements the RKR-GST algorithm from the JPlag paper (Prechelt, Malpohl
& Philippsen): repeatedly find maximal common substrings no shorter than
``min_match`` that do not overlap already-marked tiles, mark the longest
ones first, and stop when nothing above the threshold remains.
Karp-Rabin hashing of ``min_match``-grams gives the candidate positions,
so typical documents are processed in near-linear time (plain greedy
string tiling is cubic and chokes on the multi-thousand-token array
initializers our workloads embed).

Similarity is JPlag's measure: ``2 * matched / (len(a) + len(b))``.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_MIN_MATCH = 8
_MAX_ROUNDS = 64


@dataclass(frozen=True)
class Tile:
    """One maximal matched run."""

    start_a: int
    start_b: int
    length: int


def _gram_buckets(
    tokens: list[str], marked: list[bool], size: int
) -> dict[tuple, list[int]]:
    """Positions of each unmarked token ``size``-gram."""
    buckets: dict[tuple, list[int]] = {}
    for j in range(len(tokens) - size + 1):
        if any(marked[j + k] for k in range(size)):
            continue
        buckets.setdefault(tuple(tokens[j : j + size]), []).append(j)
    return buckets


def greedy_string_tiling(
    a: list[str], b: list[str], min_match: int = DEFAULT_MIN_MATCH
) -> list[Tile]:
    """Maximal non-overlapping common tiles of *a* and *b*."""
    marked_a = [False] * len(a)
    marked_b = [False] * len(b)
    tiles: list[Tile] = []
    if len(a) < min_match or len(b) < min_match:
        return tiles
    for _ in range(_MAX_ROUNDS):
        buckets = _gram_buckets(b, marked_b, min_match)
        matches: list[Tile] = []
        best = min_match - 1
        i = 0
        while i + min_match <= len(a):
            if marked_a[i]:
                i += 1
                continue
            gram = tuple(a[i : i + min_match])
            candidates = buckets.get(gram)
            if not candidates:
                i += 1
                continue
            local_best: Tile | None = None
            for j in candidates:
                # Cheap dominance check: can this candidate beat the best?
                if local_best is not None:
                    length = local_best.length
                    if (
                        i + length >= len(a)
                        or j + length >= len(b)
                        or marked_a[i + length]
                        or marked_b[j + length]
                        or a[i + length] != b[j + length]
                    ):
                        continue
                length = 0
                while (
                    i + length < len(a)
                    and j + length < len(b)
                    and not marked_a[i + length]
                    and not marked_b[j + length]
                    and a[i + length] == b[j + length]
                ):
                    length += 1
                if local_best is None or length > local_best.length:
                    local_best = Tile(i, j, length)
            if local_best is not None and local_best.length >= min_match:
                matches.append(local_best)
                best = max(best, local_best.length)
                i += local_best.length  # maximality: skip inside the match
            else:
                i += 1
        if not matches:
            break
        # Mark longest-first, skipping matches that now overlap.
        matches.sort(key=lambda t: -t.length)
        progressed = False
        for tile in matches:
            if any(
                marked_a[tile.start_a + k] or marked_b[tile.start_b + k]
                for k in range(tile.length)
            ):
                continue
            for k in range(tile.length):
                marked_a[tile.start_a + k] = True
                marked_b[tile.start_b + k] = True
            tiles.append(tile)
            progressed = True
        if not progressed:
            break
    return tiles


def gst_similarity(
    a: list[str], b: list[str], min_match: int = DEFAULT_MIN_MATCH
) -> float:
    """JPlag similarity: matched coverage of both streams (0..1)."""
    if not a and not b:
        return 1.0
    tiles = greedy_string_tiling(a, b, min_match)
    matched = sum(tile.length for tile in tiles)
    return 2.0 * matched / (len(a) + len(b))
