"""Moss-style winnowing fingerprints (Schleimer et al., SIGMOD 2003).

1. Normalize the token stream (:mod:`repro.obfuscation.tokens`).
2. Hash every k-gram of tokens.
3. Slide a window of w hashes; record the minimum of each window
   (rightmost on ties) — the *winnowing* guarantee is that any match of
   length >= w + k - 1 shares at least one fingerprint.
4. Similarity of two documents = Jaccard index of fingerprint sets.
"""

from __future__ import annotations

DEFAULT_K = 5
DEFAULT_WINDOW = 4


def _kgram_hashes(tokens: list[str], k: int) -> list[int]:
    if len(tokens) < k:
        return [hash(tuple(tokens))] if tokens else []
    return [hash(tuple(tokens[i : i + k])) for i in range(len(tokens) - k + 1)]


def winnow(hashes: list[int], window: int) -> set[int]:
    """Select window-minimum fingerprints from a hash sequence."""
    if not hashes:
        return set()
    if len(hashes) <= window:
        return {min(hashes)}
    selected: set[int] = set()
    previous_index = -1
    for start in range(len(hashes) - window + 1):
        window_slice = hashes[start : start + window]
        minimum = min(window_slice)
        # Rightmost minimal hash in the window (the robust-winnowing rule).
        index = start + max(
            i for i, value in enumerate(window_slice) if value == minimum
        )
        if index != previous_index:
            selected.add(minimum)
            previous_index = index
    return selected


def winnow_fingerprints(
    tokens: list[str], k: int = DEFAULT_K, window: int = DEFAULT_WINDOW
) -> set[int]:
    """Fingerprint a normalized token stream."""
    return winnow(_kgram_hashes(tokens, k), window)


def fingerprint_similarity(
    tokens_a: list[str],
    tokens_b: list[str],
    k: int = DEFAULT_K,
    window: int = DEFAULT_WINDOW,
) -> float:
    """Jaccard similarity of winnowing fingerprints (0..1)."""
    prints_a = winnow_fingerprints(tokens_a, k, window)
    prints_b = winnow_fingerprints(tokens_b, k, window)
    if not prints_a and not prints_b:
        return 1.0
    union = prints_a | prints_b
    if not union:
        return 0.0
    return len(prints_a & prints_b) / len(union)
