"""Token normalization for plagiarism detection.

Both Moss and JPlag are robust to renaming: identifiers, literals and
comments are collapsed into class tokens before matching.  We reuse the
mini-C lexer so the token classes exactly match the language.
"""

from __future__ import annotations

from repro.lang.lexer import TokenKind, tokenize

# All identifiers collapse to ID, all numeric literals to LIT, strings to
# STR; keywords/operators keep their identity (that is the structure the
# matchers compare).
_CLASS = {
    TokenKind.IDENT: "ID",
    TokenKind.INT_LIT: "LIT",
    TokenKind.FLOAT_LIT: "LIT",
    TokenKind.CHAR_LIT: "LIT",
    TokenKind.STRING_LIT: "STR",
}


def normalize_tokens(source: str) -> list[str]:
    """Lex *source* and return its normalized token-class stream."""
    normalized: list[str] = []
    for token in tokenize(source):
        if token.kind is TokenKind.EOF:
            break
        normalized.append(_CLASS.get(token.kind, token.kind.value))
    return normalized
