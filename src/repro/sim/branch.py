"""Branch predictors.

The paper evaluates branch behaviour with PTLSim's hybrid predictor — a
bimodal component plus a history-based component with a meta chooser.  We
implement exactly that trio and drive it from the recorded branch-outcome
stream (``uid`` plays the role of the branch PC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import ExpHistogram


class BimodalPredictor:
    """Per-PC 2-bit saturating counters."""

    def __init__(self, entries: int = 4096):
        self.mask = entries - 1
        self.table = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        return self.table[pc & self.mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = pc & self.mask
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1


class GsharePredictor:
    """Global-history predictor: PC xor history indexes 2-bit counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        self.mask = entries - 1
        self.table = [2] * entries
        self.history = 0
        self.history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1
        self.history = ((self.history << 1) | taken) & self.history_mask


class HybridPredictor:
    """Bimodal + gshare with a per-PC meta chooser (PTLSim-style)."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GsharePredictor(entries, history_bits)
        self.meta = [2] * entries  # >=2 prefers gshare
        self.mask = entries - 1
        #: Distribution of correct-prediction run lengths (branches
        #: between consecutive mispredicts).  The scalar accuracy hides
        #: burstiness — evenly-spaced mispredicts and clustered ones
        #: pipeline-flush very differently; fidelity scoring compares
        #: these run-length histograms between clone and original.
        self.run_hist = ExpHistogram()
        self._run = 0

    def predict(self, pc: int) -> bool:
        if self.meta[pc & self.mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_correct = self.bimodal.predict(pc) == taken
        gshare_correct = self.gshare.predict(pc) == taken
        index = pc & self.mask
        # The chooser's pick before any table updates — identical to
        # what predict(pc) returned for this branch.
        overall_correct = (gshare_correct if self.meta[index] >= 2
                           else bimodal_correct)
        if overall_correct:
            self._run += 1
        else:
            self.run_hist.add(self._run)
            self._run = 0
        if gshare_correct != bimodal_correct:
            counter = self.meta[index]
            if gshare_correct:
                if counter < 3:
                    self.meta[index] = counter + 1
            elif counter > 0:
                self.meta[index] = counter - 1
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    def finalize_runs(self) -> None:
        """Flush the trailing correct-prediction run into the histogram."""
        if self._run:
            self.run_hist.add(self._run)
            self._run = 0


@dataclass
class PredictorResult:
    """Outcome of replaying a branch stream through a predictor."""

    branches: int
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.branches if self.branches else 1.0

    @property
    def misses(self) -> int:
        return self.branches - self.correct


def simulate_predictor(branch_log, predictor=None) -> PredictorResult:
    """Replay a ``(uid << 1) | taken`` log; returns accuracy stats."""
    if predictor is None:
        predictor = HybridPredictor()
    correct = 0
    total = 0
    predict = predictor.predict
    update = predictor.update
    for packed in branch_log:
        pc = packed >> 1
        taken = bool(packed & 1)
        if predict(pc) == taken:
            correct += 1
        update(pc, taken)
        total += 1
    return PredictorResult(branches=total, correct=correct)
