"""Out-of-order timing model (the paper's "detailed cycle-accurate
simulation using PTLSim", §V-C).

A scoreboard model with the first-order mechanisms that drive CPI on a
superscalar core:

* dispatch width W (default 2, as in the paper's Fig. 10 setup);
* a finite reorder buffer: dispatch stalls when the ROB is full, the
  oldest instruction retires at its completion time;
* true register dependencies (per-register ready times);
* functional-unit ports: one load/store port, one FP unit (divides and
  transcendentals are unpipelined), one integer mul/div unit — the
  structural hazards that make float-heavy code (fft) the CPI outlier in
  the paper's Fig. 10;
* per-class execution latencies; loads get theirs from a two-level data
  cache; independent misses overlap naturally (MLP);
* a hybrid branch predictor; a mispredict stalls dispatch until the
  branch resolves plus a pipeline-refill penalty.

The model replays an :class:`repro.sim.trace.ExecutionTrace` on the
shared replay core (:class:`repro.sim.timing_common.TimingModel`), so
one functional run can be timed under many configurations — and one
decode (:class:`~repro.sim.timing_common.DecodedBinary`) serves them
all.  ``TimingConfig``/``TimingResult`` live in
:mod:`repro.sim.timing_common` and are re-exported here for
compatibility.
"""

from __future__ import annotations

from collections import deque

from repro.sim.timing_common import (  # noqa: F401 - re-exported API
    DEFAULT_LATENCIES,
    DecodedBinary,
    TimingConfig,
    TimingModel,
    TimingResult,
    decode_binary,
)
from repro.sim.trace import ExecutionTrace


class OutOfOrderModel(TimingModel):
    """Scoreboard out-of-order pipeline."""

    kernel_kind = "ooo"

    def replay(self, trace: ExecutionTrace,
               decoded: DecodedBinary) -> TimingResult:
        config = self.config
        l1, l2, predictor = self._session()
        latencies = config.latencies
        width = config.width
        rob_size = config.rob_size
        l1_hit_cycles = config.l1_hit_cycles
        l2_hit_cycles = config.l2_hit_cycles
        memory_cycles = config.memory_cycles
        penalty = config.mispredict_penalty

        ready: dict[int, int] = {}
        rob: deque[int] = deque()
        cycle = 0
        slots = 0
        max_completion = 0
        branch_hits = 0
        branch_misses = 0
        instructions = 0
        # Functional-unit ports: next cycle each becomes free.
        mem_port_free = 0
        fp_port_free = 0
        muldiv_port_free = 0
        # Store-to-load forwarding: word address -> data-ready cycle.
        store_ready: dict[int, int] = {}

        mem_addrs = trace.mem_addrs
        mem_idx = 0
        branch_log = trace.branch_log
        branch_idx = 0

        for gbid in trace.block_seq:
            for op in decoded[gbid]:
                instructions += 1
                klass = op.klass
                # Dispatch: width per cycle, ROB back-pressure.
                if slots >= width:
                    cycle += 1
                    slots = 0
                if len(rob) >= rob_size:
                    oldest = rob.popleft()
                    if oldest > cycle:
                        cycle = oldest
                        slots = 0
                slots += 1
                # Operand readiness.
                issue = cycle
                for src in op.srcs:
                    when = ready.get(src, 0)
                    if when > issue:
                        issue = when
                # Structural hazards (ports), then execution latency.
                if op.is_mem:
                    if mem_port_free > issue:
                        issue = mem_port_free
                    mem_port_free = issue + 1
                    addr = mem_addrs[mem_idx]
                    mem_idx += 1
                    if l1.access(addr):
                        mem_latency = l1_hit_cycles
                    elif l2 is not None and l2.access(addr):
                        mem_latency = l2_hit_cycles
                    else:
                        mem_latency = memory_cycles
                    l1.record_latency(mem_latency)
                    if op.is_store:
                        latency = 1  # write buffer hides store latency
                        store_ready[addr] = issue + 1
                    else:
                        # Loads wait for the youngest older store to the
                        # same word (store-to-load forwarding).
                        forwarded = store_ready.get(addr)
                        if forwarded is not None and forwarded > issue:
                            issue = forwarded
                        if klass == "load":
                            latency = mem_latency
                        else:
                            # Fused CISC ALU op with memory operand.
                            latency = mem_latency + latencies.get(klass, 1)
                else:
                    latency = latencies.get(klass, 1)
                    if klass in ("falu", "fmul", "fdiv", "fmath"):
                        if fp_port_free > issue:
                            issue = fp_port_free
                        # Divides/transcendentals are unpipelined.
                        occupancy = latency if klass in ("fdiv", "fmath") else 1
                        fp_port_free = issue + occupancy
                    elif klass in ("imul", "idiv"):
                        if muldiv_port_free > issue:
                            issue = muldiv_port_free
                        occupancy = latency if klass == "idiv" else 1
                        muldiv_port_free = issue + occupancy
                completion = issue + latency
                if completion > max_completion:
                    max_completion = completion
                rob.append(completion)
                if op.dst >= 0:
                    ready[op.dst] = completion
                if op.is_cond_branch:
                    packed = branch_log[branch_idx]
                    branch_idx += 1
                    pc = packed >> 1
                    taken = bool(packed & 1)
                    if predictor.predict(pc) == taken:
                        branch_hits += 1
                    else:
                        branch_misses += 1
                        cycle = completion + penalty
                        slots = 0
                    predictor.update(pc, taken)
                elif op.is_call_or_ret:
                    # Frames switch: clear the scoreboard (approximation;
                    # argument values' readiness is carried by `completion`).
                    ready.clear()
        total_cycles = max(cycle, max_completion)
        return self._result(total_cycles, instructions, l1,
                            branch_hits, branch_misses, predictor)
