"""Shared machinery for the trace-driven timing models.

This module is the **replay core** every cycle model builds on:

* :class:`TimingConfig` / :class:`TimingResult` — the microarchitecture
  parameter block and the replay outcome (moved here so the in-order and
  out-of-order models, :mod:`repro.sim.machines`, and the engine's
  replay stage all share one definition);
* :func:`decode_binary` — precomputes, for every static instruction,
  the register keys it reads/writes, its latency class and its memory
  behaviour, packaged as a :class:`DecodedBinary` so the cycle models
  touch only small tuples in their hot loops.  Decodes are cached in a
  module-level weak map keyed by the binary object, so replaying one
  binary on N machine configurations decodes once, not N times — for
  direct :meth:`Machine.simulate` calls just as much as for
  engine-routed replay tasks;
* :class:`TimingModel` — the shared session scaffolding (cache
  hierarchy, branch predictor, result assembly).  Subclasses implement
  only the hot ``replay(trace, decoded)`` loop.

Register keys: integer registers are their index; float registers are
``1000 + index`` (the two files never collide).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from repro.isa.machine import Binary, MOp
from repro.sim.branch import HybridPredictor
from repro.sim.cache import Cache, CacheConfig

# Latency classes (cycles) for a contemporary out-of-order core; loads get
# their latency from the cache model instead.
DEFAULT_LATENCIES = {
    "ialu": 1,
    "imul": 3,
    "idiv": 20,
    "falu": 3,
    "fmul": 5,
    "fdiv": 20,
    "fmath": 25,
    "store": 1,
    "branch": 1,
    "jump": 1,
    "call": 2,
    "ret": 2,
    "print": 10,
    "other": 1,
    "load": 0,  # resolved by the cache model
}


@dataclass
class TimingConfig:
    """Microarchitecture parameters for the cycle models."""

    width: int = 2
    rob_size: int = 64
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(8 * 1024, 32, 4))
    l2: CacheConfig | None = field(default_factory=lambda: CacheConfig(1024 * 1024, 32, 8))
    l1_hit_cycles: int = 3
    l2_hit_cycles: int = 14
    memory_cycles: int = 120
    mispredict_penalty: int = 12
    predictor_entries: int = 4096
    latencies: dict = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    #: Replay kernel: "python", "numpy" or "auto"; ``None`` defers to
    #: the ``REPRO_SIM_KERNEL`` environment variable (default "auto").
    #: Not a microarchitecture axis — kernels are byte-identical, so
    #: content addressing (``MachineSpec.fingerprint``) ignores it.
    kernel: str | None = None


@dataclass
class TimingResult:
    """Cycle count plus the side statistics the figures report.

    ``mem_lat_hist`` / ``branch_run_hist`` carry exp-histogram
    snapshots (:meth:`repro.obs.metrics.ExpHistogram.snapshot_data`) of
    per-access memory latencies and correct-prediction run lengths —
    the distributions fidelity scoring compares between clone and
    original beyond scalar CPI/miss rates.  ``None`` on results from
    models that don't record them.
    """

    cycles: int
    instructions: int
    l1_hits: int
    l1_misses: int
    branch_hits: int
    branch_misses: int
    mem_lat_hist: dict | None = None
    branch_run_hist: dict | None = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 1.0

    @property
    def branch_accuracy(self) -> float:
        total = self.branch_hits + self.branch_misses
        return self.branch_hits / total if total else 1.0


_FLOAT_A_OPS = {
    "fst", "fmov", "fneg", "ftoi", "sqrt", "sin", "cos", "log", "exp",
    "fabs", "floor",
}
_FLOAT_BINOPS_PREFIX = "f"


@dataclass(frozen=True)
class DecodedOp:
    """Timing-relevant view of one static instruction."""

    srcs: tuple[int, ...]
    dst: int  # register key, or -1
    klass: str
    is_mem: bool
    is_store: bool
    is_cond_branch: bool
    is_call_or_ret: bool
    uid: int


def _float_key(reg: int) -> int:
    return 1000 + reg


def _addr_src_keys(ins: MOp) -> list[int]:
    keys: list[int] = []
    if ins.addr is None:
        return keys
    mode, base, idx, _off = ins.addr
    if mode == 2:  # REG base
        keys.append(base)
    if idx is not None:
        keys.append(idx)
    return keys


def decode_instruction(ins: MOp) -> DecodedOp:
    """Extract dependency and latency info from one instruction."""
    op = ins.op
    klass = ins.klass
    srcs: list[int] = _addr_src_keys(ins)
    dst = -1
    float_op = op.startswith(_FLOAT_BINOPS_PREFIX) or op in (
        "sqrt", "sin", "cos", "log", "exp", "lif",
    )
    if op in ("ld",):
        dst = ins.dst
    elif op == "fld":
        dst = _float_key(ins.dst)
    elif op in ("st",):
        if ins.a is not None:
            srcs.append(ins.a)
    elif op == "fst":
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
    elif op in ("li", "lea"):
        dst = ins.dst
    elif op == "lif":
        dst = _float_key(ins.dst)
    elif op in ("itof", "utof"):
        if ins.a is not None:
            srcs.append(ins.a)
        dst = _float_key(ins.dst)
    elif op == "ftoi":
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
        dst = ins.dst
    elif op in _FLOAT_A_OPS or (float_op and klass in ("falu", "fmul", "fdiv", "fmath")):
        # Float ALU: a and b are float regs; dst float unless comparison.
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
        if ins.b_reg is not None:
            srcs.append(_float_key(ins.b_reg))
        if ins.dst is not None:
            dst = ins.dst if "cmp" in op else _float_key(ins.dst)
    elif op == "farg":
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
    elif op == "print":
        pass  # arguments are staged by the preceding arg/farg ops
    elif op == "ret":
        if ins.a is not None:
            srcs.append(ins.a)
        if ins.b_reg is not None:
            srcs.append(_float_key(ins.b_reg))
    elif op == "call":
        dst = -1  # return-value latency handled by the callee's ret
    else:
        # Integer ALU / branches / moves / arg.
        if ins.a is not None:
            srcs.append(ins.a)
        if ins.b_reg is not None:
            srcs.append(ins.b_reg)
        if ins.dst is not None and op not in ("bt", "bf", "jmp"):
            dst = ins.dst
    return DecodedOp(
        srcs=tuple(srcs),
        dst=dst,
        klass=klass,
        is_mem=ins.is_memory,
        is_store=ins.is_store,
        is_cond_branch=op in ("bt", "bf"),
        is_call_or_ret=op in ("call", "ret"),
        uid=ins.uid,
    )


@dataclass(frozen=True)
class DecodedBinary:
    """Per-gbid decoded instructions — the reusable replay-input artifact.

    Indexing by global block id returns that block's decoded ops, so the
    cycle models' hot loops are unchanged from the raw-list days.
    """

    blocks: tuple[tuple[DecodedOp, ...], ...]

    def __getitem__(self, gbid: int) -> tuple[DecodedOp, ...]:
        return self.blocks[gbid]

    def __len__(self) -> int:
        return len(self.blocks)


# Binary objects are unhashable (mutable dataclass), so the weak cache
# keys on id() and guards against id reuse by checking the weakref still
# points at the same object; the finalizer drops dead entries.
_DECODE_CACHE: dict[int, tuple[weakref.ref, DecodedBinary]] = {}


def decode_binary(binary: Binary) -> DecodedBinary:
    """Decode *binary* once per live object (module-level weak cache).

    Every caller — direct ``Machine.simulate``, the engine's replay
    stage, N machine-points sweeping one trace — shares the same decode,
    and nothing is pinned: entries die with their binary.
    """
    key = id(binary)
    entry = _DECODE_CACHE.get(key)
    if entry is not None and entry[0]() is binary:
        return entry[1]
    decoded = DecodedBinary(tuple(
        tuple(decode_instruction(ins) for ins in
              binary.functions[func_idx].blocks[blk_idx].instrs)
        for func_idx, blk_idx in binary.block_map
    ))
    try:
        ref = weakref.ref(binary,
                          lambda _r, _k=key: _DECODE_CACHE.pop(_k, None))
    except TypeError:  # pragma: no cover - Binary is always weakref-able
        return decoded
    _DECODE_CACHE[key] = (ref, decoded)
    return decoded


def decode_cache_size() -> int:
    """Number of live entries in the decode cache (observability/tests)."""
    return len(_DECODE_CACHE)


class TimingModel:
    """Shared replay core for the trace-driven cycle models.

    Owns everything the models have in common — configuration, the
    cache hierarchy and branch predictor session state, decode lookup,
    and result assembly.  Subclasses implement :meth:`replay`, the hot
    per-instruction loop, against an explicit :class:`DecodedBinary`
    (so callers holding a cached decode skip even the cache probe).
    """

    #: Set by subclasses the batched kernels understand ("inorder" /
    #: "ooo"); models that leave it unset always replay in python.
    kernel_kind: str | None = None

    def __init__(self, config: TimingConfig | None = None):
        self.config = config or TimingConfig()

    def simulate(self, trace) -> TimingResult:
        decoded = decode_binary(trace.binary)
        from repro.sim import kernels  # deferred: kernels imports this module

        if kernels.select_kernel(self, trace) == "numpy":
            return kernels.replay_trace(self, trace, decoded)
        return self.replay(trace, decoded)

    def replay(self, trace, decoded: DecodedBinary) -> TimingResult:
        raise NotImplementedError

    # -- shared session state ----------------------------------------------

    def _session(self) -> tuple[Cache, Cache | None, HybridPredictor]:
        """Fresh (l1, l2, predictor) for one replay."""
        config = self.config
        l1 = Cache(config.l1)
        l2 = Cache(config.l2) if config.l2 is not None else None
        predictor = HybridPredictor(config.predictor_entries)
        return l1, l2, predictor

    @staticmethod
    def _result(cycles: int, instructions: int, l1: Cache,
                branch_hits: int, branch_misses: int,
                predictor: HybridPredictor | None = None) -> TimingResult:
        mem_hist = (l1.latency_hist.snapshot_data()
                    if l1.latency_hist.count else None)
        branch_hist = None
        if predictor is not None:
            predictor.finalize_runs()
            if predictor.run_hist.count:
                branch_hist = predictor.run_hist.snapshot_data()
        return TimingResult(
            cycles=cycles,
            instructions=instructions,
            l1_hits=l1.hits,
            l1_misses=l1.misses,
            branch_hits=branch_hits,
            branch_misses=branch_misses,
            mem_lat_hist=mem_hist,
            branch_run_hist=branch_hist,
        )
