"""Shared machinery for the trace-driven timing models.

``decode_binary`` precomputes, for every static instruction, the register
keys it reads/writes, its latency class and its memory behaviour, so the
cycle models touch only small tuples in their hot loops.

Register keys: integer registers are their index; float registers are
``1000 + index`` (the two files never collide).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.machine import Binary, MOp

# Latency classes (cycles) for a contemporary out-of-order core; loads get
# their latency from the cache model instead.
DEFAULT_LATENCIES = {
    "ialu": 1,
    "imul": 3,
    "idiv": 20,
    "falu": 3,
    "fmul": 5,
    "fdiv": 20,
    "fmath": 25,
    "store": 1,
    "branch": 1,
    "jump": 1,
    "call": 2,
    "ret": 2,
    "print": 10,
    "other": 1,
    "load": 0,  # resolved by the cache model
}

_FLOAT_A_OPS = {
    "fst", "fmov", "fneg", "ftoi", "sqrt", "sin", "cos", "log", "exp",
    "fabs", "floor",
}
_FLOAT_BINOPS_PREFIX = "f"


@dataclass(frozen=True)
class DecodedOp:
    """Timing-relevant view of one static instruction."""

    srcs: tuple[int, ...]
    dst: int  # register key, or -1
    klass: str
    is_mem: bool
    is_store: bool
    is_cond_branch: bool
    is_call_or_ret: bool
    uid: int


def _float_key(reg: int) -> int:
    return 1000 + reg


def _addr_src_keys(ins: MOp) -> list[int]:
    keys: list[int] = []
    if ins.addr is None:
        return keys
    mode, base, idx, _off = ins.addr
    if mode == 2:  # REG base
        keys.append(base)
    if idx is not None:
        keys.append(idx)
    return keys


def decode_instruction(ins: MOp) -> DecodedOp:
    """Extract dependency and latency info from one instruction."""
    op = ins.op
    klass = ins.klass
    srcs: list[int] = _addr_src_keys(ins)
    dst = -1
    float_op = op.startswith(_FLOAT_BINOPS_PREFIX) or op in (
        "sqrt", "sin", "cos", "log", "exp", "lif",
    )
    if op in ("ld",):
        dst = ins.dst
    elif op == "fld":
        dst = _float_key(ins.dst)
    elif op in ("st",):
        if ins.a is not None:
            srcs.append(ins.a)
    elif op == "fst":
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
    elif op in ("li", "lea"):
        dst = ins.dst
    elif op == "lif":
        dst = _float_key(ins.dst)
    elif op in ("itof", "utof"):
        if ins.a is not None:
            srcs.append(ins.a)
        dst = _float_key(ins.dst)
    elif op == "ftoi":
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
        dst = ins.dst
    elif op in _FLOAT_A_OPS or (float_op and klass in ("falu", "fmul", "fdiv", "fmath")):
        # Float ALU: a and b are float regs; dst float unless comparison.
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
        if ins.b_reg is not None:
            srcs.append(_float_key(ins.b_reg))
        if ins.dst is not None:
            dst = ins.dst if "cmp" in op else _float_key(ins.dst)
    elif op == "farg":
        if ins.a is not None:
            srcs.append(_float_key(ins.a))
    elif op == "print":
        pass  # arguments are staged by the preceding arg/farg ops
    elif op == "ret":
        if ins.a is not None:
            srcs.append(ins.a)
        if ins.b_reg is not None:
            srcs.append(_float_key(ins.b_reg))
    elif op == "call":
        dst = -1  # return-value latency handled by the callee's ret
    else:
        # Integer ALU / branches / moves / arg.
        if ins.a is not None:
            srcs.append(ins.a)
        if ins.b_reg is not None:
            srcs.append(ins.b_reg)
        if ins.dst is not None and op not in ("bt", "bf", "jmp"):
            dst = ins.dst
    return DecodedOp(
        srcs=tuple(srcs),
        dst=dst,
        klass=klass,
        is_mem=ins.is_memory,
        is_store=ins.is_store,
        is_cond_branch=op in ("bt", "bf"),
        is_call_or_ret=op in ("call", "ret"),
        uid=ins.uid,
    )


def decode_binary(binary: Binary) -> list[list[DecodedOp]]:
    """Per-gbid list of decoded instructions (cached on the binary)."""
    cached = getattr(binary, "_decoded_blocks", None)
    if cached is not None:
        return cached
    decoded: list[list[DecodedOp]] = []
    for func_idx, blk_idx in binary.block_map:
        block = binary.functions[func_idx].blocks[blk_idx]
        decoded.append([decode_instruction(ins) for ins in block.instrs])
    binary._decoded_blocks = decoded
    return decoded
