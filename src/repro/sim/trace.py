"""Execution traces and trace-level analyses.

An :class:`ExecutionTrace` is the single artifact a functional run
produces; instruction mixes, block/edge counts, branch outcome streams and
memory address streams are all derived from it offline — the same
"profile once, analyze many times" structure the paper gets from Pin.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.isa.machine import Binary, KLASS_NAMES

_KLASS_INDEX = {name: i for i, name in enumerate(KLASS_NAMES)}

# Paper-style 4-way mix (Fig. 6): loads / stores / branches / others.
MIX_CATEGORIES = ("loads", "stores", "branches", "others")


@dataclass
class InstructionMix:
    """Dynamic instruction counts by class."""

    by_klass: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.by_klass.values())

    def fraction(self, klass: str) -> float:
        total = self.total
        return self.by_klass.get(klass, 0) / total if total else 0.0

    def paper_mix(self) -> dict[str, float]:
        """Fractions in the paper's four categories (Fig. 6).

        Conditional branches and unconditional jumps both count as
        "branches"; calls/returns and everything else fall under
        "others".
        """
        total = self.total
        if not total:
            return {name: 0.0 for name in MIX_CATEGORIES}
        loads = self.by_klass.get("load", 0)
        stores = self.by_klass.get("store", 0)
        branches = self.by_klass.get("branch", 0) + self.by_klass.get("jump", 0)
        others = total - loads - stores - branches
        return {
            "loads": loads / total,
            "stores": stores / total,
            "branches": branches / total,
            "others": others / total,
        }


def _block_klass_matrix(binary: Binary) -> np.ndarray:
    """(num_blocks x num_klasses) static instruction counts, cached."""
    cached = getattr(binary, "_klass_matrix", None)
    if cached is not None:
        return cached
    matrix = np.zeros((len(binary.block_map), len(KLASS_NAMES)), dtype=np.int64)
    for gbid, (func_idx, blk_idx) in enumerate(binary.block_map):
        block = binary.functions[func_idx].blocks[blk_idx]
        for ins in block.instrs:
            matrix[gbid, _KLASS_INDEX[ins.klass]] += 1
    binary._klass_matrix = matrix
    return matrix


@dataclass
class ExecutionTrace:
    """Record of one functional simulation."""

    binary: Binary
    block_seq: list[int]
    mem_addrs: list[int]  # byte addresses, program order
    branch_log: list[int]  # (uid << 1) | taken
    output: str
    exit_value: int | float
    instructions: int

    @classmethod
    def from_buffers(
        cls,
        binary: Binary,
        block_seq: list[int],
        mem_addrs: list[int],
        branch_log: list[int],
        output_parts: list[str],
        exit_value: int | float,
        instructions: int,
    ) -> "ExecutionTrace":
        """Zero-copy finalize: adopt the engine's recording buffers.

        Both execution engines append into plain lists while running and
        hand them over here unchanged — no per-event conversion happens at
        trace-construction time.
        """
        return cls(
            binary=binary,
            block_seq=block_seq,
            mem_addrs=mem_addrs,
            branch_log=branch_log,
            output="".join(output_parts),
            exit_value=exit_value,
            instructions=instructions,
        )

    # -- derived views ---------------------------------------------------

    def block_counts(self) -> Counter:
        """Execution count per global block id."""
        return Counter(self.block_seq)

    def instruction_mix(self) -> InstructionMix:
        """Dynamic instruction mix, accumulated over the block sequence."""
        matrix = _block_klass_matrix(self.binary)
        if not self.block_seq:
            return InstructionMix({})
        seq = np.asarray(self.block_seq, dtype=np.int64)
        totals = matrix[seq].sum(axis=0)
        return InstructionMix(
            {name: int(totals[i]) for i, name in enumerate(KLASS_NAMES) if totals[i]}
        )

    def branch_outcomes(self) -> tuple[np.ndarray, np.ndarray]:
        """(uids, taken) arrays for every dynamic conditional branch."""
        if not self.branch_log:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        log = np.asarray(self.branch_log, dtype=np.int64)
        return log >> 1, log & 1

    def edge_counts(self) -> Counter:
        """Intra-function control-flow edge counts ``(src_gbid, dst_gbid)``.

        Replays the block sequence with a virtual call stack: call edges
        push the caller's continuation block and are not recorded;
        return edges record the caller's ``call-block -> continuation``
        edge instead, so the caller's flow graph stays connected.
        """
        binary = self.binary
        num_blocks = len(binary.block_map)
        # Per-block: 0 = normal, 1 = ends in call, 2 = ends in ret.
        kinds = [0] * num_blocks
        cont_gbid = [0] * num_blocks
        for gbid, (func_idx, blk_idx) in enumerate(binary.block_map):
            func = binary.functions[func_idx]
            block = func.blocks[blk_idx]
            if block.instrs:
                last = block.instrs[-1].op
                if last == "call":
                    kinds[gbid] = 1
                    fall = block.fall_through
                    if fall is not None:
                        cont_gbid[gbid] = func.blocks[fall].gbid
                elif last == "ret":
                    kinds[gbid] = 2
        edges: Counter = Counter()
        stack: list[tuple[int, int]] = []
        prev = -1
        for gbid in self.block_seq:
            if prev >= 0:
                kind = kinds[prev]
                if kind == 0:
                    edges[(prev, gbid)] += 1
                elif kind == 1:
                    stack.append((prev, cont_gbid[prev]))
                else:  # return
                    if stack:
                        call_block, cont = stack.pop()
                        edges[(call_block, cont)] += 1
            prev = gbid
        return edges

    def call_counts(self) -> Counter:
        """Dynamic call count per callee function index."""
        binary = self.binary
        counts: Counter = Counter()
        calls_by_block: dict[int, int] = {}
        for gbid, (func_idx, blk_idx) in enumerate(binary.block_map):
            block = binary.functions[func_idx].blocks[blk_idx]
            if block.instrs and block.instrs[-1].op == "call":
                calls_by_block[gbid] = block.instrs[-1].target
        for gbid in self.block_seq:
            target = calls_by_block.get(gbid)
            if target is not None:
                counts[target] += 1
        return counts

    def summary(self) -> dict:
        """Compact description used in reports and tests."""
        mix = self.instruction_mix()
        return {
            "instructions": self.instructions,
            "blocks": len(self.block_seq),
            "memory_accesses": len(self.mem_addrs),
            "branches": len(self.branch_log),
            "mix": mix.paper_mix(),
            "exit": self.exit_value,
        }
