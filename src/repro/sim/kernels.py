"""Batched replay kernels: the numpy-accelerated timing-replay engine.

The per-instruction loops in :mod:`repro.sim.inorder` /
:mod:`repro.sim.ooo` are the hot path every replay pays (ROADMAP:
"Compiled replay kernels").  This module replays the same traces
**byte-identically** — every :class:`~repro.sim.timing_common.TimingResult`
field, histograms included, matches the pure-python models — but one to
two orders of magnitude faster, by splitting the replay into parts that
vectorize exactly and a part that cannot:

* **Cache and branch-predictor state depend only on the recorded
  streams** (``mem_addrs`` / ``branch_log``), never on timing.  So
  per-access memory latencies and per-branch mispredict bits are
  precomputed in one pass each (:func:`_cache_sim`,
  :func:`_predictor_sim`) — with consecutive same-line accesses
  collapsed, since a repeat access to the line just touched is a
  guaranteed L1 hit that leaves the LRU state unchanged — and the
  hit/miss/accuracy scalars plus both exp-histograms are reconstructed
  from those arrays without ever running the cycle loop.

* **Only the cycle count is sequential.**  It runs on a packed-program
  interpreter (per-op ``(flags, srcs, dst, latency, occupancy)`` tuples
  with all class dispatch precomputed) that is several times faster
  than the model loops, and on top of that **skips steady-state loop
  iterations in bulk**: the profiler's loop headers anchor periodic
  regions of the block sequence (equal occurrence gaps, identical
  block/latency/outcome rows), and once the interpreter observes the
  same *relative* pipeline state at two consecutive period boundaries,
  every remaining period is provably identical up to a constant cycle
  shift — all scoreboard operations are max/plus on cycle deltas, so
  the evolution is time-translation invariant — and is applied as
  ``cycle += periods * delta`` instead of being executed.

Selection is env/config driven (``REPRO_SIM_KERNEL=python|numpy|auto``)
and hooked into :meth:`TimingModel.simulate`, so the engine's replay
stage, the explorer, the daemon and the figures all accelerate
transparently; ``python`` remains the default-correct fallback when
numpy is missing.
"""

from __future__ import annotations

import bisect
import os
import warnings
import weakref
from dataclasses import dataclass, field

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the test image ships numpy
    np = None
    HAVE_NUMPY = False

from repro.obs.metrics import bucket_index
from repro.sim.timing_common import TimingResult

#: ``auto`` switches to the numpy kernel at this many dynamic
#: instructions (override: ``REPRO_SIM_KERNEL_THRESHOLD``).  Below it
#: the python models win — array packing has a fixed cost.
AUTO_THRESHOLD = 100_000

KERNEL_CHOICES = ("python", "numpy", "auto")

# Packed-op flag bits (see _build_program).
_F_MEM = 1       # touches memory (consumes one mem_addrs slot)
_F_STORE = 2     # memory write (latency 1, hidden by the write buffer)
_F_LOADK = 4     # klass == "load" (latency = resolved cache latency)
_F_FP = 8        # klass in falu/fmul/fdiv/fmath (FP port)
_F_MD = 16       # klass in imul/idiv (mul/div port)
_F_BR = 32       # conditional branch (consumes one branch_log slot)
_F_CR = 64       # call or return (scoreboard clear)

_FP_KLASSES = ("falu", "fmul", "fdiv", "fmath")
_MD_KLASSES = ("imul", "idiv")

# Region-detection knobs: a periodic region is only worth locking onto
# when enough full periods remain after warmup to amortize the two
# boundary captures the lock needs.
_MIN_PERIODS = 4
_MIN_REGION_BLOCKS = 32

_warned_fallback = False


# ---------------------------------------------------------------------------
# Kernel selection


def _requested_kernel(config) -> str:
    choice = getattr(config, "kernel", None)
    if choice is None:
        choice = os.environ.get("REPRO_SIM_KERNEL") or "auto"
    choice = str(choice).strip().lower()
    if choice not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown replay kernel {choice!r} (expected one of {KERNEL_CHOICES})")
    return choice


def _auto_threshold() -> int:
    raw = os.environ.get("REPRO_SIM_KERNEL_THRESHOLD")
    return int(raw) if raw else AUTO_THRESHOLD


def select_kernel(model, trace) -> str:
    """Resolve which kernel will replay *trace* under *model*.

    ``python``/``numpy`` honor the explicit request (``numpy`` falls
    back, with a one-time warning, when unavailable); ``auto`` picks the
    numpy kernel for long traces when it can.  Models the batched
    interpreter doesn't know (``kernel_kind`` unset) always replay in
    python.
    """
    global _warned_fallback
    choice = _requested_kernel(model.config)
    kind = getattr(model, "kernel_kind", None)
    usable = HAVE_NUMPY and kind in ("inorder", "ooo")
    if choice == "python":
        return "python"
    if choice == "numpy":
        if usable:
            return "numpy"
        if not _warned_fallback:
            _warned_fallback = True
            reason = "numpy is not installed" if not HAVE_NUMPY else (
                f"model {type(model).__name__} has no batched kernel")
            warnings.warn(
                f"REPRO_SIM_KERNEL=numpy requested but {reason}; "
                "falling back to the python kernel",
                RuntimeWarning, stacklevel=2)
        return "python"
    # auto
    if usable and trace.instructions >= _auto_threshold():
        return "numpy"
    return "python"


# ---------------------------------------------------------------------------
# Per-binary static data + packed programs (weak caches, decode-style)


@dataclass
class _BinaryStat:
    """Static per-block facts shared by every trace of one binary."""

    nmem: "np.ndarray"      # memory ops per gbid
    nbr: "np.ndarray"       # conditional branches per gbid
    nins: "np.ndarray"      # instructions per gbid
    header_gbids: tuple     # loop-header blocks (periodic-region anchors)
    programs: dict = field(default_factory=dict)  # lat signature -> program
    memos: dict = field(default_factory=dict)     # config fp -> segment memo


_STAT_CACHE: dict[int, tuple] = {}
_PACK_CACHE: dict[int, tuple] = {}


def _weak_get(cache: dict, obj, build):
    key = id(obj)
    entry = cache.get(key)
    if entry is not None and entry[0]() is obj:
        return entry[1]
    value = build(obj)
    try:
        ref = weakref.ref(obj, lambda _r, _k=key: cache.pop(_k, None))
    except TypeError:  # pragma: no cover - all cached types are weakref-able
        return value
    cache[key] = (ref, value)
    return value


def _binary_stat(binary, decoded) -> _BinaryStat:
    def build(_binary):
        from repro.profiling.loops import loop_header_gbids

        n = len(decoded)
        nmem = np.zeros(n, dtype=np.int64)
        nbr = np.zeros(n, dtype=np.int64)
        nins = np.zeros(n, dtype=np.int64)
        for gbid in range(n):
            ops = decoded[gbid]
            nins[gbid] = len(ops)
            nmem[gbid] = sum(1 for op in ops if op.is_mem)
            nbr[gbid] = sum(1 for op in ops if op.is_cond_branch)
        return _BinaryStat(nmem=nmem, nbr=nbr, nins=nins,
                           header_gbids=tuple(loop_header_gbids(_binary)))

    return _weak_get(_STAT_CACHE, binary, build)


def _build_program(decoded, latencies) -> list:
    """Packed per-op tuples with every class dispatch precomputed.

    Each op becomes ``(flags, srcs, dst, latency, occupancy)``; the
    interpreters then run on flag tests and integer arithmetic alone.
    """
    program = []
    for block in decoded.blocks:
        ops = []
        for op in block:
            klass = op.klass
            flags = 0
            lat = latencies.get(klass, 1)
            occ = 1
            if op.is_mem:
                flags |= _F_MEM
                if op.is_store:
                    flags |= _F_STORE
                elif klass == "load":
                    flags |= _F_LOADK
            if klass in _FP_KLASSES:
                flags |= _F_FP
                occ = lat if klass in ("fdiv", "fmath") else 1
            elif klass in _MD_KLASSES:
                flags |= _F_MD
                occ = lat if klass == "idiv" else 1
            if op.is_cond_branch:
                flags |= _F_BR
            elif op.is_call_or_ret:
                flags |= _F_CR
            ops.append((flags, op.srcs, op.dst, lat, occ))
        program.append(tuple(ops))
    return program


def _program_for(binary, decoded, latencies) -> list:
    stat = _binary_stat(binary, decoded)
    sig = tuple(sorted(latencies.items()))
    program = stat.programs.get(sig)
    if program is None:
        program = _build_program(decoded, latencies)
        stat.programs[sig] = program
    return program


# ---------------------------------------------------------------------------
# Per-trace packed arrays + periodic-region candidates


@dataclass
class _TracePack:
    """Numpy views of one trace plus its periodic-region candidates."""

    bs: "np.ndarray"            # block sequence, int64
    bs_list: list               # same, as a python list (interpreter-fast)
    mem: "np.ndarray"           # byte addresses, int64
    br: "np.ndarray"            # packed (uid << 1) | taken, int64
    mem_prefix: "np.ndarray"    # mem ops before block position i (len+1)
    br_prefix: "np.ndarray"     # branches before block position i (len+1)
    ins_prefix: "np.ndarray"    # instructions before block position i (len+1)
    regions: list               # (start, period, periods) block-row verified
    anchors: "np.ndarray | None"  # segment-memo cut positions
    instructions: int


def _find_regions(bs, header_gbids) -> list:
    """Loop-header-anchored periodic regions of the block sequence.

    A region is a maximal run of equal gaps between occurrences of one
    loop header whose per-period block rows are identical; overlapping
    candidates (nested loops) keep the largest span.
    """
    candidates = []
    n = bs.size
    for header in header_gbids:
        positions = np.flatnonzero(bs == header)
        if positions.size <= _MIN_PERIODS:
            continue
        gaps = np.diff(positions)
        change = np.flatnonzero(gaps[1:] != gaps[:-1]) + 1
        run_starts = np.concatenate(([0], change))
        run_ends = np.concatenate((change, [gaps.size]))
        period_arr = gaps[run_starts]
        periods_arr = run_ends - run_starts
        keep = ((periods_arr >= _MIN_PERIODS) & (period_arr > 0)
                & (periods_arr * period_arr >= _MIN_REGION_BLOCKS))
        for lo, period, periods in zip(run_starts[keep].tolist(),
                                       period_arr[keep].tolist(),
                                       periods_arr[keep].tolist()):
            start = int(positions[lo])
            if start + periods * period > n:  # pragma: no cover - by construction
                continue
            rows = bs[start:start + periods * period].reshape(periods, period)
            same = (rows[1:] == rows[:-1]).all(axis=1)
            bad = np.flatnonzero(~same)
            skip = int(bad[-1]) + 1 if bad.size else 0
            periods -= skip
            start += skip * period
            if periods < _MIN_PERIODS or periods * period < _MIN_REGION_BLOCKS:
                continue
            candidates.append((start, period, periods))
    candidates.sort(key=lambda r: -(r[1] * r[2]))
    chosen: list = []
    starts: list = []  # accepted intervals, kept sorted by start
    ends: list = []
    for region in candidates:
        start, period, periods = region
        end = start + period * periods
        i = bisect.bisect_right(starts, start)
        if i and ends[i - 1] > start:
            continue
        if i < len(starts) and starts[i] < end:
            continue
        starts.insert(i, start)
        ends.insert(i, end)
        chosen.append(region)
    chosen.sort()
    return chosen


# Segment-memo knobs: a segment shorter than _SEG_MIN_BLOCKS is
# overhead-dominated, one longer than _SEG_MAX_BLOCKS is unlikely to
# repeat exactly (and would make the memo keys huge); both fall back to
# plain interpretation.
_SEG_MIN_BLOCKS = 4
_SEG_MAX_BLOCKS = 4096
_SEG_TARGET_BLOCKS = 96
_SEG_FILL_BLOCKS = 256
_SEG_FILL_STEP = 64
_SEG_MEMO_CAP = 32768

#: Diagnostic hook: set to a dict (e.g. ``kernels.SEG_DEBUG = {}``) to
#: count segment-memo lookups — keys ``"hit"`` / ``"miss"`` accumulate
#: across replays until reset.  Used by the equivalence tests to assert
#: the memo actually engages; leave ``None`` in production (the check
#: is one ``is not None`` per segment).
SEG_DEBUG: dict | None = None


def _pick_anchor(bs, header_gbids):
    """Occurrence positions of the header that best segments the trace.

    Splitting at every occurrence of one loop header turns the trace
    into outer-iteration-sized slices — the unit that actually repeats
    when inner trip counts vary (so no fixed period exists).  The
    header whose mean gap is closest to ``_SEG_TARGET_BLOCKS`` wins;
    headers so frequent that segments would be overhead-dominated are
    skipped.
    """
    n = bs.size
    best = None
    for header in header_gbids:
        count = int((bs == header).sum())
        if not count:
            continue
        mean = n / count
        if mean < 2 * _SEG_MIN_BLOCKS:
            continue
        score = abs(mean - _SEG_TARGET_BLOCKS)
        if best is None or score < best[0]:
            best = (score, header)
    if best is None:
        return None
    return np.flatnonzero(bs == best[1])


def _segment_cuts(bs, header_gbids):
    """All memo-segment cut positions for one trace.

    The best single anchor gives outer-iteration-aligned cuts, but its
    occurrences can cluster in one phase of the program (a setup loop,
    say) and leave the hot phase as a single giant segment.  Stretches
    that run more than ``_SEG_FILL_BLOCKS`` without an anchor are
    therefore filled with bucketed cuts drawn from *every* header
    occurrence — the content keys absorb whatever alignment those cuts
    land on.
    """
    anchor = _pick_anchor(bs, header_gbids)
    if not header_gbids:
        return anchor
    n = bs.size
    base = anchor if anchor is not None else np.empty(0, dtype=np.int64)
    bounds = np.concatenate(([0], base, [n]))
    occurrences = None
    extra = []
    for i in range(bounds.size - 1):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        if hi - lo <= _SEG_FILL_BLOCKS:
            continue
        if occurrences is None:
            occurrences = np.flatnonzero(
                np.isin(bs, np.asarray(header_gbids, dtype=bs.dtype)))
        i0, i1 = np.searchsorted(occurrences, (lo + 1, hi))
        inside = occurrences[i0:i1]
        if inside.size == 0:
            continue
        buckets = inside // _SEG_FILL_STEP
        first = np.flatnonzero(np.diff(buckets) > 0) + 1
        extra.append(inside[np.concatenate(([0], first))])
    if not extra:
        return anchor
    return np.unique(np.concatenate([base] + extra))


def _trace_pack(trace, stat: _BinaryStat) -> _TracePack:
    def build(_trace):
        bs = np.asarray(_trace.block_seq, dtype=np.int64)
        mem = np.asarray(_trace.mem_addrs, dtype=np.int64)
        br = np.asarray(_trace.branch_log, dtype=np.int64)
        if bs.size:
            mem_counts = stat.nmem[bs]
            br_counts = stat.nbr[bs]
            ins_counts = stat.nins[bs]
        else:
            mem_counts = br_counts = ins_counts = np.zeros(0, dtype=np.int64)
        mem_prefix = np.concatenate(([0], np.cumsum(mem_counts)))
        br_prefix = np.concatenate(([0], np.cumsum(br_counts)))
        ins_prefix = np.concatenate(([0], np.cumsum(ins_counts)))
        return _TracePack(
            bs=bs, bs_list=bs.tolist(), mem=mem, br=br,
            mem_prefix=mem_prefix, br_prefix=br_prefix,
            ins_prefix=ins_prefix,
            regions=_find_regions(bs, stat.header_gbids),
            anchors=_segment_cuts(bs, stat.header_gbids) if bs.size else None,
            instructions=int(ins_prefix[-1]))

    return _weak_get(_PACK_CACHE, trace, build)


def pack_cache_size() -> int:
    """Live entries in the trace-pack cache (observability/tests)."""
    return len(_PACK_CACHE)


# ---------------------------------------------------------------------------
# Stream precomputation: cache latencies, branch outcomes, histograms


def _cache_sim(mem, config):
    """Replay the address stream through the L1/L2 geometry in one pass.

    Returns ``(codes, l1_hits, l1_misses)`` where ``codes[i]`` is 0 for
    an L1 hit, 1 for an L2 hit and 2 for a memory access — exactly the
    latency class the python models resolve per access.  Consecutive
    accesses to one L1 line are collapsed before the python LRU loop:
    the repeat is a guaranteed hit on the most-recently-used way, so
    counts, codes and LRU state are unchanged by simulating only the
    first access of each run.
    """
    n = mem.size
    codes = np.zeros(n, dtype=np.uint8)
    if n == 0:
        return codes, 0, 0
    l1 = config.l1
    shift1 = l1.line_bytes.bit_length() - 1
    lines1 = mem >> shift1
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(lines1[1:], lines1[:-1], out=keep[1:])
    kept = np.flatnonzero(keep)
    collapsed = lines1[kept]
    sets1 = collapsed % l1.num_sets
    l2 = config.l2
    if l2 is not None:
        shift2 = l2.line_bytes.bit_length() - 1
        lines2 = mem[kept] >> shift2
        sets2 = lines2 % l2.num_sets
        l2_lines = lines2.tolist()
        l2_sets = sets2.tolist()
        l2_ways = [dict() for _ in range(l2.num_sets)]
        assoc2 = l2.associativity
    m = kept.size
    out = bytearray(m)
    l1_ways: list[dict] = [dict() for _ in range(l1.num_sets)]
    assoc1 = l1.associativity
    hits = 0
    misses = 0
    l1_lines = collapsed.tolist()
    l1_sets = sets1.tolist()
    has_l2 = l2 is not None
    for i in range(m):
        line = l1_lines[i]
        ways = l1_ways[l1_sets[i]]
        if line in ways:
            del ways[line]  # refresh LRU position
            ways[line] = None
            hits += 1
        else:
            misses += 1
            if len(ways) >= assoc1:
                del ways[next(iter(ways))]
            ways[line] = None
            if has_l2:
                line2 = l2_lines[i]
                ways2 = l2_ways[l2_sets[i]]
                if line2 in ways2:
                    del ways2[line2]
                    ways2[line2] = None
                    out[i] = 1
                else:
                    if len(ways2) >= assoc2:
                        del ways2[next(iter(ways2))]
                    ways2[line2] = None
                    out[i] = 2
            else:
                out[i] = 2
    codes[kept] = np.frombuffer(bytes(out), dtype=np.uint8)
    hits += n - m  # every collapsed repeat is an L1 hit
    return codes, hits, misses


_HISTORY_MASK = 0xFFF  # HybridPredictor's 12 history bits
_HISTORY_BITS = 12
_PREDICTOR_VECTOR_MIN = 4096  # below this the python loop wins


def _predictor_sim(br, entries: int):
    """Replay the branch log through the hybrid predictor.

    Returns ``(correct, hits, misses)`` with ``correct`` a uint8 array
    of per-branch outcomes (1 = the chooser's pick was right) — the
    only predictor fact the cycle interpreters need.  Long logs go
    through the vectorized segmented-scan path, short ones through the
    reference loop; both produce byte-identical results.
    """
    if br.size >= _PREDICTOR_VECTOR_MIN and entries <= 1 << 16:
        return _predictor_sim_numpy(br, entries)
    return _predictor_sim_python(br, entries)


# Saturating 2-bit counters as 4-state automata.  A step is a monotone
# map f: {0..3} -> {0..3}, packed into one byte (2 bits per output);
# composition is then a single 256x256 table lookup, which turns the
# per-entry counter history into an associative prefix scan over bytes.
def _encode_map(outputs):
    return outputs[0] | (outputs[1] << 2) | (outputs[2] << 4) | (outputs[3] << 6)


_STEP_UP = _encode_map([1, 2, 3, 3])      # taken: min(3, s + 1)
_STEP_DOWN = _encode_map([0, 0, 1, 2])    # not taken: max(0, s - 1)
_STEP_ID = _encode_map([0, 1, 2, 3])      # chooser tie: unchanged
_RESET = _encode_map([2, 2, 2, 2])        # constant: fresh counter at 2

if HAVE_NUMPY:
    # _COMP[a, b] = encode(f_b . f_a): apply a's map, then b's.
    _DECODE = (np.arange(256)[:, None] >> (2 * np.arange(4))) & 3  # [code, s]
    _COMPOSED = _DECODE[np.arange(256)[None, :, None], _DECODE[:, None, :]]
    _COMP = np.zeros((256, 256), dtype=np.uint8)
    for _s in range(4):
        _COMP |= (_COMPOSED[:, :, _s] << (2 * _s)).astype(np.uint8)
    del _s, _COMPOSED
    _STEP_BY_DELTA = np.array([_STEP_DOWN, _STEP_ID, _STEP_UP], dtype=np.uint8)


def _comp_scan(codes):
    """Inclusive prefix scan of automaton bytes under composition.

    Work-efficient pairwise recursion: combine adjacent pairs, scan the
    half-length array, then fill the even positions — ~2n table gathers
    total instead of n log n.
    """
    n = codes.size
    if n < 2:
        return codes.copy()
    even = codes[0::2]
    odd = codes[1::2]
    pair_scan = _comp_scan(_COMP[even[: odd.size], odd])
    out = np.empty(n, dtype=np.uint8)
    out[0] = codes[0]
    out[1::2] = pair_scan
    if n > 2:
        out[2::2] = _COMP[pair_scan[: even.size - 1], even[1:]]
    return out


def _seg_counter_states(order, same, step_codes):
    """State of each table entry's counter *before* each access.

    ``order`` groups accesses per entry (stable sort of entry indices),
    ``same`` marks sorted positions sharing the previous position's
    entry.  Each sorted position takes its predecessor's step map — or
    the constant reset-to-2 map at group heads, which absorbs anything
    composed before it, so one *unsegmented* scan handles all groups.
    """
    n = order.size
    g = np.empty(n, dtype=np.uint8)
    g[0] = _RESET
    sorted_steps = step_codes[order]
    g[1:] = np.where(same, sorted_steps[:-1], _RESET)
    # Every scan prefix contains its group's reset, so the composed map
    # is constant: its value on input 0 (the low bits) is the state.
    states_sorted = _comp_scan(g) & 3
    states = np.empty(n, dtype=np.uint8)
    states[order] = states_sorted
    return states


def _group_order(keys):
    # uint16 keys take numpy's 2-pass radix path — 5x faster than the
    # int64 stable sort (the dispatcher guards entries <= 2**16).
    keys = keys.astype(np.uint16)
    order = np.argsort(keys, kind="stable")
    k = keys[order]
    return order, k[1:] == k[:-1]


def _predictor_sim_numpy(br, entries: int):
    """Vectorized hybrid-predictor replay, pinned to the reference loop.

    Global history is a 12-bit shift register of outcomes, so each
    branch's history is twelve shifted ORs of the taken stream; the
    bimodal and gshare tables see outcome-only updates and reduce to
    independent per-entry counter scans; the chooser's steps depend only
    on those two prediction streams, giving a third scan over the
    bimodal grouping.
    """
    n = br.size
    mask = entries - 1
    pcs = (br >> 1).astype(np.int64)
    taken = (br & 1).astype(np.int64)
    hist = np.zeros(n, dtype=np.int64)
    for k in range(1, _HISTORY_BITS + 1):
        hist[k:] |= taken[: n - k] << (k - 1)
    bi = pcs & mask
    gi = (pcs ^ hist) & mask
    updown = np.where(taken == 1, _STEP_UP, _STEP_DOWN).astype(np.uint8)
    b_order, b_same = _group_order(bi)
    g_order, g_same = _group_order(gi)
    b_pred = (_seg_counter_states(b_order, b_same, updown) >= 2).astype(np.int64)
    g_pred = (_seg_counter_states(g_order, g_same, updown) >= 2).astype(np.int64)
    b_right = b_pred == taken
    g_right = g_pred == taken
    meta_steps = _STEP_BY_DELTA[
        (g_right.astype(np.int64) - b_right.astype(np.int64)) + 1
    ]
    chooser = _seg_counter_states(b_order, b_same, meta_steps)
    chosen = np.where(chooser >= 2, g_pred, b_pred)
    correct = (chosen == taken).astype(np.uint8)
    hits = int(correct.sum())
    return correct, hits, n - hits


def _predictor_sim_python(br, entries: int):
    """Reference per-branch hybrid-predictor loop (pin target)."""
    n = br.size
    correct = bytearray(n)
    if n == 0:
        return np.zeros(0, dtype=np.uint8), 0, 0
    mask = entries - 1
    bimodal = [2] * entries
    gshare = [2] * entries
    meta = [2] * entries
    history = 0
    hits = 0
    pcs = (br >> 1).tolist()
    takens = (br & 1).tolist()
    for i in range(n):
        pc = pcs[i]
        taken = takens[i]
        bi = pc & mask
        gi = (pc ^ history) & mask
        b_pred = bimodal[bi] >= 2
        g_pred = gshare[gi] >= 2
        chooser = meta[bi]
        if (g_pred if chooser >= 2 else b_pred) == taken:
            correct[i] = 1
            hits += 1
        b_right = b_pred == taken
        if (g_pred == taken) != b_right:
            if b_right:
                if chooser > 0:
                    meta[bi] = chooser - 1
            elif chooser < 3:
                meta[bi] = chooser + 1
        counter = bimodal[bi]
        if taken:
            if counter < 3:
                bimodal[bi] = counter + 1
        elif counter > 0:
            bimodal[bi] = counter - 1
        counter = gshare[gi]
        if taken:
            if counter < 3:
                gshare[gi] = counter + 1
        elif counter > 0:
            gshare[gi] = counter - 1
        history = ((history << 1) | taken) & _HISTORY_MASK
    return np.frombuffer(bytes(correct), dtype=np.uint8), hits, n - hits


def _snapshot(values_and_counts) -> dict | None:
    """Exp-histogram snapshot dict, byte-identical to ExpHistogram's.

    *values_and_counts* is an iterable of ``(int value, count)`` pairs;
    the incremental float sum the python models accumulate is exact for
    integer values (every partial sum is an integer below 2**53), so
    ``sum(value * count)`` reproduces it bit-for-bit.
    """
    buckets: dict[int, int] = {}
    total = 0
    acc = 0
    low = high = None
    for value, count in values_and_counts:
        if not count:
            continue
        idx = bucket_index(value)
        buckets[idx] = buckets.get(idx, 0) + count
        total += count
        acc += value * count
        low = value if low is None else min(low, value)
        high = value if high is None else max(high, value)
    if not total:
        return None
    return {
        "count": total,
        "sum": float(acc),
        "min": low,
        "max": high,
        "buckets": {k: buckets[k] for k in sorted(buckets)},
    }


def _mem_hist(codes, config) -> dict | None:
    if codes.size == 0:
        return None
    counts = np.bincount(codes, minlength=3)
    return _snapshot([
        (config.l1_hit_cycles, int(counts[0])),
        (config.l2_hit_cycles, int(counts[1])),
        (config.memory_cycles, int(counts[2])),
    ])


def _branch_hist(correct) -> dict | None:
    """Correct-prediction run lengths, as HybridPredictor records them.

    One run value per mispredict (the correct streak before it, zeros
    included) plus the trailing streak when nonzero — matching
    ``update()`` + ``finalize_runs()`` exactly.
    """
    n = correct.size
    if n == 0:
        return None
    miss_idx = np.flatnonzero(correct == 0)
    runs = (np.diff(np.concatenate(([-1], miss_idx))) - 1).tolist()
    last = int(miss_idx[-1]) if miss_idx.size else -1
    trailing = n - 1 - last
    if trailing > 0:
        runs.append(trailing)
    values: dict[int, int] = {}
    for run in runs:
        values[run] = values.get(run, 0) + 1
    return _snapshot(sorted(values.items()))


# ---------------------------------------------------------------------------
# Cycle interpreters (the only sequential part)
#
# State tuples keep span calls cheap; the per-op loops only do flag
# tests, dict lookups and integer max/plus — every class dispatch,
# cache latency and branch outcome was precomputed above.


def _span_inorder(program, blocks, lo, hi, state, ready, mem_lat, correct,
                  width, penalty):
    (cycle, slots, max_completion, mem_idx, br_idx,
     mem_port, fp_port, md_port) = state
    ready_get = ready.get
    for pos in range(lo, hi):
        for op in program[blocks[pos]]:
            flags, srcs, dst, lat, occ = op
            if slots >= width:
                cycle += 1
                slots = 0
            issue = cycle
            for src in srcs:
                when = ready_get(src, 0)
                if when > issue:
                    issue = when
            if flags == 0:
                # Plain ALU op: no ports, no memory, no control flow.
                if issue > cycle:
                    cycle = issue
                    slots = 0
                slots += 1
                completion = cycle + lat
                if completion > max_completion:
                    max_completion = completion
                if dst >= 0:
                    ready[dst] = completion
                continue
            if flags & _F_MEM and mem_port > issue:
                issue = mem_port
            elif flags & _F_FP and fp_port > issue:
                issue = fp_port
            elif flags & _F_MD and md_port > issue:
                issue = md_port
            if issue > cycle:
                cycle = issue  # the whole pipeline waits
                slots = 0
            slots += 1
            if flags & _F_MEM:
                resolved = mem_lat[mem_idx]
                mem_idx += 1
                mem_port = cycle + 1
                if flags & _F_STORE:
                    latency = 1
                elif flags & _F_LOADK:
                    latency = resolved
                else:
                    latency = resolved + lat
            else:
                latency = lat
                if flags & _F_FP:
                    fp_port = cycle + occ
                elif flags & _F_MD:
                    md_port = cycle + occ
            completion = cycle + latency
            if completion > max_completion:
                max_completion = completion
            if dst >= 0:
                ready[dst] = completion
            if flags & _F_BR:
                if not correct[br_idx]:
                    cycle = completion + penalty
                    slots = 0
                br_idx += 1
            elif flags & _F_CR:
                ready.clear()
    return (cycle, slots, max_completion, mem_idx, br_idx,
            mem_port, fp_port, md_port)


def _span_ooo(program, blocks, lo, hi, state, ready, rob, mem_lat, correct,
              width, penalty, rob_size):
    # *rob* is a zero-prefilled ring buffer ``[completions] + [head]``:
    # retiring a prefill zero is a no-op (``0 > cycle`` never holds), so
    # the ring behaves exactly like the model's warm-up-phase deque
    # while skipping the length check and deque rotation per op.
    (cycle, slots, max_completion, mem_idx, br_idx,
     mem_port, fp_port, md_port) = state
    ready_get = ready.get
    head = rob[rob_size]
    for pos in range(lo, hi):
        for op in program[blocks[pos]]:
            flags, srcs, dst, lat, occ = op
            if slots >= width:
                cycle += 1
                slots = 0
            oldest = rob[head]
            if oldest > cycle:
                cycle = oldest
                slots = 0
            slots += 1
            issue = cycle
            for src in srcs:
                when = ready_get(src, 0)
                if when > issue:
                    issue = when
            if flags == 0:
                completion = issue + lat
                if completion > max_completion:
                    max_completion = completion
                rob[head] = completion
                head += 1
                if head == rob_size:
                    head = 0
                if dst >= 0:
                    ready[dst] = completion
                continue
            if flags & _F_MEM:
                if mem_port > issue:
                    issue = mem_port
                mem_port = issue + 1
                resolved = mem_lat[mem_idx]
                mem_idx += 1
                if flags & _F_STORE:
                    latency = 1
                elif flags & _F_LOADK:
                    latency = resolved
                else:
                    latency = resolved + lat
            else:
                latency = lat
                if flags & _F_FP:
                    if fp_port > issue:
                        issue = fp_port
                    fp_port = issue + occ
                elif flags & _F_MD:
                    if md_port > issue:
                        issue = md_port
                    md_port = issue + occ
            completion = issue + latency
            if completion > max_completion:
                max_completion = completion
            rob[head] = completion
            head += 1
            if head == rob_size:
                head = 0
            if dst >= 0:
                ready[dst] = completion
            if flags & _F_BR:
                if not correct[br_idx]:
                    cycle = completion + penalty
                    slots = 0
                br_idx += 1
            elif flags & _F_CR:
                ready.clear()
    rob[rob_size] = head
    return (cycle, slots, max_completion, mem_idx, br_idx,
            mem_port, fp_port, md_port)


def _steady_regions(pack: _TracePack, codes, correct, rob_size: int):
    """Per-replay usable regions: block rows are periodic by
    construction; latency codes and branch outcomes must be too (they
    depend on the cache/predictor config).  Regions whose expected
    skip savings cannot cover the lock's boundary-capture cost — each
    capture canonicalizes the whole ROB, and the ROB must cycle through
    ``rob_size`` completions before its relative contents can repeat —
    are dropped up front.  Returns
    ``(start, period, periods, warmup, mem_per, br_per)`` tuples.
    """
    usable = []
    mem_prefix = pack.mem_prefix
    br_prefix = pack.br_prefix
    ins_prefix = pack.ins_prefix
    capture_cost = 16 + rob_size // 3  # in interpreted-op equivalents
    for start, period, periods in pack.regions:
        if period <= _SEG_MAX_BLOCKS:
            # The segment memo covers this loop: its header occurs
            # every ``period`` blocks, so the region gets cut into
            # memoizable segments whose content repeats period to
            # period — no lock captures needed, and a carved-out
            # region would only fragment those segments.  Locking is
            # reserved for loops whose single iteration overflows a
            # memo segment.
            continue
        mem_lo = int(mem_prefix[start])
        mem_per = int(mem_prefix[start + period]) - mem_lo
        br_lo = int(br_prefix[start])
        br_per = int(br_prefix[start + period]) - br_lo
        period_ops = int(ins_prefix[start + period]) - int(ins_prefix[start])
        if not period_ops:
            continue
        steady = np.ones(periods - 1, dtype=bool)
        if mem_per:
            rows = codes[mem_lo:mem_lo + periods * mem_per]
            rows = rows.reshape(periods, mem_per)
            steady &= (rows[1:] == rows[:-1]).all(axis=1)
        if br_per:
            rows = correct[br_lo:br_lo + periods * br_per]
            rows = rows.reshape(periods, br_per)
            steady &= (rows[1:] == rows[:-1]).all(axis=1)
        bad = np.flatnonzero(~steady)
        warmup = int(bad[-1]) + 1 if bad.size else 0
        lock_lag = rob_size // period_ops + 3  # periods until a lock can land
        savings = (periods - warmup - lock_lag) * period_ops
        if savings > lock_lag * capture_cost:
            usable.append((start, period, periods, warmup, mem_per, br_per))
    return usable


def _canon_ready(ready, cycle):
    return tuple(sorted(
        (reg, when - cycle) for reg, when in ready.items() if when > cycle))


#: The pipeline's steady state may repeat only every few loop
#: iterations (e.g. a 2-wide dispatch over an odd-length body
#: alternates slot phase), so boundary states are matched against the
#: last ``_MAX_STRIDE`` boundaries, not just the previous one.
_MAX_STRIDE = 6
#: Boundary captures per region before giving up on a lock — bounds
#: the capture overhead on regions whose state never settles.
_MAX_ATTEMPTS = 24


def _gap_chunks(chunks, anchors, lo, hi):
    """Append the memo segments covering ``[lo, hi)`` to *chunks*.

    Splits the gap at every anchor occurrence inside it; with no
    anchors the gap is one segment (too-long segments are interpreted,
    not memoized, so this stays correct either way).
    """
    if hi <= lo:
        return
    if anchors is not None:
        i0, i1 = np.searchsorted(anchors, (lo + 1, hi))
        prev = lo
        for cut in anchors[i0:i1].tolist():
            chunks.append((prev, cut))
            prev = cut
        chunks.append((prev, hi))
    else:
        chunks.append((lo, hi))


def _run_cycles(kind, program, pack, mem_lat, correct, regions, config,
                codes=None, correct_arr=None, memo=None):
    """Interpret the block sequence, skipping repeated work two ways.

    **Locked periodic regions** (from :func:`_steady_regions`): once two
    period boundaries ``s`` periods apart show the same canonical
    relative state (slots, live ready deltas, port deltas, ROB deltas —
    entries at or below ``cycle`` are dead: every comparison they feed
    is ``> issue`` with ``issue >= cycle``), each further stride of
    ``s`` periods adds exactly ``delta`` cycles and consumes exactly
    ``s`` rows of each stream — all scoreboard updates are max/plus on
    cycle deltas, so the evolution is time-translation invariant — and
    every remaining stride is applied arithmetically.
    ``max_completion`` is skippable when the periodic part drives it
    (it grew over the matched stride) or when ``delta == 0``
    (completions repeat in place); otherwise the interpreter keeps
    stepping periods until one of those holds.

    **Memoized segments** (the gaps between locked regions, cut at
    anchor-header occurrences): loops whose inner trip counts vary have
    no fixed period, but their outer iterations still repeat — just not
    consecutively.  Each segment is keyed by its exact content (block
    ids, latency codes and branch outcomes as raw bytes — hashed at
    C speed) plus the same canonical entry state the lock uses, and its
    whole effect (cycle delta, out slots, live ready/port/ROB deltas,
    completion-max delta) is replayed arithmetically on a hit.  The
    same time-translation argument makes the replay exact; segments
    entered with a live ROB (any entry above ``cycle``) are interpreted
    instead, since their effect would not be translation-free.  The
    memo dict is per (binary, timing-config) and so persists across
    traces and replays.
    """
    blocks = pack.bs_list
    nblocks = len(blocks)
    width = config.width
    penalty = config.mispredict_penalty
    in_order = kind == "inorder"
    if in_order:
        rob = None
        rob_size = 0

        def span(lo, hi, state, ready):
            return _span_inorder(program, blocks, lo, hi, state, ready,
                                 mem_lat, correct, width, penalty)
    else:
        rob_size = config.rob_size
        # Ring of completions plus the head index in the last slot; a
        # prefill zero retires as a no-op, exactly like a not-yet-full
        # ROB (see _span_ooo).
        rob = [0] * (rob_size + 1)

        def span(lo, hi, state, ready):
            return _span_ooo(program, blocks, lo, hi, state, ready, rob,
                             mem_lat, correct, width, penalty, rob_size)

    use_memo = memo is not None and codes is not None
    anchors = pack.anchors if use_memo else None
    mem_prefix = pack.mem_prefix
    br_prefix = pack.br_prefix
    bs = pack.bs

    # The schedule: locked regions in trace order, the gaps between
    # them cut into candidate memo segments.  Region chunks are the
    # 6-tuples from _steady_regions, segments are (lo, hi) pairs.
    chunks: list = []
    gap_lo = 0
    for region in regions:
        _gap_chunks(chunks, anchors, gap_lo, region[0])
        chunks.append(region)
        gap_lo = region[0] + region[1] * region[2]
    _gap_chunks(chunks, anchors, gap_lo, nblocks)

    state = (0, 0, 0, 0, 0, 0, 0, 0)
    ready: dict[int, int] = {}
    for chunk in chunks:
        if len(chunk) == 2:
            lo, hi = chunk
            if (not use_memo or hi - lo < _SEG_MIN_BLOCKS
                    or hi - lo > _SEG_MAX_BLOCKS):
                state = span(lo, hi, state, ready)
                continue
            cycle, slots = state[0], state[1]
            if in_order:
                rob_key = ()
            else:
                # The live ROB suffix, oldest first: the tuple length
                # fixes how many dispatches retire dead prefill slots
                # before the first live entry can stall, interior dead
                # entries clamp to 0 (they retire as no-ops either
                # way), so this is the full ROB influence on the
                # segment.
                head = rob[rob_size]
                ring = rob[head:rob_size] + rob[:head]  # oldest first
                idx = 0
                while idx < rob_size and ring[idx] <= cycle:
                    idx += 1
                rob_key = tuple(
                    when - cycle if when > cycle else 0
                    for when in ring[idx:])
            mem_lo, br_lo = state[3], state[4]
            mem_hi = int(mem_prefix[hi])
            br_hi = int(br_prefix[hi])
            key = (bs[lo:hi].tobytes(),
                   codes[mem_lo:mem_hi].tobytes(),
                   correct_arr[br_lo:br_hi].tobytes(),
                   slots, _canon_ready(ready, cycle),
                   max(state[5] - cycle, 0),
                   max(state[6] - cycle, 0),
                   max(state[7] - cycle, 0),
                   rob_key)
            value = memo.get(key)
            if SEG_DEBUG is not None:
                which = "miss" if value is None else "hit"
                SEG_DEBUG[which] = SEG_DEBUG.get(which, 0) + 1
            if value is None:
                mc_in = state[2]
                # Run with max_completion zeroed: it is write-only in
                # the spans, and starting from 0 yields the segment's
                # own completion max — the translation-invariant part.
                st = span(lo, hi, (cycle, slots, 0, mem_lo, br_lo,
                                   state[5], state[6], state[7]), ready)
                out_cycle = st[0]
                seg_mc = st[2]
                out_items = _canon_ready(ready, out_cycle)
                ports = (max(st[5] - out_cycle, 0),
                         max(st[6] - out_cycle, 0),
                         max(st[7] - out_cycle, 0))
                if in_order:
                    live = ()
                else:
                    head = rob[rob_size]
                    ring = rob[head:rob_size] + rob[:head]  # oldest first
                    idx = 0
                    while idx < rob_size and ring[idx] <= out_cycle:
                        idx += 1
                    live = tuple(
                        when - out_cycle if when > out_cycle else 0
                        for when in ring[idx:])
                if len(memo) < _SEG_MEMO_CAP:
                    memo[key] = (out_cycle - cycle, st[1],
                                 seg_mc - cycle if seg_mc else 0,
                                 out_items, ports, live)
                state = (out_cycle, st[1],
                         seg_mc if seg_mc > mc_in else mc_in,
                         st[3], st[4], st[5], st[6], st[7])
            else:
                dcycle, slots_out, dmc, out_items, ports, live = value
                out_cycle = cycle + dcycle
                max_completion = state[2]
                if dmc:
                    cand = cycle + dmc
                    if cand > max_completion:
                        max_completion = cand
                ready = {reg: out_cycle + d for reg, d in out_items}
                if not in_order:
                    rob[:rob_size] = ([0] * (rob_size - len(live))
                                      + [out_cycle + d for d in live])
                    rob[rob_size] = 0
                state = (out_cycle, slots_out, max_completion,
                         mem_hi, br_hi,
                         out_cycle + ports[0], out_cycle + ports[1],
                         out_cycle + ports[2])
            continue
        start, period, periods, warmup, mem_per, br_per = chunk
        pos = start + warmup * period
        state = span(start, pos, state, ready)
        done = warmup
        history: list = []
        attempts = 0
        while done < periods:
            state = span(pos, pos + period, state, ready)
            pos += period
            done += 1
            if attempts >= _MAX_ATTEMPTS:
                continue
            attempts += 1
            cycle, slots, max_completion = state[0], state[1], state[2]
            if in_order:
                rob_sig = None
            else:
                head = rob[rob_size]
                ring = rob[head:rob_size] + rob[:head]  # oldest first
                rob_sig = tuple(
                    when - cycle if when > cycle else 0 for when in ring)
            sig = (slots, _canon_ready(ready, cycle),
                   max(state[5] - cycle, 0),
                   max(state[6] - cycle, 0),
                   max(state[7] - cycle, 0),
                   rob_sig)
            locked = False
            for stride in range(1, min(len(history), _MAX_STRIDE) + 1):
                past_sig, past_cycle, past_mc = history[-stride]
                if sig != past_sig:
                    continue
                delta = cycle - past_cycle
                strides = (periods - done) // stride
                if strides and (delta == 0 or max_completion > past_mc):
                    skipped = strides * stride
                    cycle += strides * delta
                    if delta:
                        max_completion += strides * delta
                    ready = {reg: cycle + d for reg, d in sig[1]}
                    if not in_order:
                        for i, d in enumerate(sig[5]):
                            rob[i] = cycle + d
                        rob[rob_size] = 0
                    state = (cycle, slots, max_completion,
                             state[3] + skipped * mem_per,
                             state[4] + skipped * br_per,
                             cycle + sig[2], cycle + sig[3], cycle + sig[4])
                    pos += skipped * period
                    done += skipped
                    locked = True
                break  # an equal-but-unskippable match: keep stepping
            if locked:
                # Leftover periods (< stride) may re-lock at stride 1.
                history = []
                attempts = 0
                continue
            history.append((sig, cycle, max_completion))
    return max(state[0], state[2])


# ---------------------------------------------------------------------------
# Entry point


def replay_trace(model, trace, decoded=None) -> TimingResult:
    """Replay *trace* under *model*'s config on the batched kernel.

    Produces a :class:`TimingResult` whose pickle is byte-identical to
    the python model's — the equivalence suite asserts it across every
    workload pair and Table III machine.
    """
    if not HAVE_NUMPY:  # pragma: no cover - selection guards this
        raise RuntimeError("numpy replay kernel requested but numpy is missing")
    kind = getattr(model, "kernel_kind", None)
    if kind not in ("inorder", "ooo"):
        raise ValueError(f"model {type(model).__name__} has no batched kernel")
    if decoded is None:
        from repro.sim.timing_common import decode_binary

        decoded = decode_binary(trace.binary)
    config = model.config
    stat = _binary_stat(trace.binary, decoded)
    pack = _trace_pack(trace, stat)
    program = _program_for(trace.binary, decoded, config.latencies)
    codes, l1_hits, l1_misses = _cache_sim(pack.mem, config)
    correct, branch_hits, branch_misses = _predictor_sim(
        pack.br, config.predictor_entries)
    lat_by_code = np.array(
        [config.l1_hit_cycles, config.l2_hit_cycles, config.memory_cycles],
        dtype=np.int64)
    mem_lat = lat_by_code[codes].tolist()
    regions = _steady_regions(pack, codes, correct,
                              0 if kind == "inorder" else config.rob_size)
    # Segment memos are valid for exactly one timing behavior: the
    # cache/predictor configs are covered by the latency-code/outcome
    # bytes inside each key, everything else must scope the dict.
    fingerprint = (kind, config.width, config.mispredict_penalty,
                   config.rob_size if kind == "ooo" else 0,
                   config.l1_hit_cycles, config.l2_hit_cycles,
                   config.memory_cycles,
                   tuple(sorted(config.latencies.items())))
    memo = stat.memos.setdefault(fingerprint, {})
    cycles = _run_cycles(kind, program, pack, mem_lat, correct.tolist(),
                         regions, config, codes=codes, correct_arr=correct,
                         memo=memo)
    return TimingResult(
        cycles=int(cycles),
        instructions=pack.instructions,
        l1_hits=l1_hits,
        l1_misses=l1_misses,
        branch_hits=branch_hits,
        branch_misses=branch_misses,
        mem_lat_hist=_mem_hist(codes, config),
        branch_run_hist=_branch_hist(correct),
    )
