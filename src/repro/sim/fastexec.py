"""Fast functional execution engine (``REPRO_SIM_EXEC=fast``).

A second execution engine behind :func:`repro.sim.functional.run_binary` /
:class:`repro.sim.functional.Simulator` that produces a **byte-identical**
:class:`repro.sim.trace.ExecutionTrace` (pickle-equal: same block sequence,
memory-address stream, branch log, output, exit value and instruction
count) while running several times faster.  Three layers:

1. **Block compilation** — every function of a :class:`Binary` is decoded
   once into specialized Python source (``exec``-compiled, weakly cached
   per live binary like ``kernels._PACK_CACHE``): registers become true
   locals (``r0..``/``f0..``), opcode dispatch disappears entirely, and
   single-predecessor blocks are inlined into their predecessor's chain so
   straight-line regions run without dispatch at all.  Calls become direct
   Python recursion (a ``RecursionError`` falls back to the reference
   interpreter).

2. **Packed trace buffers** — the dynamic block sequence and the memory
   address stream are recorded as constant-tuple ``list.extend`` batches
   per straight-line region instead of one ``list.append`` per event; the
   trace is adopted zero-copy via :meth:`ExecutionTrace.from_buffers`.

3. **Architectural segment memoization** — innermost call-free loops are
   *anchored* (PR 8's loop-header segmentation applied to architectural
   state): on loop entry the anchor keys the loop body's full
   architectural effect (register deltas, relative/absolute memory writes
   and the emitted trace slices) on the content-defined read footprint +
   entry state, and replays memoized loop executions arithmetically.
   Footprints are fp-relative when the segment is "clean" (no REG-mode
   addressing, no fp-dependent ``lea``, no absolute access into the stack
   region), so a memoized loop re-hits across call frames.  Disable with
   ``REPRO_SIM_MEMO=0``.

Trap parity is exact: loads/stores/divides raise the same ``SimTrap``
messages, and the instruction budget check is placed at backedges, call
prologues and at entry of every block that can itself trap — which
preserves both the trap/complete outcome and the trap *kind* of the
reference interpreter (whose per-block check is only observable at a
potential trap site, since a trap discards all other state).

Unsupported binaries (unknown opcodes, non-contiguous ``arg`` staging)
compile to ``None`` and fall back to the reference interpreter.  Anchor
tables are plain dicts mutated under the GIL; concurrent runs can at
worst duplicate a recording or skew the adaptive counters — never corrupt
a trace.
"""

from __future__ import annotations

import os
import sys
import warnings
import weakref

from repro.ir.ops_eval import BINOPS, UNOPS
from repro.isa.machine import Binary
from repro.profiling.loops import find_machine_loops
from repro.sim.functional import SimTrap, Simulator, _format_output
from repro.sim.trace import ExecutionTrace

EXEC_CHOICES = ("python", "fast", "auto")
_ENV_VAR = "REPRO_SIM_EXEC"
_MEMO_ENV = "REPRO_SIM_MEMO"

# Segment-memoization caps (per anchor): recording aborts past these and
# the adaptive policy disables anchors that never pay for themselves.
SEG_MAX_INSTRS = 4096
SEG_MAX_READS = 64
SEG_MAX_WRITES = 256
SEG_MAX_GROUPS = 4
SEG_MAX_ENTRIES = 96
SEG_MIN_PROBES = 16
SEG_MAX_ABORTS = 4
_MAX_BODY_BLOCKS = 64

_RECURSION_LIMIT = 120_000

# Optional introspection hook (mirrors kernels.SEG_DEBUG): set to a dict
# to collect per-unit compile info and fallback reasons.
EXEC_DEBUG: dict | None = None

_BUDGET_MSG = "instruction budget exceeded (%d)"

_TERMINATORS = ("bt", "bf", "jmp", "call", "ret")
_INT_DIV_OPS = ("div", "udiv", "mod", "umod")

_warned_fallback: set = set()


def _requested_exec() -> str:
    value = os.environ.get(_ENV_VAR, "auto").strip().lower()
    if value not in EXEC_CHOICES:
        raise ValueError(
            f"{_ENV_VAR} must be one of {EXEC_CHOICES}, got {value!r}"
        )
    return value


def select_exec() -> str:
    """Resolve the execution engine: ``python`` or ``fast``.

    ``auto`` (the default) picks ``fast``: compilation costs milliseconds,
    is cached for the binary's lifetime, and unsupported binaries fall
    back per-run anyway.
    """
    requested = _requested_exec()
    return "fast" if requested == "auto" else requested


class _Unsupported(Exception):
    """Binary shape the compiler does not handle; caller falls back."""


def _wrap_int_div(fn):
    def run(a, b, _fn=fn):
        try:
            return _fn(a, b)
        except ZeroDivisionError as exc:
            raise SimTrap("integer division by zero") from exc

    return run


_HELPERS = {
    "_T": SimTrap,
    "_fo": _format_output,
    "_div": _wrap_int_div(BINOPS["div"]),
    "_udiv": _wrap_int_div(BINOPS["udiv"]),
    "_mod": _wrap_int_div(BINOPS["mod"]),
    "_umod": _wrap_int_div(BINOPS["umod"]),
    "_sar": BINOPS["sar"],
    "_slt": BINOPS["cmplt"],
    "_sle": BINOPS["cmple"],
    "_sgt": BINOPS["cmpgt"],
    "_sge": BINOPS["cmpge"],
    "_fdiv": BINOPS["fdiv"],
    "_absi": UNOPS["absi"],
    "_itof": UNOPS["itof"],
    "_ftoi": UNOPS["ftoi"],
    "_sqrt": UNOPS["sqrt"],
    "_sin": UNOPS["sin"],
    "_cos": UNOPS["cos"],
    "_log": UNOPS["log"],
    "_exp": UNOPS["exp"],
    "_floor": UNOPS["floor"],
}


def _canon(v):
    """Hashable, type- and bit-exact key form of a register/memory value."""
    return v if type(v) is int else ("f", repr(v))


class _Anchor:
    """Segment-memo table for one anchored (innermost, call-free) loop."""

    __slots__ = (
        "func",
        "header",
        "body",
        "resume_map",
        "stack_base",
        "on",
        "groups",
        "table",
        "probes",
        "hits",
        "recs",
        "aborts",
    )

    def __init__(self, func, header, body, resume_map, stack_base):
        self.func = func
        self.header = header
        self.body = body
        self.resume_map = resume_map
        self.stack_base = stack_base
        self.on = True
        self.groups: list = []
        self.table: dict = {}
        self.probes = 0
        self.hits = 0
        self.recs = 0
        self.aborts = 0

    # -- probe -----------------------------------------------------------

    def entry(self, ri, rf, fp, memory, n, ctx):
        """Called at loop entry; returns ``(iregs, fregs, n, b)`` when the
        anchor executed (replayed or recorded) past the loop, else None."""
        if not self.on:
            return None
        self.probes += 1
        probes = self.probes
        hits = self.hits
        if (
            (probes >= 32 and hits == 0)
            or (probes >= SEG_MIN_PROBES and hits * 8 < probes)
            or self.aborts >= SEG_MAX_ABORTS
            or (len(self.table) >= SEG_MAX_ENTRIES and hits * 4 < probes)
        ):
            self.on = False
            self.groups = []
            self.table = {}
            return None
        mlen = len(memory)
        table = self.table
        for gi, (irs, frs, abss, rels, fpk, rlo, rhi, amax) in enumerate(
            self.groups
        ):
            if rels and (fp + rlo < 0 or fp + rhi >= mlen):
                continue
            if amax >= mlen:
                continue
            parts = [gi]
            for i in irs:
                v = ri[i]
                parts.append(v if type(v) is int else ("f", repr(v)))
            for i in frs:
                v = rf[i]
                parts.append(v if type(v) is int else ("f", repr(v)))
            for a in abss:
                v = memory[a]
                parts.append(v if type(v) is int else ("f", repr(v)))
            for s in rels:
                v = memory[fp + s]
                parts.append(v if type(v) is int else ("f", repr(v)))
            if fpk:
                parts.append(fp)
            hit = table.get(tuple(parts))
            if hit is not None:
                res = self._apply(hit, ri, rf, fp, memory, n, ctx)
                if res is not None:
                    self.hits += 1
                    return res
        if self.recs < 4 or self.hits * 4 >= self.probes:
            if len(table) < SEG_MAX_ENTRIES:
                return self._record(ri, rf, fp, memory, n, ctx)
        return None

    # -- replay ----------------------------------------------------------

    def _apply(self, hit, ri, rf, fp, memory, n, ctx):
        (
            icount,
            iw,
            fw,
            mw,
            wlo,
            whi,
            awhi,
            resume,
            bsl,
            brl,
            msl,
            mflags,
            rec_fp,
        ) = hit
        if n + icount > ctx[7]:
            return None  # the reference engine would trap inside; execute
        mlen = len(memory)
        if wlo is not None and (fp + wlo < 0 or fp + whi >= mlen):
            return None
        if awhi is not None and awhi >= mlen:
            return None
        li = list(ri)
        for i, v in iw:
            li[i] = v
        lf = list(rf)
        for i, v in fw:
            lf[i] = v
        for a, rel, v in mw:
            memory[fp + a if rel else a] = v
        if bsl:
            ctx[1](bsl)
        if brl:
            ctx[5](brl)
        if msl:
            if mflags is None or fp == rec_fp:
                ctx[3](msl)
            else:
                d4 = (fp - rec_fp) << 2
                ctx[3](
                    tuple(
                        (v + d4) if flag else v
                        for v, flag in zip(msl, mflags)
                    )
                )
        return (li, lf, n + icount, resume)

    # -- record ----------------------------------------------------------

    def _record(self, ri, rf, fp, memory, n, ctx):
        """Execute the whole loop (tracking the architectural footprint)
        with reference-interpreter semantics, then store a memo entry."""
        self.recs += 1
        func = self.func
        blocks = func.blocks
        body = self.body
        resume_map = self.resume_map
        stack_base = self.stack_base
        tb, _, tm, _, tbr, _, _, budget = ctx
        block_seq = tb.__self__
        mem_addrs = tm.__self__
        branch_log = tbr.__self__
        b0 = len(block_seq)
        m0 = len(mem_addrs)
        g0 = len(branch_log)

        iregs = list(ri)
        fregs = list(rf)
        memory_len = len(memory)  # constant: the body contains no calls
        iread: dict = {}
        fread: dict = {}
        iwr: set = set()
        fwr: set = set()
        mrd: dict = {}
        mwr: dict = {}
        mfl: list = []
        clean = True
        icount = 0
        tracked = True
        binops = BINOPS
        unops = UNOPS

        def gi(i):
            if tracked and i not in iwr and i not in iread:
                iread[i] = iregs[i]
            return iregs[i]

        def gf(i):
            if tracked and i not in fwr and i not in fread:
                fread[i] = fregs[i]
            return fregs[i]

        bi = self.header
        while True:
            if bi not in body:
                break
            if not tracked and bi in resume_map:
                break
            block = blocks[bi]
            tb(block.gbid)
            icount += len(block.instrs)
            if n + icount > budget:
                raise SimTrap(_BUDGET_MSG % budget)
            if tracked and (
                icount > SEG_MAX_INSTRS
                or len(mrd) > SEG_MAX_READS
                or len(mwr) > SEG_MAX_WRITES
            ):
                tracked = False
                self.aborts += 1
            nb = block.fall_through
            for ins in block.instrs:
                op = ins.op
                if op == "ld" or op == "fld":
                    mode, abase, aidx, off = ins.addr
                    if mode == 1:
                        ea = fp + abase + off
                        isfp = True
                    elif mode == 0:
                        ea = abase + off
                        isfp = False
                    else:
                        ea = gi(abase) + off
                        isfp = False
                        clean = False
                    if aidx is not None:
                        ea += gi(aidx)
                    if mode == 0 and ea >= stack_base:
                        clean = False
                    if ea >= memory_len or ea < 0:
                        raise SimTrap(f"load out of range: word {ea}")
                    if tracked and ea not in mwr and ea not in mrd:
                        mrd[ea] = (memory[ea], isfp)
                    tm(ea << 2)
                    mfl.append(isfp)
                    if op == "ld":
                        iwr.add(ins.dst)
                        iregs[ins.dst] = memory[ea]
                    else:
                        fwr.add(ins.dst)
                        fregs[ins.dst] = memory[ea]
                elif op == "st" or op == "fst":
                    mode, abase, aidx, off = ins.addr
                    if mode == 1:
                        ea = fp + abase + off
                        isfp = True
                    elif mode == 0:
                        ea = abase + off
                        isfp = False
                    else:
                        ea = gi(abase) + off
                        isfp = False
                        clean = False
                    if aidx is not None:
                        ea += gi(aidx)
                    if mode == 0 and ea >= stack_base:
                        clean = False
                    if ea >= memory_len or ea < 0:
                        raise SimTrap(f"store out of range: word {ea}")
                    if tracked and ea not in mwr:
                        mwr[ea] = isfp
                    tm(ea << 2)
                    mfl.append(isfp)
                    if ins.a is not None:
                        memory[ea] = gi(ins.a) if op == "st" else gf(ins.a)
                    else:
                        memory[ea] = ins.b_imm
                elif op == "li":
                    iwr.add(ins.dst)
                    iregs[ins.dst] = ins.b_imm
                elif op == "lif":
                    fwr.add(ins.dst)
                    fregs[ins.dst] = ins.b_imm
                elif op == "mov":
                    v = gi(ins.a)
                    iwr.add(ins.dst)
                    iregs[ins.dst] = v
                elif op == "fmov":
                    v = gf(ins.a)
                    fwr.add(ins.dst)
                    fregs[ins.dst] = v
                elif op == "bt" or op == "bf":
                    cond = gi(ins.a)
                    jump = bool(cond) if op == "bt" else not cond
                    tbr((ins.uid << 1) | jump)
                    if jump:
                        nb = ins.target
                    break
                elif op == "jmp":
                    nb = ins.target
                    break
                elif op == "lea":
                    mode, abase, aidx, off = ins.addr
                    if mode == 1:
                        ea = fp + abase + off
                        clean = False
                    elif mode == 0:
                        ea = abase + off
                    else:
                        ea = gi(abase) + off
                        clean = False
                    if aidx is not None:
                        ea += gi(aidx)
                    iwr.add(ins.dst)
                    iregs[ins.dst] = ea
                elif op in ("call", "ret", "print", "arg", "farg"):
                    # Excluded by anchor selection; defensive.
                    raise RuntimeError(
                        f"fastexec: anchored segment reached {op!r}"
                    )
                else:
                    handler = binops.get(op)
                    if handler is not None:
                        if ins.addr is not None:
                            mode, abase, aidx, off = ins.addr
                            if mode == 1:
                                ea = fp + abase + off
                                isfp = True
                            elif mode == 0:
                                ea = abase + off
                                isfp = False
                            else:
                                ea = gi(abase) + off
                                isfp = False
                                clean = False
                            if aidx is not None:
                                ea += gi(aidx)
                            if mode == 0 and ea >= stack_base:
                                clean = False
                            if ea >= memory_len or ea < 0:
                                raise SimTrap(f"load out of range: word {ea}")
                            if tracked and ea not in mwr and ea not in mrd:
                                mrd[ea] = (memory[ea], isfp)
                            tm(ea << 2)
                            mfl.append(isfp)
                            bv = memory[ea]
                        elif ins.b_reg is not None:
                            bv = (
                                gf(ins.b_reg)
                                if op[0] == "f" and op not in ("floor",)
                                else gi(ins.b_reg)
                            )
                        else:
                            bv = ins.b_imm
                        if op[0] == "f":
                            try:
                                res = handler(gf(ins.a), bv)
                            except ZeroDivisionError as exc:
                                raise SimTrap("float division by zero") from exc
                            if "cmp" in op:
                                iwr.add(ins.dst)
                                iregs[ins.dst] = res
                            else:
                                fwr.add(ins.dst)
                                fregs[ins.dst] = res
                        else:
                            try:
                                res = handler(gi(ins.a), bv)
                            except ZeroDivisionError as exc:
                                raise SimTrap(
                                    "integer division by zero"
                                ) from exc
                            iwr.add(ins.dst)
                            iregs[ins.dst] = res
                    else:
                        uhandler = unops.get(op)
                        if uhandler is None:  # pragma: no cover - compile-gated
                            raise SimTrap(f"unknown opcode {op!r}")
                        if op in ("itof", "utof"):
                            v = uhandler(gi(ins.a))
                            fwr.add(ins.dst)
                            fregs[ins.dst] = v
                        elif op == "ftoi":
                            v = uhandler(gf(ins.a))
                            iwr.add(ins.dst)
                            iregs[ins.dst] = v
                        elif op in ("fneg", "sqrt", "sin", "cos", "log",
                                    "exp", "fabs", "floor"):
                            try:
                                v = uhandler(gf(ins.a))
                            except ValueError as exc:  # pragma: no cover
                                raise SimTrap(
                                    f"math domain error in {op}"
                                ) from exc
                            fwr.add(ins.dst)
                            fregs[ins.dst] = float(v) if op == "floor" else v
                        else:
                            v = uhandler(gi(ins.a))
                            iwr.add(ins.dst)
                            iregs[ins.dst] = v
            if nb is None:
                raise SimTrap(f"fell off the end of {func.name}")
            bi = nb

        resume = resume_map[bi]
        result = (iregs, fregs, n + icount, resume)
        if not tracked:
            return result

        # -- finalize the memo entry -------------------------------------
        if clean:
            abss = tuple(sorted(a for a, (_, f) in mrd.items() if not f))
            rels = tuple(sorted(a - fp for a, (_, f) in mrd.items() if f))
            fpk = False
        else:
            abss = tuple(sorted(mrd))
            rels = ()
            fpk = True
        rlo = min(rels) if rels else 0
        rhi = max(rels) if rels else 0
        amax = max(abss) if abss else -1
        sig = (
            tuple(sorted(iread)),
            tuple(sorted(fread)),
            abss,
            rels,
            fpk,
            rlo,
            rhi,
            amax,
        )
        try:
            gidx = self.groups.index(sig)
        except ValueError:
            if len(self.groups) >= SEG_MAX_GROUPS:
                return result
            gidx = len(self.groups)
            self.groups.append(sig)
        parts = [gidx]
        for i in sig[0]:
            parts.append(_canon(iread[i]))
        for i in sig[1]:
            parts.append(_canon(fread[i]))
        for a in abss:
            parts.append(_canon(mrd[a][0]))
        for s in rels:
            parts.append(_canon(mrd[fp + s][0]))
        if fpk:
            parts.append(fp)

        iw = tuple((i, iregs[i]) for i in sorted(iwr))
        fw = tuple((i, fregs[i]) for i in sorted(fwr))
        mwl = []
        wrl = []
        for ea, f in mwr.items():
            if clean and f:
                wrl.append(ea - fp)
                mwl.append((ea - fp, True, memory[ea]))
            else:
                mwl.append((ea, False, memory[ea]))
        wlo = min(wrl) if wrl else None
        whi = max(wrl) if wrl else None
        awhi = max((e for e, f, _ in mwl if not f), default=None)
        bsl = tuple(block_seq[b0:])
        brl = tuple(branch_log[g0:])
        msl = tuple(mem_addrs[m0:])
        mflags = tuple(mfl) if (clean and any(mfl)) else None
        self.table[tuple(parts)] = (
            icount,
            iw,
            fw,
            tuple(mwl),
            wlo,
            whi,
            awhi,
            resume,
            bsl,
            brl,
            msl,
            mflags,
            fp,
        )
        return result


class _FuncEmitter:
    """Compiles one MachineFunction into Python source."""

    def __init__(self, binary, fi, func, traced, memo_on, anchors):
        self.binary = binary
        self.fi = fi
        self.func = func
        self.traced = traced
        self.memo_on = memo_on
        self.anchors = anchors  # shared, namespace-wide
        self.blocks = func.blocks
        self.lines: list[str] = []
        self._ntemp = 0

        self.executed = [self._executed(b) for b in self.blocks]
        self._verify_staging()
        self._analyze_cfg()
        self._pick_anchors()
        self.dispatchable = set(self.sections)
        self.needs_check = [self._needs_check(i) for i in range(len(self.blocks))]
        self.has_checks = any(
            ins.addr is not None and ins.op != "lea" and not self._mem_safe(ins)
            for ex in self.executed
            for ins in ex
        )
        self.use_fp4 = traced and any(
            ins.addr is not None
            and ins.op != "lea"
            and ins.addr[0] == 1
            and ins.addr[2] is None
            and self._mem_safe(ins)
            for ex in self.executed
            for ins in ex
        )

    # -- prepass ---------------------------------------------------------

    @staticmethod
    def _executed(block):
        out = []
        for ins in block.instrs:
            out.append(ins)
            if ins.op in _TERMINATORS:
                break
        return out

    def _verify_staging(self):
        """Args must be staged contiguously, immediately before their
        call/print, in the same block — anything else falls back."""
        self.consumers: dict = {}
        for bi, ex in enumerate(self.executed):
            staged: list[str] = []
            for pos, ins in enumerate(ex):
                op = ins.op
                if op == "arg":
                    staged.append(
                        f"r{ins.a}" if ins.a is not None else self._imm(ins.b_imm)
                    )
                elif op == "farg":
                    staged.append(
                        f"f{ins.a}" if ins.a is not None else self._imm(ins.b_imm)
                    )
                elif op in ("call", "print"):
                    self.consumers[(bi, pos)] = staged
                    staged = []
                elif staged:
                    raise _Unsupported(
                        f"arg staging interrupted by {op!r} in "
                        f"{self.func.name}"
                    )
            if staged:
                raise _Unsupported(
                    f"arg staging crosses a block boundary in {self.func.name}"
                )

    def _analyze_cfg(self):
        nblocks = len(self.blocks)
        self.succs: list[list[int]] = []
        preds = [0] * nblocks
        for bi, block in enumerate(self.blocks):
            ex = self.executed[bi]
            term = ex[-1].op if ex and ex[-1].op in _TERMINATORS else None
            out = []
            if term in ("bt", "bf"):
                out.append(ex[-1].target)
                if block.fall_through is not None:
                    out.append(block.fall_through)
            elif term == "jmp":
                out.append(ex[-1].target)
            elif term == "ret":
                pass
            else:  # call or plain fall-through
                if block.fall_through is not None:
                    out.append(block.fall_through)
            self.succs.append(out)
            for s in out:
                preds[s] += 1
        self.sections = {0}
        for bi in range(nblocks):
            if preds[bi] > 1:
                self.sections.add(bi)
        self.loops = find_machine_loops(self.func)
        depth = {}
        for loop in self.loops:
            for bi in loop.body:
                depth[bi] = max(depth.get(bi, 0), loop.depth)
        self.block_depth = depth

    def _pick_anchors(self):
        """Anchor innermost call/print/ret-free loops for memoization."""
        self.anchored: list = []  # (loop, header, syn_id, anchor_name)
        self.anchor_headers: dict = {}  # header -> (loop, syn_id, name)
        if not (self.traced and self.memo_on):
            return
        nblocks = len(self.blocks)
        syn = nblocks
        for loop in self.loops:
            if loop.children or len(loop.body) > _MAX_BODY_BLOCKS:
                continue
            if any(
                ins.op in ("call", "print", "ret")
                for bi in loop.body
                for ins in self.executed[bi]
            ):
                continue
            self.anchored.append((loop, loop.header, syn))
            self.sections.add(loop.header)
            for bi in loop.body:
                for s in self.succs[bi]:
                    if s not in loop.body:
                        self.sections.add(s)
            syn += 1

    def _needs_check(self, bi):
        block = self.blocks[bi]
        ex = self.executed[bi]
        term = ex[-1].op if ex and ex[-1].op in _TERMINATORS else None
        if term in (None, "bt", "bf") and block.fall_through is None:
            return True  # a fell-off-the-end raise lives in this block
        for ins in ex:
            op = ins.op
            if op in _INT_DIV_OPS:
                return True
            if ins.addr is not None and op != "lea" and not self._mem_safe(ins):
                return True
        return False

    def _mem_safe(self, ins):
        """True when the access provably cannot trap (check elided)."""
        mode, abase, idx, off = ins.addr
        if idx is not None:
            return False
        c = abase + off
        if mode == 1:
            return 0 <= c < self.func.frame_size
        if mode == 0:
            return 0 <= c < self.binary.stack_base
        return False

    # -- source helpers --------------------------------------------------

    def _temp(self):
        self._ntemp += 1
        return f"_e{self._ntemp}"

    @staticmethod
    def _imm(v):
        if isinstance(v, float) and (v != v or v in (float("inf"), float("-inf"))):
            return f"float({repr(repr(v))})"
        return repr(v)

    def _line(self, ind, text):
        self.lines.append(" " * ind + text)

    def _budget_line(self, ind):
        self._line(ind, f'if n > budget: raise _T("{_BUDGET_MSG}" % budget)')

    def _flush_n(self, ind, pn):
        """Emit the accumulated instruction-count bump for the chain so far.

        Per-block ``n += len(instrs)`` adds are deferred and merged; they
        must be materialized before anything that observes ``n`` (budget
        checks, calls, returns, dispatch transfers, anchor probes)."""
        if pn[0]:
            self._line(ind, f"n += {pn[0]}")
            pn[0] = 0

    def _flush(self, ind, gbp, mep):
        if gbp:
            if len(gbp) == 1:
                self._line(ind, f"tb({gbp[0]})")
            else:
                self._line(ind, f"tbx(({', '.join(map(str, gbp))}))")
            gbp.clear()
        if mep:
            if len(mep) == 1:
                self._line(ind, f"tm({mep[0]})")
            else:
                self._line(ind, f"tmx(({', '.join(mep)}))")
            mep.clear()

    def _mem_index(self, ins, ind, mep, store):
        """Emit address computation + bounds check, queue the trace event;
        returns the expression to index ``memory`` with."""
        mode, abase, idx, off = ins.addr
        msg = "store out of range: word %d" if store else "load out of range: word %d"
        if mode == 0 and idx is None:
            c = abase + off
            safe = 0 <= c < self.binary.stack_base
            if not safe:
                self._line(
                    ind, f'if {c} < 0 or {c} >= _lm: raise _T("{msg}" % {c})'
                )
            if self.traced:
                mep.append(str(c << 2))
            return str(c)
        if mode == 1:
            c = abase + off
            base = "fp" if c == 0 else f"fp + {c}"
            safe = idx is None and 0 <= c < self.func.frame_size
        elif mode == 0:
            base = str(abase + off)
            safe = False
        else:
            base = f"r{abase}" if off == 0 else f"r{abase} + {off}"
            safe = False
        expr = base if idx is None else f"{base} + r{idx}"
        if safe:
            # Frame-local accesses need no temp: the address is a constant
            # offset from fp (loop-invariant within the function), so the
            # deferred trace expression can use the prologue's fp4.
            if self.traced:
                mep.append("fp4" if c == 0 else f"fp4 + {c << 2}")
            return f"({expr})" if " " in expr else expr
        name = self._temp()
        self._line(ind, f"{name} = {expr}")
        self._line(
            ind,
            f'if {name} < 0 or {name} >= _lm: raise _T("{msg}" % {name})',
        )
        if self.traced:
            mep.append(f"{name} << 2")
        return name

    # -- instruction emission --------------------------------------------

    def _emit_alu(self, ins, ind, mep):
        op = ins.op
        d = ins.dst
        handler = BINOPS.get(op)
        if handler is not None:
            fop = op[0] == "f"
            a = f"f{ins.a}" if fop else f"r{ins.a}"
            bimm = None
            if ins.addr is not None:
                b = f"memory[{self._mem_index(ins, ind, mep, store=False)}]"
            elif ins.b_reg is not None:
                b = f"f{ins.b_reg}" if fop else f"r{ins.b_reg}"
            else:
                bimm = ins.b_imm
                b = self._imm(bimm)
            M = "4294967295"
            if op in ("add", "sub", "mul"):
                sym = {"add": "+", "sub": "-", "mul": "*"}[op]
                self._line(ind, f"r{d} = ({a} {sym} {b}) & {M}")
            elif op in ("and", "or", "xor"):
                sym = {"and": "&", "or": "|", "xor": "^"}[op]
                if op == "and" and isinstance(bimm, int) and 0 <= bimm <= 0xFFFFFFFF:
                    # & with an in-range non-negative immediate already
                    # yields a masked non-negative result.
                    self._line(ind, f"r{d} = {a} & {bimm}")
                else:
                    self._line(ind, f"r{d} = ({a} {sym} {b}) & {M}")
            elif op in _INT_DIV_OPS:
                h = {"div": "_div", "udiv": "_udiv", "mod": "_mod", "umod": "_umod"}[op]
                self._line(ind, f"r{d} = {h}({a}, {b})")
            elif op == "shl":
                if isinstance(bimm, int):
                    self._line(ind, f"r{d} = ({a} << {bimm & 31}) & {M}")
                else:
                    self._line(ind, f"r{d} = ({a} << ({b} & 31)) & {M}")
            elif op == "shr":
                if isinstance(bimm, int):
                    self._line(ind, f"r{d} = ({a} & {M}) >> {bimm & 31}")
                else:
                    self._line(ind, f"r{d} = ({a} & {M}) >> ({b} & 31)")
            elif op == "sar":
                self._line(ind, f"r{d} = _sar({a}, {b})")
            elif op in ("cmpeq", "cmpne", "cmpltu", "cmpleu", "cmpgtu", "cmpgeu"):
                sym = {
                    "cmpeq": "==",
                    "cmpne": "!=",
                    "cmpltu": "<",
                    "cmpleu": "<=",
                    "cmpgtu": ">",
                    "cmpgeu": ">=",
                }[op]
                bm = str(bimm & 0xFFFFFFFF) if isinstance(bimm, int) else f"({b}) & {M}"
                self._line(ind, f"r{d} = 1 if ({a} & {M}) {sym} {bm} else 0")
            elif op in ("cmplt", "cmple", "cmpgt", "cmpge"):
                h = {"cmplt": "_slt", "cmple": "_sle", "cmpgt": "_sgt", "cmpge": "_sge"}[op]
                self._line(ind, f"r{d} = {h}({a}, {b})")
            elif op in ("fadd", "fsub", "fmul"):
                sym = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
                self._line(ind, f"f{d} = {a} {sym} ({b})")
            elif op == "fdiv":
                self._line(ind, f"f{d} = _fdiv({a}, {b})")
            elif op.startswith("fcmp"):
                sym = {
                    "fcmpeq": "==",
                    "fcmpne": "!=",
                    "fcmplt": "<",
                    "fcmple": "<=",
                    "fcmpgt": ">",
                    "fcmpge": ">=",
                }[op]
                self._line(ind, f"r{d} = 1 if {a} {sym} ({b}) else 0")
            else:
                raise _Unsupported(f"binop {op!r}")
            return
        if op not in UNOPS:
            raise _Unsupported(f"opcode {op!r}")
        a = ins.a
        if op == "neg":
            self._line(ind, f"r{d} = (-r{a}) & 4294967295")
        elif op == "not":
            self._line(ind, f"r{d} = (~r{a}) & 4294967295")
        elif op == "lognot":
            self._line(ind, f"r{d} = 0 if r{a} & 4294967295 else 1")
        elif op == "absi":
            self._line(ind, f"r{d} = _absi(r{a})")
        elif op == "itof":
            self._line(ind, f"f{d} = _itof(r{a})")
        elif op == "utof":
            self._line(ind, f"f{d} = float(r{a} & 4294967295)")
        elif op == "ftoi":
            self._line(ind, f"r{d} = _ftoi(f{a})")
        elif op == "fneg":
            self._line(ind, f"f{d} = -f{a}")
        elif op == "fabs":
            self._line(ind, f"f{d} = abs(f{a})")
        elif op in ("sqrt", "sin", "cos", "log", "exp", "floor"):
            self._line(ind, f"f{d} = _{op}(f{a})")
        else:
            raise _Unsupported(f"unop {op!r}")

    def _emit_ins(self, bi, pos, ins, ind, mep):
        op = ins.op
        if op in ("arg", "farg"):
            return
        if op == "ld":
            self._line(
                ind, f"r{ins.dst} = memory[{self._mem_index(ins, ind, mep, False)}]"
            )
        elif op == "fld":
            self._line(
                ind, f"f{ins.dst} = memory[{self._mem_index(ins, ind, mep, False)}]"
            )
        elif op in ("st", "fst"):
            ea = self._mem_index(ins, ind, mep, store=True)
            if ins.a is not None:
                src = f"r{ins.a}" if op == "st" else f"f{ins.a}"
            else:
                src = self._imm(ins.b_imm)
            self._line(ind, f"memory[{ea}] = {src}")
        elif op == "li":
            self._line(ind, f"r{ins.dst} = {self._imm(ins.b_imm)}")
        elif op == "lif":
            self._line(ind, f"f{ins.dst} = {self._imm(ins.b_imm)}")
        elif op == "mov":
            self._line(ind, f"r{ins.dst} = r{ins.a}")
        elif op == "fmov":
            self._line(ind, f"f{ins.dst} = f{ins.a}")
        elif op == "lea":
            mode, abase, idx, off = ins.addr
            if mode == 1:
                c = abase + off
                expr = "fp" if c == 0 else f"fp + {c}"
            elif mode == 0:
                expr = str(abase + off)
            else:
                expr = f"r{abase}" if off == 0 else f"r{abase} + {off}"
            if idx is not None:
                expr = f"{expr} + r{idx}"
            self._line(ind, f"r{ins.dst} = {expr}")
        elif op == "print":
            args = ", ".join(self.consumers[(bi, pos)])
            self._line(ind, f"oap(_fo({ins.fmt!r}, [{args}]))")
        else:
            self._emit_alu(ins, ind, mep)

    # -- block / chain emission ------------------------------------------

    def _goto(self, src, tgt, ind, gbp, mep, pn):
        if tgt in self.dispatchable:
            self._flush(ind, gbp, mep)
            self._flush_n(ind, pn)
            if tgt <= src:
                self._budget_line(ind)
            did = tgt
            info = self.anchor_headers.get(tgt)
            if info is not None and src in info[0].back_edges:
                did = info[1]  # re-enter the loop body without re-probing
            self._line(ind, f"b = {did}")
            self._line(ind, "continue")
        else:
            self._chain(tgt, ind, gbp, mep, pn)

    def _fell(self, ind, gbp, mep):
        self._line(ind, f'raise _T("fell off the end of {self.func.name}")')

    def _arm(self, src, dest, brval, ind, gbp, mep, pn):
        if self.traced:
            self._line(ind, f"tbr({brval})")
        if dest is None:
            self._fell(ind, gbp, mep)
        else:
            self._goto(src, dest, ind, gbp, mep, pn)

    def _chain(self, bi, ind, gbp, mep, pn):
        block = self.blocks[bi]
        if self.traced:
            gbp.append(block.gbid)
        pn[0] += len(block.instrs)
        if self.needs_check[bi]:
            self._flush_n(ind, pn)
            self._budget_line(ind)
        ex = self.executed[bi]
        term = ex[-1].op if ex and ex[-1].op in _TERMINATORS else None
        body = ex[:-1] if term else ex
        for pos, ins in enumerate(body):
            self._emit_ins(bi, pos, ins, ind, mep)
        fall = block.fall_through
        if term is None:
            if fall is None:
                self._fell(ind, gbp, mep)
            else:
                self._goto(bi, fall, ind, gbp, mep, pn)
            return
        ins = ex[-1]
        if term == "jmp":
            self._goto(bi, ins.target, ind, gbp, mep, pn)
        elif term in ("bt", "bf"):
            taken_val = (ins.uid << 1) | 1
            nt_val = ins.uid << 1
            self._line(ind, f"if r{ins.a}:")
            if term == "bt":
                self._arm(bi, ins.target, taken_val, ind + 4,
                          list(gbp), list(mep), [pn[0]])
                self._line(ind, "else:")
                self._arm(bi, fall, nt_val, ind + 4,
                          list(gbp), list(mep), [pn[0]])
            else:
                self._arm(bi, fall, nt_val, ind + 4,
                          list(gbp), list(mep), [pn[0]])
                self._line(ind, "else:")
                self._arm(bi, ins.target, taken_val, ind + 4,
                          list(gbp), list(mep), [pn[0]])
        elif term == "ret":
            self._flush(ind, gbp, mep)
            self._flush_n(ind, pn)
            if not self.needs_check[bi]:
                # Completion parity: the reference engine budget-checks at
                # every block entry, so a return may never slip past it.
                self._budget_line(ind)
            if ins.a is not None:
                val = f"r{ins.a}"
            elif ins.b_reg is not None:
                val = f"f{ins.b_reg}"
            else:
                val = self._imm(ins.b_imm if ins.b_imm is not None else 0)
            self._line(ind, f"return ({val}, n)")
        else:  # call
            self._flush(ind, gbp, mep)
            self._flush_n(ind, pn)
            callee_idx = ins.target
            callee = self.binary.functions[callee_idx]
            staged = self.consumers[(bi, len(ex) - 1)]
            ncov = min(len(staged), len(callee.param_locs))
            t = self._temp()
            self._line(ind, f"{t} = fp + {self.func.frame_size}")
            self._line(ind, f"if {t} + {callee.frame_size} >= len(memory):")
            self._line(
                ind + 4,
                f"memory.extend([0] * max({t} + {callee.frame_size}"
                f" - len(memory) + 1, 16384))",
            )
            kwargs = []
            for p in range(ncov):
                kind, where, index = callee.param_locs[p]
                if where == "r":
                    reg = f"f{index}" if kind == "f" else f"r{index}"
                    kwargs.append(f"{reg}={staged[p]}")
                else:
                    self._line(ind, f"memory[{t} + {index}] = {staged[p]}")
            callargs = f"ctx, n, memory, {t}"
            if kwargs:
                callargs += ", " + ", ".join(kwargs)
            self._line(ind, f"_rv, n = _f{callee_idx}({callargs})")
            if self.has_checks:
                # The callee (or its callees) may have grown the stack.
                self._line(ind, "_lm = len(memory)")
            if ins.dst is not None:
                reg = f"f{ins.dst}" if ins.b_imm == "f" else f"r{ins.dst}"
                self._line(ind, f"{reg} = _rv")
            if fall is None:
                self._fell(ind, gbp, mep)
            else:
                self._goto(bi, fall, ind, gbp, mep, pn)

    # -- function emission -----------------------------------------------

    def emit(self) -> list[str]:
        func = self.func
        param_regs = []
        sig_parts = []
        for kind, where, index in func.param_locs:
            if where == "r":
                if kind == "f":
                    param_regs.append(("f", index))
                    sig_parts.append(f"f{index}=0.0")
                else:
                    param_regs.append(("r", index))
                    sig_parts.append(f"r{index}=0")
        sig = (", " + ", ".join(sig_parts)) if sig_parts else ""
        self._line(0, f"def _f{self.fi}(ctx, n, memory, fp{sig}):")
        if self.traced:
            self._line(4, "tb, tbx, tm, tmx, tbr, tbrx, oap, budget = ctx")
        else:
            self._line(4, "oap, budget = ctx")
        taken = set(param_regs)
        ints = [f"r{i}" for i in range(func.num_int_regs) if ("r", i) not in taken]
        floats = [f"f{i}" for i in range(func.num_float_regs) if ("f", i) not in taken]
        if ints:
            self._line(4, f"{' = '.join(ints)} = 0")
        if floats:
            self._line(4, f"{' = '.join(floats)} = 0.0")
        if self.has_checks:
            self._line(4, "_lm = len(memory)")
        if self.use_fp4:
            self._line(4, "fp4 = fp << 2")
        self._budget_line(4)
        self._line(4, "b = 0")
        self._line(4, "while 1:")

        # Register the anchors (they need the final section set).
        for loop, header, syn in self.anchored:
            resume_map = {s: s for s in self.dispatchable}
            resume_map[header] = syn
            anchor = _Anchor(
                func, header, frozenset(loop.body), resume_map,
                self.binary.stack_base,
            )
            name = f"_A{len(self.anchors)}"
            self.anchors.append(anchor)
            self.anchor_headers[header] = (loop, syn, name)

        entries = []  # (sort_key, dispatch_id, kind, block_idx)
        for s in sorted(self.sections):
            d = self.block_depth.get(s, 0)
            kind = "probe" if s in self.anchor_headers else "chain"
            entries.append(((-(d * 2), s), s, kind, s))
        for header, (loop, syn, name) in self.anchor_headers.items():
            d = self.block_depth.get(header, 0)
            entries.append(((-(d * 2 + 1), syn), syn, "syn", header))
        entries.sort()

        first = True
        for _, did, kind, bidx in entries:
            kw = "if" if first else "elif"
            first = False
            self._line(8, f"{kw} b == {did}:")
            if kind == "probe":
                loop, syn, name = self.anchor_headers[bidx]
                rtuple = ", ".join(f"r{i}" for i in range(func.num_int_regs))
                ftuple = ", ".join(f"f{i}" for i in range(func.num_float_regs))
                self._line(
                    12,
                    f"_t = {name}.entry(({rtuple}{',' if func.num_int_regs == 1 else ''}), "
                    f"({ftuple}{',' if func.num_float_regs == 1 else ''}), "
                    "fp, memory, n, ctx)",
                )
                self._line(12, "if _t is not None:")
                self._line(16, "_ri, _rf, n, b = _t")
                if func.num_int_regs:
                    self._line(
                        16,
                        f"{rtuple}{',' if func.num_int_regs == 1 else ''} = _ri",
                    )
                if func.num_float_regs:
                    self._line(
                        16,
                        f"{ftuple}{',' if func.num_float_regs == 1 else ''} = _rf",
                    )
                self._line(16, "continue")
                self._line(12, f"b = {syn}")
                self._line(12, "continue")
            else:
                self._chain(bidx, 12, [], [], [0])
        self._line(8, "else:")
        self._line(12, 'raise _T("fastexec: bad dispatch %r" % b)')
        self._line(0, "")
        return self.lines


class _Unit:
    __slots__ = ("entry", "anchors", "source", "traced")

    def __init__(self, entry, anchors, source, traced):
        self.entry = entry
        self.anchors = anchors
        self.source = source
        self.traced = traced


def _build_unit(binary: Binary, traced: bool, memo_on: bool) -> _Unit:
    anchors: list[_Anchor] = []
    lines: list[str] = []
    for fi, func in enumerate(binary.functions):
        emitter = _FuncEmitter(binary, fi, func, traced, memo_on, anchors)
        lines.extend(emitter.emit())
    source = "\n".join(lines)
    namespace: dict = dict(_HELPERS)
    for i, anchor in enumerate(anchors):
        namespace[f"_A{i}"] = anchor
    exec(compile(source, "<repro.sim.fastexec>", "exec"), namespace)
    unit = _Unit(namespace[f"_f{binary.entry}"], anchors, source, traced)
    if isinstance(EXEC_DEBUG, dict):
        EXEC_DEBUG.setdefault("units", []).append(
            {
                "traced": traced,
                "memo": memo_on,
                "functions": len(binary.functions),
                "anchors": len(anchors),
                "source_lines": len(lines),
            }
        )
    return unit


_UNIT_CACHE: dict = {}


def _weak_get(cache, obj, build):
    key = id(obj)
    entry = cache.get(key)
    if entry is not None:
        ref, value = entry
        if ref() is obj:
            return value
    value = build(obj)

    def _drop(_ref, cache=cache, key=key):
        cache.pop(key, None)

    cache[key] = (weakref.ref(obj, _drop), value)
    return value


def _compiled_unit(binary: Binary, collect_trace: bool) -> "_Unit | None":
    """The (weakly cached) compiled unit for *binary*, or None when the
    binary's shape is unsupported (caller falls back to ``python``)."""
    memo_on = bool(collect_trace) and os.environ.get(_MEMO_ENV, "1") != "0"
    variants = _weak_get(_UNIT_CACHE, binary, lambda b: {})
    key = (bool(collect_trace), memo_on)
    if key not in variants:
        try:
            variants[key] = _build_unit(binary, *key)
        except _Unsupported as exc:
            if isinstance(EXEC_DEBUG, dict):
                EXEC_DEBUG.setdefault("fallbacks", []).append(str(exc))
            variants[key] = None
    return variants[key]


def compiled_cache_size() -> int:
    """Number of live binaries with compiled units (for tests)."""
    return len(_UNIT_CACHE)


def _warn_fallback(reason: str) -> None:
    if _requested_exec() != "fast" or reason in _warned_fallback:
        return
    _warned_fallback.add(reason)
    warnings.warn(
        f"REPRO_SIM_EXEC=fast fell back to the python engine: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


class FastSimulator:
    """Block-compiling drop-in for :class:`repro.sim.functional.Simulator`."""

    def __init__(
        self,
        binary: Binary,
        max_instructions: int | None = None,
        stack_words: int | None = None,
    ):
        from repro.sim import functional

        self.binary = binary
        self.max_instructions = (
            functional._DEFAULT_MAX_INSTRUCTIONS
            if max_instructions is None
            else max_instructions
        )
        self.stack_words = (
            functional._STACK_WORDS if stack_words is None else stack_words
        )

    def _python_run(self, collect_trace: bool) -> ExecutionTrace:
        return Simulator(
            self.binary, self.max_instructions, self.stack_words
        )._run_python(collect_trace)

    def run(self, collect_trace: bool = True) -> ExecutionTrace:
        binary = self.binary
        unit = _compiled_unit(binary, collect_trace)
        if unit is None:
            _warn_fallback("unsupported binary shape")
            return self._python_run(collect_trace)
        if binary.functions[binary.entry].frame_size > self.stack_words:
            _warn_fallback("entry frame exceeds the stack")
            return self._python_run(collect_trace)
        memory: list = [0] * (binary.stack_base + self.stack_words)
        base = binary.data_base
        memory[base : base + len(binary.data_image)] = list(binary.data_image)
        block_seq: list[int] = []
        mem_addrs: list[int] = []
        branch_log: list[int] = []
        output: list[str] = []
        if collect_trace:
            ctx = (
                block_seq.append,
                block_seq.extend,
                mem_addrs.append,
                mem_addrs.extend,
                branch_log.append,
                branch_log.extend,
                output.append,
                self.max_instructions,
            )
        else:
            ctx = (output.append, self.max_instructions)
        old_limit = sys.getrecursionlimit()
        if old_limit < _RECURSION_LIMIT:
            sys.setrecursionlimit(_RECURSION_LIMIT)
        try:
            exit_value, instructions = unit.entry(ctx, 0, memory, binary.stack_base)
        except RecursionError:
            _warn_fallback("recursion depth exceeded")
            return self._python_run(collect_trace)
        finally:
            if old_limit < _RECURSION_LIMIT:
                sys.setrecursionlimit(old_limit)
        return ExecutionTrace.from_buffers(
            binary,
            block_seq,
            mem_addrs,
            branch_log,
            output,
            exit_value,
            instructions,
        )
