"""Functional simulator for linked binaries.

Executes machine code with 32-bit integer / double float semantics (shared
with the constant folder via :mod:`repro.ir.ops_eval`) and records an
:class:`repro.sim.trace.ExecutionTrace`:

* the dynamic basic-block id sequence (one append per block),
* every data memory byte address in program order,
* every conditional-branch outcome as ``(uid << 1) | taken``.

All heavier analyses (cache, predictors, timing, SFGL) replay the trace
offline, keeping this inner loop as lean as a Python interpreter can be.
"""

from __future__ import annotations

from repro.ir.ops_eval import BINOPS, UNOPS, to_signed
from repro.isa.machine import AddressMode, Binary
from repro.sim.trace import ExecutionTrace

_STACK_WORDS = 1 << 16
_DEFAULT_MAX_INSTRUCTIONS = 200_000_000


class SimTrap(Exception):
    """Raised on run-time faults (division by zero, bad address, ...)."""


def _format_output(fmt: str, values: list) -> str:
    """C-style printf formatting for the supported conversions."""
    out: list[str] = []
    i = 0
    vi = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        if i + 1 < len(fmt) and fmt[i + 1] == "%":
            out.append("%")
            i += 2
            continue
        j = i + 1
        while j < len(fmt) and (fmt[j].isdigit() or fmt[j] == "."):
            j += 1
        spec = fmt[i + 1 : j]
        conv = fmt[j]
        value = values[vi]
        vi += 1
        if conv == "d":
            out.append(format(to_signed(int(value)), spec or "d"))
        elif conv == "u":
            out.append(format(int(value) & 0xFFFFFFFF, spec or "d"))
        elif conv == "x":
            out.append(format(int(value) & 0xFFFFFFFF, (spec or "") + "x"))
        elif conv == "c":
            out.append(chr(int(value) & 0xFF))
        elif conv == "f":
            precision = spec.split(".")[1] if "." in spec else "6"
            out.append(f"{float(value):.{precision}f}")
        else:  # pragma: no cover - semantics rejects other conversions
            raise SimTrap(f"unsupported conversion %{conv}")
        i = j + 1
    return "".join(out)


class Simulator:
    """Interprets a linked binary."""

    def __init__(
        self,
        binary: Binary,
        max_instructions: int = _DEFAULT_MAX_INSTRUCTIONS,
        stack_words: int = _STACK_WORDS,
    ):
        self.binary = binary
        self.max_instructions = max_instructions
        self.stack_words = stack_words

    def run(self, collect_trace: bool = True) -> ExecutionTrace:
        """Execute from ``main`` to completion; returns the trace.

        With ``collect_trace=False`` the block/memory/branch logs stay
        empty (fast correctness-only runs).

        The actual engine is selected via ``REPRO_SIM_EXEC``
        (``python|fast|auto``, mirroring ``REPRO_SIM_KERNEL``): ``fast``
        routes through :mod:`repro.sim.fastexec`, the block-compiling
        engine, which produces a byte-identical trace several times
        faster; ``python`` pins this reference interpreter.
        """
        from repro.sim import fastexec

        if fastexec.select_exec() == "fast":
            return fastexec.FastSimulator(
                self.binary, self.max_instructions, self.stack_words
            ).run(collect_trace)
        return self._run_python(collect_trace)

    def _run_python(self, collect_trace: bool = True) -> ExecutionTrace:
        """The reference per-instruction interpreter (engine ``python``)."""
        binary = self.binary
        memory: list = [0] * (binary.stack_base + self.stack_words)
        base = binary.data_base
        memory[base : base + len(binary.data_image)] = list(binary.data_image)
        memory_len = len(memory)

        block_seq: list[int] = []
        mem_addrs: list[int] = []
        branch_log: list[int] = []
        output: list[str] = []
        trace_blocks = block_seq.append if collect_trace else None
        trace_mem = mem_addrs.append if collect_trace else None
        trace_branch = branch_log.append if collect_trace else None

        binops = BINOPS
        unops = UNOPS

        func = binary.functions[binary.entry]
        iregs: list = [0] * func.num_int_regs
        fregs: list = [0.0] * func.num_float_regs
        fp = binary.stack_base
        sp = fp + func.frame_size
        # Call stack entries: (func, block_idx_to_resume, iregs, fregs, fp,
        #                      dst_reg, dst_kind)
        call_stack: list[tuple] = []
        arg_stage: list = []
        block_idx = 0
        instructions = 0
        budget = self.max_instructions
        exit_value = 0

        while True:
            block = func.blocks[block_idx]
            if trace_blocks is not None:
                trace_blocks(block.gbid)
            instrs = block.instrs
            instructions += len(instrs)
            if instructions > budget:
                raise SimTrap(f"instruction budget exceeded ({budget})")
            next_block = block.fall_through
            for ins in instrs:
                op = ins.op
                if op == "ld" or op == "fld":
                    mode, abase, idx, off = ins.addr
                    if mode == 1:
                        ea = fp + abase + off
                    elif mode == 0:
                        ea = abase + off
                    else:
                        ea = iregs[abase] + off
                    if idx is not None:
                        ea += iregs[idx]
                    if ea >= memory_len or ea < 0:
                        raise SimTrap(f"load out of range: word {ea}")
                    if trace_mem is not None:
                        trace_mem(ea << 2)
                    if op == "ld":
                        iregs[ins.dst] = memory[ea]
                    else:
                        fregs[ins.dst] = memory[ea]
                elif op == "st" or op == "fst":
                    mode, abase, idx, off = ins.addr
                    if mode == 1:
                        ea = fp + abase + off
                    elif mode == 0:
                        ea = abase + off
                    else:
                        ea = iregs[abase] + off
                    if idx is not None:
                        ea += iregs[idx]
                    if ea >= memory_len or ea < 0:
                        raise SimTrap(f"store out of range: word {ea}")
                    if trace_mem is not None:
                        trace_mem(ea << 2)
                    if ins.a is not None:
                        memory[ea] = iregs[ins.a] if op == "st" else fregs[ins.a]
                    else:
                        memory[ea] = ins.b_imm
                elif op == "li":
                    iregs[ins.dst] = ins.b_imm
                elif op == "lif":
                    fregs[ins.dst] = ins.b_imm
                elif op == "mov":
                    iregs[ins.dst] = iregs[ins.a]
                elif op == "fmov":
                    fregs[ins.dst] = fregs[ins.a]
                elif op == "bt" or op == "bf":
                    cond = iregs[ins.a]
                    jump = bool(cond) if op == "bt" else not cond
                    if trace_branch is not None:
                        trace_branch((ins.uid << 1) | jump)
                    if jump:
                        next_block = ins.target
                    break  # terminator
                elif op == "jmp":
                    next_block = ins.target
                    break
                elif op == "lea":
                    mode, abase, idx, off = ins.addr
                    if mode == 1:
                        ea = fp + abase + off
                    elif mode == 0:
                        ea = abase + off
                    else:  # pragma: no cover - lea of REG base unused
                        ea = iregs[abase] + off
                    if idx is not None:
                        ea += iregs[idx]
                    iregs[ins.dst] = ea
                elif op == "arg":
                    arg_stage.append(iregs[ins.a] if ins.a is not None else ins.b_imm)
                elif op == "farg":
                    arg_stage.append(fregs[ins.a] if ins.a is not None else ins.b_imm)
                elif op == "call":
                    callee = binary.functions[ins.target]
                    call_stack.append(
                        (func, next_block, iregs, fregs, fp, ins.dst, ins.b_imm)
                    )
                    new_iregs = [0] * callee.num_int_regs
                    new_fregs = [0.0] * callee.num_float_regs
                    new_fp = sp
                    sp = new_fp + callee.frame_size
                    if sp >= memory_len:
                        extension = max(sp - memory_len + 1, 1 << 14)
                        memory.extend([0] * extension)
                        memory_len = len(memory)
                    for value, (kind, where, index) in zip(
                        arg_stage, callee.param_locs
                    ):
                        if where == "r":
                            if kind == "f":
                                new_fregs[index] = value
                            else:
                                new_iregs[index] = value
                        else:  # spilled parameter: straight to the frame
                            memory[new_fp + index] = value
                    arg_stage.clear()
                    func = callee
                    iregs = new_iregs
                    fregs = new_fregs
                    fp = new_fp
                    next_block = 0
                    break
                elif op == "ret":
                    if ins.a is not None:
                        value = iregs[ins.a]
                    elif ins.b_reg is not None:
                        value = fregs[ins.b_reg]
                    else:
                        value = ins.b_imm if ins.b_imm is not None else 0
                    if not call_stack:
                        exit_value = value
                        return ExecutionTrace.from_buffers(
                            binary,
                            block_seq,
                            mem_addrs,
                            branch_log,
                            output,
                            exit_value,
                            instructions,
                        )
                    sp = fp
                    func, resume_block, iregs, fregs, fp, dst, dst_kind = call_stack.pop()
                    if dst is not None:
                        if dst_kind == "f":
                            fregs[dst] = value
                        else:
                            iregs[dst] = value
                    next_block = resume_block
                    break
                elif op == "print":
                    # Arguments were staged by preceding arg/farg ops.
                    output.append(_format_output(ins.fmt, arg_stage))
                    arg_stage.clear()
                else:
                    # Generic ALU path (including fused memory operands).
                    a = ins.a
                    handler = binops.get(op)
                    if handler is not None:
                        if ins.addr is not None:
                            mode, abase, idx, off = ins.addr
                            if mode == 1:
                                ea = fp + abase + off
                            elif mode == 0:
                                ea = abase + off
                            else:
                                ea = iregs[abase] + off
                            if idx is not None:
                                ea += iregs[idx]
                            if ea >= memory_len or ea < 0:
                                raise SimTrap(f"load out of range: word {ea}")
                            if trace_mem is not None:
                                trace_mem(ea << 2)
                            b = memory[ea]
                        elif ins.b_reg is not None:
                            b = (
                                fregs[ins.b_reg]
                                if op[0] == "f" and op not in ("floor",)
                                else iregs[ins.b_reg]
                            )
                        else:
                            b = ins.b_imm
                        if op[0] == "f":
                            lhs = fregs[a]
                            try:
                                result = handler(lhs, b)
                            except ZeroDivisionError as exc:
                                raise SimTrap("float division by zero") from exc
                            if "cmp" in op:
                                iregs[ins.dst] = result
                            else:
                                fregs[ins.dst] = result
                        else:
                            lhs = iregs[a]
                            try:
                                result = handler(lhs, b)
                            except ZeroDivisionError as exc:
                                raise SimTrap("integer division by zero") from exc
                            iregs[ins.dst] = result
                    else:
                        uhandler = unops.get(op)
                        if uhandler is None:
                            raise SimTrap(f"unknown opcode {op!r}")
                        if op in ("itof", "utof"):
                            fregs[ins.dst] = uhandler(iregs[a])
                        elif op == "ftoi":
                            iregs[ins.dst] = uhandler(fregs[a])
                        elif op in ("fneg", "sqrt", "sin", "cos", "log", "exp",
                                    "fabs", "floor"):
                            try:
                                value = uhandler(fregs[a])
                            except ValueError as exc:
                                raise SimTrap(f"math domain error in {op}") from exc
                            if op == "floor":
                                fregs[ins.dst] = float(value)
                            else:
                                fregs[ins.dst] = value
                        else:
                            iregs[ins.dst] = uhandler(iregs[a])
            else:
                # No terminator fired: fall through.
                pass
            if next_block is None:
                raise SimTrap(f"fell off the end of {func.name}")
            block_idx = next_block


def run_binary(binary: Binary, collect_trace: bool = True, **kwargs) -> ExecutionTrace:
    """Convenience wrapper: simulate *binary* and return its trace."""
    return Simulator(binary, **kwargs).run(collect_trace=collect_trace)
