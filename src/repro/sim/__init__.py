"""Simulation substrate: functional execution, traces, caches, branch
predictors, timing models and machine configurations.

The functional simulator stands in for real hardware + Pin; it executes a
linked :class:`repro.isa.machine.Binary` and records an
:class:`ExecutionTrace` (dynamic block sequence + data addresses + branch
outcomes).  Everything downstream is trace-driven:

* :mod:`repro.sim.cache` — set-associative LRU caches, multi-size sweeps
  (Figs. 7, 8, 10);
* :mod:`repro.sim.branch` — bimodal / gshare / hybrid predictors (Fig. 9);
* :mod:`repro.sim.timing_common` — the shared replay core: decoded
  binaries (weakly cached, one decode per live binary),
  ``TimingConfig``/``TimingResult``, and the ``TimingModel`` base the
  cycle models ride;
* :mod:`repro.sim.ooo` — 2-wide out-of-order scoreboard model (Fig. 10);
* :mod:`repro.sim.inorder` — in-order/EPIC model (Itanium in Fig. 11);
* :mod:`repro.sim.machines` — the five Table III machines, built from
  parametric ``MachineSpec``s (``spec.fingerprint()`` is the engine's
  replay content-address);
* :mod:`repro.sim.kernels` — batched numpy replay kernels behind
  ``TimingModel.simulate`` (``REPRO_SIM_KERNEL=python|numpy|auto``),
  byte-identical to the python models but 10-20x faster on long traces;
* :mod:`repro.sim.fastexec` — the block-compiling execution engine behind
  ``run_binary``/``Simulator`` (``REPRO_SIM_EXEC=python|fast|auto``),
  byte-identical traces several times faster than the reference
  interpreter.
"""

from repro.sim.functional import SimTrap, Simulator, run_binary
from repro.sim.trace import ExecutionTrace, InstructionMix
from repro.sim.cache import Cache, CacheConfig, simulate_cache, sweep_cache_sizes
from repro.sim.branch import (
    BimodalPredictor,
    GsharePredictor,
    HybridPredictor,
    simulate_predictor,
)
from repro.sim.ooo import OutOfOrderModel
from repro.sim.timing_common import (
    DecodedBinary,
    TimingConfig,
    TimingModel,
    TimingResult,
    decode_binary,
)
from repro.sim.inorder import InOrderModel
from repro.sim.machines import MACHINES, Machine, estimate_runtime
from repro.sim.kernels import HAVE_NUMPY, KERNEL_CHOICES, select_kernel
from repro.sim.fastexec import EXEC_CHOICES, FastSimulator, select_exec

__all__ = [
    "EXEC_CHOICES",
    "FastSimulator",
    "HAVE_NUMPY",
    "KERNEL_CHOICES",
    "select_exec",
    "select_kernel",
    "BimodalPredictor",
    "Cache",
    "CacheConfig",
    "DecodedBinary",
    "ExecutionTrace",
    "GsharePredictor",
    "HybridPredictor",
    "InOrderModel",
    "InstructionMix",
    "MACHINES",
    "Machine",
    "OutOfOrderModel",
    "SimTrap",
    "Simulator",
    "TimingConfig",
    "TimingModel",
    "TimingResult",
    "decode_binary",
    "estimate_runtime",
    "run_binary",
    "simulate_cache",
    "simulate_predictor",
    "sweep_cache_sizes",
]
