"""Machines: parametric construction plus the paper's Table III quintet.

A :class:`MachineSpec` is an axis-value description of a hardware
platform — ISA, clock, issue width, ROB size, L1/L2 geometry, memory and
branch parameters — that lowers to a concrete :class:`Machine` via
:meth:`MachineSpec.build`.  The explorer (:mod:`repro.explore`) sweeps
spaces of these axis values; the five fixed machines of the paper's
Table III are themselves built from :data:`TABLE_III_SPECS`, so the
parametric path and the paper's constants can never drift apart.

The Table III parameters are first-order public-spec values (issue
width, ROB size, cache sizes, pipeline depth via the mispredict penalty);
Fig. 11 only reads *normalized* execution times, so relative magnitudes
are what matters:

==============  =======  ======  =====  ====  =======  =========
machine         ISA      clock   width  ROB   L1 D     L2
==============  =======  ======  =====  ====  =======  =========
Pentium 4 3GHz  x86      3.0GHz  2      126   8 KB     1 MB
Core 2          x86_64   2.2GHz  3      96    32 KB    2 MB
Pentium 4 2.8   x86      2.8GHz  2      126   8 KB     1 MB
Itanium 2       ia64     0.9GHz  4      --    16 KB    256 KB (in-order)
Core i7         x86_64   2.67GHz 4      128   32 KB    8 MB
==============  =======  ======  =====  ====  =======  =========
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from repro.isa.targets import ISA, ISA_BY_NAME
from repro.sim.cache import CacheConfig
from repro.sim.inorder import InOrderModel
from repro.sim.ooo import OutOfOrderModel
from repro.sim.timing_common import TimingConfig, TimingResult
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class Machine:
    """One hardware platform: ISA + clock + core model."""

    name: str
    isa: ISA
    frequency_ghz: float
    in_order: bool
    timing: TimingConfig = field(hash=False)
    #: The parametric spec this machine was built from, when it came
    #: through :meth:`MachineSpec.build` — what lets the engine address
    #: replays on this machine by content (``spec.fingerprint()``).
    spec: "MachineSpec | None" = field(default=None, hash=False,
                                       compare=False)

    def model(self):
        if self.in_order:
            return InOrderModel(self.timing)
        return OutOfOrderModel(self.timing)

    def simulate(self, trace: ExecutionTrace) -> TimingResult:
        return self.model().simulate(trace)

    def runtime_seconds(self, trace: ExecutionTrace) -> float:
        result = self.simulate(trace)
        return result.cycles / (self.frequency_ghz * 1e9)


@dataclass(frozen=True)
class MachineSpec:
    """Axis-value description of a machine — the unit the explorer sweeps.

    Every field except ``name`` is a sweepable axis.  Cache geometry is
    expressed as capacity only; lines stay 32 B and associativity 4-way
    (L1) / 8-way (L2), matching every Table III configuration.
    """

    name: str
    isa: str = "x86"
    frequency_ghz: float = 2.0
    width: int = 2
    rob: int = 64
    l1_kb: int = 32
    l2_kb: int = 1024
    l1_hit_cycles: int = 3
    l2_hit_cycles: int = 14
    memory_cycles: int = 120
    mispredict_penalty: int = 12
    predictor_entries: int = 4096
    in_order: bool = False

    def build(self) -> Machine:
        if self.isa not in ISA_BY_NAME:
            raise KeyError(
                f"unknown ISA {self.isa!r} "
                f"(available: {', '.join(sorted(ISA_BY_NAME))})"
            )
        timing = TimingConfig(
            width=self.width,
            rob_size=self.rob,
            l1=CacheConfig(self.l1_kb * 1024, 32, 4),
            l2=CacheConfig(self.l2_kb * 1024, 32, 8),
            l1_hit_cycles=self.l1_hit_cycles,
            l2_hit_cycles=self.l2_hit_cycles,
            memory_cycles=self.memory_cycles,
            mispredict_penalty=self.mispredict_penalty,
            predictor_entries=self.predictor_entries,
        )
        return Machine(
            name=self.name,
            isa=ISA_BY_NAME[self.isa],
            frequency_ghz=self.frequency_ghz,
            in_order=self.in_order,
            timing=timing,
            spec=self,
        )

    def axes(self) -> dict:
        """The spec as a plain axis→value dict (everything but the name)."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "name"
        }

    def fingerprint(self) -> str:
        """Canonical content digest of the cycle-model axes.

        This is what makes a timing replay content-addressable *before*
        execution (see ``repro.engine.tasks.STAGE_REPLAY``): equal axes
        always digest equally, names never matter, and field order is
        canonicalized.  ``frequency_ghz`` is deliberately excluded — the
        clock scales cycles to seconds *outside* the cycle model, so two
        specs differing only in clock share one replay artifact.
        """
        axes = self.axes()
        axes.pop("frequency_ghz")
        payload = json.dumps(axes, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def spec_from_axes(name: str | None = None, **axes) -> MachineSpec:
    """Build a :class:`MachineSpec` from axis values; unset axes default.

    Unknown axis names raise ``TypeError`` so sweep definitions fail
    loudly instead of silently ignoring a misspelled parameter.
    """
    spec = MachineSpec(name="", **axes)
    if name is None:
        name = (f"{spec.isa}-w{spec.width}-rob{spec.rob}"
                f"-l1:{spec.l1_kb}k-l2:{spec.l2_kb}k"
                f"@{spec.frequency_ghz}GHz")
    return replace(spec, name=name)


def machine_from_axes(name: str | None = None, **axes) -> Machine:
    """One-shot ``spec_from_axes(...).build()``."""
    return spec_from_axes(name, **axes).build()


# L1 hit latencies (cycles) reflect each design's load-to-use cost: the
# deeply pipelined Pentium 4 pays ~4 cycles, Nehalem ~2 effective, the
# 900 MHz Itanium 2 one.
TABLE_III_SPECS: tuple[MachineSpec, ...] = (
    MachineSpec(
        name="Pentium 4, 3GHz", isa="x86", frequency_ghz=3.0,
        width=2, rob=126, l1_kb=8, l2_kb=1024, l1_hit_cycles=4,
        memory_cycles=200, mispredict_penalty=20,
    ),
    MachineSpec(
        name="Core 2", isa="x86_64", frequency_ghz=2.2,
        width=3, rob=96, l1_kb=32, l2_kb=2048, l1_hit_cycles=3,
        memory_cycles=130, mispredict_penalty=12,
    ),
    MachineSpec(
        name="Pentium 4, 2.8GHz", isa="x86", frequency_ghz=2.8,
        width=2, rob=126, l1_kb=8, l2_kb=1024, l1_hit_cycles=4,
        memory_cycles=190, mispredict_penalty=20,
    ),
    MachineSpec(
        name="Itanium 2", isa="ia64", frequency_ghz=0.9,
        width=4, rob=48, l1_kb=16, l2_kb=256, l1_hit_cycles=1,
        memory_cycles=100, mispredict_penalty=6, in_order=True,
    ),
    MachineSpec(
        name="Core i7", isa="x86_64", frequency_ghz=2.67,
        width=4, rob=128, l1_kb=32, l2_kb=8192, l1_hit_cycles=2,
        memory_cycles=110, mispredict_penalty=14,
    ),
)

SPEC_BY_NAME: dict[str, MachineSpec] = {
    spec.name: spec for spec in TABLE_III_SPECS
}

PENTIUM4_3GHZ = TABLE_III_SPECS[0].build()
CORE2 = TABLE_III_SPECS[1].build()
PENTIUM4_28GHZ = TABLE_III_SPECS[2].build()
ITANIUM2 = TABLE_III_SPECS[3].build()
COREI7 = TABLE_III_SPECS[4].build()

MACHINES: tuple[Machine, ...] = (
    PENTIUM4_3GHZ,
    CORE2,
    PENTIUM4_28GHZ,
    ITANIUM2,
    COREI7,
)


def estimate_runtime(trace: ExecutionTrace, machine: Machine) -> float:
    """Wall-clock seconds for *trace* on *machine*."""
    return machine.runtime_seconds(trace)
