"""The five machines of the paper's Table III.

Each machine couples an ISA, a clock frequency, and a timing-model
configuration.  The parameters are first-order public-spec values (issue
width, ROB size, cache sizes, pipeline depth via the mispredict penalty);
Fig. 11 only reads *normalized* execution times, so relative magnitudes
are what matters:

==============  =======  ======  =====  ====  =======  =========
machine         ISA      clock   width  ROB   L1 D     L2
==============  =======  ======  =====  ====  =======  =========
Pentium 4 3GHz  x86      3.0GHz  2      126   8 KB     1 MB
Core 2          x86_64   2.2GHz  3      96    32 KB    2 MB
Pentium 4 2.8   x86      2.8GHz  2      126   8 KB     1 MB
Itanium 2       ia64     0.9GHz  4      --    16 KB    256 KB (in-order)
Core i7         x86_64   2.67GHz 4      128   32 KB    8 MB
==============  =======  ======  =====  ====  =======  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.targets import IA64, ISA, X86, X86_64
from repro.sim.cache import CacheConfig
from repro.sim.inorder import InOrderModel
from repro.sim.ooo import OutOfOrderModel, TimingConfig, TimingResult
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class Machine:
    """One hardware platform: ISA + clock + core model."""

    name: str
    isa: ISA
    frequency_ghz: float
    in_order: bool
    timing: TimingConfig = field(hash=False)

    def model(self):
        if self.in_order:
            return InOrderModel(self.timing)
        return OutOfOrderModel(self.timing)

    def simulate(self, trace: ExecutionTrace) -> TimingResult:
        return self.model().simulate(trace)

    def runtime_seconds(self, trace: ExecutionTrace) -> float:
        result = self.simulate(trace)
        return result.cycles / (self.frequency_ghz * 1e9)


def _config(
    width: int,
    rob: int,
    l1_kb: int,
    l2_kb: int,
    penalty: int,
    memory_cycles: int,
    l1_hit: int,
) -> TimingConfig:
    return TimingConfig(
        width=width,
        rob_size=rob,
        l1=CacheConfig(l1_kb * 1024, 32, 4),
        l2=CacheConfig(l2_kb * 1024, 32, 8),
        mispredict_penalty=penalty,
        memory_cycles=memory_cycles,
        l1_hit_cycles=l1_hit,
    )


# L1 hit latencies (cycles) reflect each design's load-to-use cost: the
# deeply pipelined Pentium 4 pays ~4 cycles, Nehalem ~2 effective, the
# 900 MHz Itanium 2 one.
PENTIUM4_3GHZ = Machine(
    name="Pentium 4, 3GHz",
    isa=X86,
    frequency_ghz=3.0,
    in_order=False,
    timing=_config(width=2, rob=126, l1_kb=8, l2_kb=1024, penalty=20,
                   memory_cycles=200, l1_hit=4),
)

CORE2 = Machine(
    name="Core 2",
    isa=X86_64,
    frequency_ghz=2.2,
    in_order=False,
    timing=_config(width=3, rob=96, l1_kb=32, l2_kb=2048, penalty=12,
                   memory_cycles=130, l1_hit=3),
)

PENTIUM4_28GHZ = Machine(
    name="Pentium 4, 2.8GHz",
    isa=X86,
    frequency_ghz=2.8,
    in_order=False,
    timing=_config(width=2, rob=126, l1_kb=8, l2_kb=1024, penalty=20,
                   memory_cycles=190, l1_hit=4),
)

ITANIUM2 = Machine(
    name="Itanium 2",
    isa=IA64,
    frequency_ghz=0.9,
    in_order=True,
    timing=_config(width=4, rob=48, l1_kb=16, l2_kb=256, penalty=6,
                   memory_cycles=100, l1_hit=1),
)

COREI7 = Machine(
    name="Core i7",
    isa=X86_64,
    frequency_ghz=2.67,
    in_order=False,
    timing=_config(width=4, rob=128, l1_kb=32, l2_kb=8192, penalty=14,
                   memory_cycles=110, l1_hit=2),
)

MACHINES: tuple[Machine, ...] = (
    PENTIUM4_3GHZ,
    CORE2,
    PENTIUM4_28GHZ,
    ITANIUM2,
    COREI7,
)


def estimate_runtime(trace: ExecutionTrace, machine: Machine) -> float:
    """Wall-clock seconds for *trace* on *machine*."""
    return machine.runtime_seconds(trace)
