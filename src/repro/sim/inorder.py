"""In-order (EPIC/Itanium-style) timing model.

Same latency/cache/predictor machinery as the out-of-order model —
both ride the shared replay core in :mod:`repro.sim.timing_common` —
but issue is strictly in order: an instruction whose operands are not
ready stalls every later instruction.  This is what makes code quality
matter — -O0's load-use chains serialize, while -O2's register-resident
values issue back to back — reproducing the paper's observation that the
Itanium 2 gains ~25% from -O2/-O3 where the out-of-order x86 parts do not
(Fig. 11).
"""

from __future__ import annotations

from repro.sim.timing_common import (
    DecodedBinary,
    TimingConfig,  # noqa: F401 - re-exported API
    TimingModel,
    TimingResult,
)
from repro.sim.trace import ExecutionTrace


class InOrderModel(TimingModel):
    """Strictly in-order pipeline with operand scoreboarding."""

    kernel_kind = "inorder"

    def replay(self, trace: ExecutionTrace,
               decoded: DecodedBinary) -> TimingResult:
        config = self.config
        l1, l2, predictor = self._session()
        latencies = config.latencies
        width = config.width
        l1_hit_cycles = config.l1_hit_cycles
        l2_hit_cycles = config.l2_hit_cycles
        memory_cycles = config.memory_cycles
        penalty = config.mispredict_penalty

        ready: dict[int, int] = {}
        cycle = 0
        slots = 0
        max_completion = 0
        branch_hits = 0
        branch_misses = 0
        instructions = 0
        mem_port_free = 0
        fp_port_free = 0
        muldiv_port_free = 0
        # Store-to-load forwarding: word address -> data-ready cycle.
        store_ready: dict[int, int] = {}

        mem_addrs = trace.mem_addrs
        mem_idx = 0
        branch_log = trace.branch_log
        branch_idx = 0

        for gbid in trace.block_seq:
            for op in decoded[gbid]:
                instructions += 1
                klass = op.klass
                if slots >= width:
                    cycle += 1
                    slots = 0
                # In-order: stall the issue point until operands are ready.
                issue = cycle
                for src in op.srcs:
                    when = ready.get(src, 0)
                    if when > issue:
                        issue = when
                if op.is_mem and mem_port_free > issue:
                    issue = mem_port_free
                elif klass in ("falu", "fmul", "fdiv", "fmath") and fp_port_free > issue:
                    issue = fp_port_free
                elif klass in ("imul", "idiv") and muldiv_port_free > issue:
                    issue = muldiv_port_free
                if issue > cycle:
                    cycle = issue  # the whole pipeline waits
                    slots = 0
                slots += 1
                if op.is_mem:
                    addr = mem_addrs[mem_idx]
                    mem_idx += 1
                    if not op.is_store:
                        forwarded = store_ready.get(addr)
                        if forwarded is not None and forwarded > cycle:
                            cycle = forwarded
                            slots = 0
                    mem_port_free = cycle + 1
                    if l1.access(addr):
                        mem_latency = l1_hit_cycles
                    elif l2 is not None and l2.access(addr):
                        mem_latency = l2_hit_cycles
                    else:
                        mem_latency = memory_cycles
                    l1.record_latency(mem_latency)
                    if op.is_store:
                        latency = 1
                        store_ready[addr] = cycle + 1
                    elif klass == "load":
                        latency = mem_latency
                    else:
                        latency = mem_latency + latencies.get(klass, 1)
                else:
                    latency = latencies.get(klass, 1)
                    if klass in ("falu", "fmul", "fdiv", "fmath"):
                        fp_port_free = cycle + (
                            latency if klass in ("fdiv", "fmath") else 1
                        )
                    elif klass in ("imul", "idiv"):
                        muldiv_port_free = cycle + (latency if klass == "idiv" else 1)
                completion = cycle + latency
                if completion > max_completion:
                    max_completion = completion
                if op.dst >= 0:
                    ready[op.dst] = completion
                if op.is_cond_branch:
                    packed = branch_log[branch_idx]
                    branch_idx += 1
                    pc = packed >> 1
                    taken = bool(packed & 1)
                    if predictor.predict(pc) == taken:
                        branch_hits += 1
                    else:
                        branch_misses += 1
                        cycle = completion + penalty
                        slots = 0
                    predictor.update(pc, taken)
                elif op.is_call_or_ret:
                    ready.clear()
        total_cycles = max(cycle, max_completion)
        return self._result(total_cycles, instructions, l1,
                            branch_hits, branch_misses, predictor)
