"""Set-associative LRU data-cache simulation.

Used in three places, mirroring the paper's setup:

* during profiling, to classify every static memory instruction into Table I
  hit/miss classes (done in :mod:`repro.profiling.memory_profile`);
* for Figs. 7/8's hit-rate-vs-size sweeps (``sweep_cache_sizes`` replays
  one recorded address stream against many configurations in one pass,
  like Hill & Smith's single-pass evaluation the paper cites);
* inside the timing models (per-access ``access()`` calls).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import ExpHistogram


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 4

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.associativity)
        return max(1, sets)

    def describe(self) -> str:
        kib = self.size_bytes / 1024
        return f"{kib:g}KB/{self.line_bytes}B/{self.associativity}-way"


class Cache:
    """One LRU set-associative cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.line_shift = config.line_bytes.bit_length() - 1
        self.assoc = config.associativity
        # Per-set dict tag -> None; insertion order is LRU order.
        self.sets: list[dict] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        #: Distribution of resolved access latencies (cycles), fed by
        #: the timing models via :meth:`record_latency`.  Scalar
        #: hit/miss rates can agree while the latency *shape* differs
        #: (e.g. all misses clustered vs. spread); fidelity scoring
        #: compares these histograms between clone and original.
        self.latency_hist = ExpHistogram()

    def access(self, byte_addr: int) -> bool:
        """Access one address; returns True on hit."""
        line = byte_addr >> self.line_shift
        index = line % self.num_sets
        ways = self.sets[index]
        if line in ways:
            del ways[line]  # refresh LRU position
            ways[line] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.assoc:
            ways.pop(next(iter(ways)))
        ways[line] = None
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 1.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate

    def record_latency(self, cycles: int) -> None:
        """Record one access's resolved latency (hit, L2, or memory)."""
        self.latency_hist.add(cycles)

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.latency_hist = ExpHistogram()
        for ways in self.sets:
            ways.clear()


def simulate_cache(addresses, config: CacheConfig) -> Cache:
    """Replay *addresses* (byte granularity) through a fresh cache."""
    cache = Cache(config)
    access = cache.access
    for addr in addresses:
        access(addr)
    return cache


def sweep_cache_sizes(
    addresses,
    sizes_bytes,
    line_bytes: int = 32,
    associativity: int = 4,
) -> dict[int, float]:
    """Hit rate per cache size for one recorded address stream.

    All configurations are evaluated in a single pass over the stream,
    with the per-config geometry (line shift, set count, LRU state)
    hoisted out of the access loop: every config shares one line-number
    computation per address instead of re-deriving shift and set masks
    inside ``Cache.access`` for each of them.  Results are pinned
    against per-config :class:`Cache` replays by the regression suite.
    """
    configs = [
        CacheConfig(size, line_bytes, associativity) for size in sizes_bytes
    ]
    shift = line_bytes.bit_length() - 1
    assoc = associativity
    states = list(enumerate(
        (config.num_sets, [dict() for _ in range(config.num_sets)])
        for config in configs))
    hits = [0] * len(configs)
    misses = [0] * len(configs)
    for addr in addresses:
        line = addr >> shift
        for i, (num_sets, sets) in states:
            ways = sets[line % num_sets]
            if line in ways:
                del ways[line]  # refresh LRU position
                ways[line] = None
                hits[i] += 1
            else:
                misses[i] += 1
                if len(ways) >= assoc:
                    ways.pop(next(iter(ways)))
                ways[line] = None
    results = {}
    for config, hit, miss in zip(configs, hits, misses):
        total = hit + miss
        results[config.size_bytes] = hit / total if total else 1.0
    return results
