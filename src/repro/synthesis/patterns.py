"""Pattern-based C statement generation (§III-B.4, Table II).

Each profiled basic block is translated into a sequence of C statements
whose -O0 compilation reproduces the block's instruction budget.  The
statement shapes are exactly Table II's patterns:

====================================  ===========================================
pattern                               C statement
====================================  ===========================================
store                                 ``mem[i] = cst;``
load-store                            ``mem[i] = mem[j];``
load-arith-store                      ``mem[i] = mem[j] op cst;``
load-load-arith-store                 ``mem[i] = mem[j] op mem[k];``
load-load-arith-load-...-store        ``mem[i] = mem[j] op mem[k] op mem[l];``
load-cmp-br                           ``if (mem[i] > cst)`` (see branches.py)
====================================  ===========================================

"mem" operands come from the block's own profiled accesses: always-hit
accesses (Table I class 0) use the global scalar pool (the paper's
``mStream0[4]`` constant-index form), missing accesses use stride streams
sized to their working sets.

Generation is budget-driven, which *is* the paper's compensation
mechanism ("we keep track of the number of operations and types that have
been translated so far, and we compensate on a later occasion"): the
translator distributes the block's remaining loads/ops over its remaining
stores when sizing each pattern, so the synthetic's dynamic mix converges
to the original's.  Divisions always take constant divisors (a loaded
stream word could be zero), and ``cos`` stands in for the trapping math
builtins.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.sfgl import InstrDescriptor, SFGLBlock
from repro.synthesis.memory import StreamKey, StreamPool

# klass -> accounting category (None = handled by the skeleton, not here).
CATEGORY_OF_KLASS = {
    "load": "load",
    "store": "store",
    "ialu": "ialu",
    "imul": "imul",
    "idiv": "idiv",
    "falu": "falu",
    "fmul": "fmul",
    "fdiv": "fdiv",
    "fmath": "fmath",
    "branch": None,
    "jump": None,
    "call": None,
    "ret": None,
    "print": None,
    "other": None,
}

INT_CATEGORIES = ("ialu", "imul", "idiv")
FLOAT_CATEGORIES = ("falu", "fmul", "fdiv", "fmath")
INT_OPS = ("+", "-", "^", "|", "&")
FLOAT_OPS = ("+", "-")

# Canonical -O0 costs of the emitted statement shapes; validated against
# the real compiler in tests/synthesis/test_patterns.py.
STATEMENT_COSTS = {
    "store-const": Counter(store=1),
    "load-store": Counter(load=1, store=1),
    "load-arith-store": Counter(load=1, ialu=1, store=1),
    "load-load-arith-store": Counter(load=2, ialu=1, store=1),
    "load3-arith-store": Counter(load=3, ialu=2, store=1),
    "walker-advance": Counter(load=1, ialu=2, store=1),
}


def category_counts(descriptors: list[InstrDescriptor]) -> Counter:
    """Per-category instruction budget of one block (both value kinds)."""
    counts: Counter = Counter()
    for desc in descriptors:
        category = CATEGORY_OF_KLASS.get(desc.klass)
        if category is not None:
            counts[category] += 1
    return counts


def split_budgets(descriptors: list[InstrDescriptor]) -> tuple[Counter, Counter]:
    """(integer budget, float budget) for one block.

    Loads/stores are attributed to the kind of the value they move; ALU
    categories are intrinsically typed.
    """
    int_budget: Counter = Counter()
    float_budget: Counter = Counter()
    for desc in descriptors:
        category = CATEGORY_OF_KLASS.get(desc.klass)
        if category is None:
            continue
        if category in ("load", "store"):
            (float_budget if desc.is_float else int_budget)[category] += 1
        elif category in FLOAT_CATEGORIES:
            float_budget[category] += 1
        else:
            int_budget[category] += 1
    return int_budget, float_budget


@dataclass
class PatternStats:
    """Coverage bookkeeping (the paper reports >95% pattern coverage)."""

    target: Counter = field(default_factory=Counter)
    emitted: Counter = field(default_factory=Counter)

    def merge_block(self, target: Counter, emitted: Counter, weight: int = 1) -> None:
        for key, value in target.items():
            self.target[key] += value * weight
        for key, value in emitted.items():
            self.emitted[key] += value * weight

    def coverage(self) -> float:
        """Fraction of targeted instructions covered by emitted ones."""
        total = sum(self.target.values())
        if not total:
            return 1.0
        matched = sum(min(self.target[key], self.emitted[key]) for key in self.target)
        return matched / total


@dataclass
class _MemBinding:
    """Where one profiled memory access goes in the synthetic."""

    kind: str  # 'i' or 'f'
    scalar: str | None = None  # scalar-pool name (class 0)
    stream: StreamKey | None = None
    walker: str | None = None
    offset: int = 0

    def expr(self, pool: StreamPool) -> str:
        if self.scalar is not None:
            return self.scalar
        return pool.access_expr(self.stream, self.walker, self.offset)

    def read_cost(self) -> Counter:
        """-O0 cost of reading this operand.

        A scalar is one load; a stream element reloads its walking index
        (second load) and pays an add when it carries an offset.
        """
        if self.scalar is not None:
            return Counter(load=1)
        cost = Counter(load=2)
        if self.offset:
            cost["ialu"] += 1
        return cost

    def write_cost(self) -> Counter:
        """-O0 cost of storing to this operand (excluding the value)."""
        if self.scalar is not None:
            return Counter(store=1)
        cost = Counter(store=1, load=1)
        if self.offset:
            cost["ialu"] += 1
        return cost


class BlockTranslator:
    """Translates SFGL blocks into C statement lists."""

    MAX_STATEMENTS_PER_BLOCK = 64  # safety net for degenerate profiles

    def __init__(
        self,
        pool: StreamPool,
        memory: MemoryProfile,
        rng: random.Random | None = None,
    ):
        self.pool = pool
        self.memory = memory
        self.rng = rng or random.Random(20100612)
        self.stats = PatternStats()

    # -- memory binding ----------------------------------------------------

    def _bind_memory(self, block: SFGLBlock) -> tuple[list[_MemBinding], list[str], Counter]:
        """Assign every memory access of *block* a target location.

        Returns (bindings in instruction order, walker-advance statements,
        cost of those advances).
        """
        bindings: list[_MemBinding] = []
        advances: dict[str, str] = {}
        offsets: dict[StreamKey, int] = {}
        for desc in block.instrs:
            if not desc.is_memory:
                continue
            kind = "f" if desc.is_float else "i"
            stats = self.memory.stats_for(desc.uid)
            if stats is None or stats.miss_class == 0:
                bindings.append(_MemBinding(kind=kind, scalar=self.pool.scalar(kind)))
                continue
            key = self.pool.stream(stats.miss_class, stats.working_set_bytes(), kind)
            walker = self.pool.walker(block.gbid, key)
            slot = offsets.get(key, 0)
            offsets[key] = slot + 1
            offset = slot * max(1, key.stride_words)
            bindings.append(
                _MemBinding(kind=kind, stream=key, walker=walker, offset=offset)
            )
            if walker not in advances:
                advances[walker] = self.pool.advance_statement(walker, key)
        cost: Counter = Counter()
        for _ in advances:
            cost.update(STATEMENT_COSTS["walker-advance"])
        return bindings, list(advances.values()), cost

    # -- statement emission --------------------------------------------------

    def translate(
        self, block: SFGLBlock, discount: Counter | None = None
    ) -> tuple[list[str], Counter]:
        """Translate one block; returns (statements, emitted-cost counter).

        The trailing control transfer (branch/jump/call/ret) is *not*
        represented here — the skeleton generator materializes it as the
        loop / if / call construct enclosing this block (§III-B.4).
        ``discount`` removes the instructions that construct will itself
        contribute (e.g. the ``for`` condition replacing the loop
        header's compare), so they are not generated twice.
        """
        int_budget, float_budget = split_budgets(block.instrs)
        if discount is not None:
            int_budget.subtract(discount)
        bindings, statements, emitted = self._bind_memory(block)
        statements = list(statements)
        int_budget.subtract(emitted)
        int_bindings = [b for b in bindings if b.kind != "f"]
        float_bindings = [b for b in bindings if b.kind == "f"]
        statements.extend(self._emit_kind(int_budget, int_bindings, emitted, "i"))
        statements.extend(self._emit_kind(float_budget, float_bindings, emitted, "f"))
        target = category_counts(block.instrs)
        self.stats.merge_block(target, emitted, weight=max(1, block.count))
        return statements, emitted

    def _emit_kind(
        self,
        budget: Counter,
        bindings: list[_MemBinding],
        emitted: Counter,
        kind: str,
    ) -> list[str]:
        """Emit statements of one value kind until the budget is spent."""
        alu_keys = FLOAT_CATEGORIES if kind == "f" else INT_CATEGORIES
        statements: list[str] = []
        binding_iter = iter(bindings)

        def next_read() -> tuple[str, Counter]:
            binding = next(binding_iter, None)
            if binding is not None:
                return binding.expr(self.pool), binding.read_cost()
            return self.pool.scalar(kind), Counter(load=1)

        def next_write() -> tuple[str, Counter]:
            binding = next(binding_iter, None)
            if binding is not None:
                return binding.expr(self.pool), binding.write_cost()
            return self.pool.scalar(kind), Counter(store=1)

        def alu_remaining() -> int:
            return sum(max(0, budget[key]) for key in alu_keys)

        while len(statements) < self.MAX_STATEMENTS_PER_BLOCK:
            stores_left = budget["store"]
            loads_left = budget["load"]
            ops_left = alu_remaining()
            if stores_left <= 0 and loads_left <= 1 and ops_left <= 1:
                break
            denominator = max(1, stores_left)
            n_loads = min(3, max(0, -(-max(0, loads_left) // denominator)))
            n_ops = min(
                4,
                max(n_loads - 1 if n_loads > 1 else 0,
                    -(-ops_left // denominator)),
            )
            if n_loads == 0 and n_ops == 0:
                statement, cost = self._store_const(next_write, kind)
            else:
                statement, cost = self._assignment(
                    next_read, next_write, kind, max(1, n_loads), n_ops,
                    budget, alu_keys,
                )
            statements.append(statement)
            emitted.update(cost)
            budget.subtract(cost)
        return statements

    def _store_const(self, next_write, kind: str) -> tuple[str, Counter]:
        target, cost = next_write()
        if kind == "f":
            value = f"{self.rng.uniform(0.5, 9.5):.4f}"
        else:
            value = str(self.rng.randrange(1, 255))
        return f"{target} = {value};", cost

    def _assignment(
        self,
        next_read,
        next_write,
        kind: str,
        n_loads: int,
        n_ops: int,
        budget: Counter,
        alu_keys: tuple[str, ...],
    ) -> tuple[str, Counter]:
        """Build ``dst = src (op operand)*;`` with the requested shape.

        The first operand is always a memory read (keeps the -O0 lowering
        free of extra immediate-materialization instructions).
        """
        rng = self.rng
        expression, cost = next_read()
        loads_used = 1
        ops_emitted = 0
        while ops_emitted < n_ops:
            op_category = self._pick_op_category(budget, cost, alu_keys)
            if op_category == "fmath":
                expression = f"cos({expression})"
                cost["fmath"] += 1
                ops_emitted += 1
                continue
            if kind == "f":
                symbol = {"fmul": "*", "fdiv": "/"}.get(op_category)
                if symbol is None:
                    symbol = rng.choice(FLOAT_OPS)
            else:
                symbol = {"imul": "*", "idiv": "/"}.get(op_category)
                if symbol is None:
                    symbol = rng.choice(INT_OPS)
            cost[op_category] += 1
            if symbol != "/" and loads_used < n_loads:
                operand, operand_cost = next_read()
                cost.update(operand_cost)
                loads_used += 1
            elif kind == "f":
                operand = f"{rng.uniform(1.001, 3.5):.3f}"
            elif symbol == "/":
                operand = str(rng.randrange(2, 9))
            else:
                operand = str(rng.randrange(1, 63))
            # Explicit left association: never lets C precedence pair two
            # constants (which would cost an extra immediate move at -O0).
            expression = f"({expression} {symbol} {operand})"
            ops_emitted += 1
        destination, write_cost = next_write()
        cost.update(write_cost)
        return f"{destination} = {expression};", cost

    def _pick_op_category(
        self, budget: Counter, cost: Counter, alu_keys: tuple[str, ...]
    ) -> str:
        """Prefer whichever op category has the most unmet budget."""
        best = alu_keys[0]
        best_remaining = budget[best] - cost[best]
        for key in alu_keys[1:]:
            remaining = budget[key] - cost[key]
            if remaining > best_remaining:
                best = key
                best_remaining = remaining
        return best
