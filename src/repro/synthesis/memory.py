"""Memory access synthesis: Table I stride streams.

Every profiled memory instruction carries a miss-rate class (Table I) and
a working-set estimate.  Class 0 (always hit) maps to the global scalar
pool — exactly the paper's ``mStream0[4]`` constant-index accesses.
Classes 1..8 map to *stride streams*: global arrays sized to twice the
access's working set, walked by a per-(block, stream) global index that
advances by the class's stride each time the block executes.  With
32-byte lines and 4-byte words, a stride of ``s`` bytes produces a miss
rate of ``s/32`` while the array exceeds the cache — reproducing the
Table I mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.profiling.memory_profile import MISS_CLASS_STRIDES

# Scalar pool sizes (ints and floats) for always-hit accesses.  Kept
# small so that register promotion can cover the pool even on the
# 8-register x86 target, the way the paper's clones (one stream array
# plus a couple of globals, Fig. 3) behave under GCC -O2.
SCALAR_POOL = 6
FLOAT_POOL = 4


@dataclass(frozen=True)
class StreamKey:
    """Identity of one stride stream."""

    miss_class: int  # 1..8
    working_set_bytes: int
    kind: str  # 'i' or 'f'

    @property
    def stride_words(self) -> int:
        return MISS_CLASS_STRIDES[self.miss_class] // 4

    @property
    def array_words(self) -> int:
        # Twice the working set, in words; power of two for cheap masking.
        return max(64, (self.working_set_bytes * 2) // 4)

    @property
    def array_name(self) -> str:
        tag = "f" if self.kind == "f" else "m"
        return f"{tag}S_c{self.miss_class}_w{self.working_set_bytes // 1024}k"


@dataclass
class _Walker:
    """One per-(block, stream) walking index."""

    name: str
    key: StreamKey


@dataclass
class StreamPool:
    """Allocates streams, walkers and scalar-pool names for a benchmark."""

    streams: dict[StreamKey, StreamKey] = field(default_factory=dict)
    walkers: dict[tuple[int, StreamKey], _Walker] = field(default_factory=dict)
    _scalar_rr: int = 0
    _float_rr: int = 0

    # -- scalar pool -------------------------------------------------------

    def scalar(self, kind: str) -> str:
        """Next always-hit scalar variable (round-robin over the pool)."""
        if kind == "f":
            name = f"gF{self._float_rr % FLOAT_POOL}"
            self._float_rr += 1
        else:
            name = f"gS{self._scalar_rr % SCALAR_POOL}"
            self._scalar_rr += 1
        return name

    # -- streams -----------------------------------------------------------

    def stream(self, miss_class: int, working_set_bytes: int, kind: str) -> StreamKey:
        """Get or create the stream for a (class, working set, kind)."""
        key = StreamKey(miss_class, working_set_bytes, kind)
        self.streams.setdefault(key, key)
        return key

    def walker(self, block_id: int, key: StreamKey) -> str:
        """Walking-index global for *key* used from block *block_id*."""
        walker = self.walkers.get((block_id, key))
        if walker is None:
            walker = _Walker(name=f"gw{len(self.walkers)}", key=key)
            self.walkers[(block_id, key)] = walker
        return walker.name

    def advance_statement(self, walker_name: str, key: StreamKey) -> str:
        """C statement advancing a walker by the stream's stride."""
        mask = key.array_words - 1
        return f"{walker_name} = ({walker_name} + {key.stride_words}u) & {mask}u;"

    def access_expr(self, key: StreamKey, walker_name: str, offset: int = 0) -> str:
        """C lvalue/rvalue expression for one stream element."""
        if offset:
            return f"{key.array_name}[{walker_name} + {offset}u]"
        return f"{key.array_name}[{walker_name}]"

    # -- declarations --------------------------------------------------------

    def declarations(self) -> list[str]:
        """Global declarations for every allocated array/walker/scalar."""
        lines: list[str] = []
        for i in range(SCALAR_POOL):
            lines.append(f"int gS{i} = {7 + 3 * i};")
        for i in range(FLOAT_POOL):
            lines.append(f"float gF{i} = {1.5 + 0.25 * i:.2f};")
        for key in sorted(
            self.streams, key=lambda k: (k.kind, k.miss_class, k.working_set_bytes)
        ):
            ctype = "float" if key.kind == "f" else "unsigned"
            lines.append(f"{ctype} {key.array_name}[{key.array_words}];")
        for (_block, key), walker in sorted(
            self.walkers.items(), key=lambda item: item[1].name
        ):
            lines.append(f"unsigned {walker.name} = 0u;")
        return lines
