"""Clone-fidelity validation and representativeness-driven sizing.

The paper picks the reduction factor empirically (a fixed synthetic size)
and lists as future work choosing it "based on how representative the
synthetic workload is relative to the real workload" (§III-D).  This
module implements that extension:

* :func:`validate_clone` scores a clone against its source profile on
  the axes the evaluation section measures — instruction mix, cache hit
  rate at the profiling size, branch-predictor accuracy, and size;
* :func:`synthesize_validated` grows the synthetic size target until the
  fidelity score clears a threshold (or a budget is exhausted), returning
  the smallest clone that is representative enough.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.driver import compile_program
from repro.profiling.profile import StatisticalProfile
from repro.sim.branch import HybridPredictor, simulate_predictor
from repro.sim.cache import CacheConfig, simulate_cache
from repro.sim.functional import run_binary
from repro.sim.trace import ExecutionTrace
from repro.synthesis.synthesizer import SyntheticBenchmark, synthesize

_PROFILE_CACHE = CacheConfig(8 * 1024, 32, 4)


@dataclass
class FidelityReport:
    """How closely a clone's execution matches its source profile."""

    mix_distance: float  # mean |fraction difference| over the 4 categories
    cache_distance: float  # |hit-rate difference| at the profiling size
    branch_distance: float  # |hybrid accuracy difference|
    instructions: int

    @property
    def score(self) -> float:
        """Scalar representativeness in [0, 1]; 1.0 is a perfect match."""
        penalty = (
            2.0 * self.mix_distance
            + 1.5 * self.cache_distance
            + 1.0 * self.branch_distance
        )
        return max(0.0, 1.0 - penalty)

    def acceptable(self, threshold: float = 0.8) -> bool:
        return self.score >= threshold


def _branch_accuracy(branch_log) -> float:
    return simulate_predictor(branch_log, HybridPredictor()).accuracy


def validate_clone(
    profile: StatisticalProfile,
    clone: SyntheticBenchmark,
    isa: str = "x86",
    original_trace: ExecutionTrace | None = None,
) -> FidelityReport:
    """Compile and run *clone* at -O0, scoring it against *profile*.

    ``original_trace`` (if available) supplies the original's branch
    stream; otherwise the original's accuracy is approximated from the
    profile's easy/hard split.
    """
    binary = compile_program(clone.source, isa, 0).binary
    trace = run_binary(binary)
    # Instruction mix distance.
    original_mix = profile.mix.paper_mix()
    clone_mix = trace.instruction_mix().paper_mix()
    mix_distance = sum(
        abs(original_mix[key] - clone_mix[key]) for key in original_mix
    ) / len(original_mix)
    # Cache distance at the profiling size.
    clone_hit = simulate_cache(trace.mem_addrs, _PROFILE_CACHE).hit_rate
    original_hit = profile.memory.hit_rates_by_size.get(
        _PROFILE_CACHE.size_bytes, clone_hit
    )
    cache_distance = abs(clone_hit - original_hit)
    # Branch distance.
    clone_accuracy = _branch_accuracy(trace.branch_log)
    if original_trace is not None:
        original_accuracy = _branch_accuracy(original_trace.branch_log)
    else:
        # Easy branches predict ~99%, hard ones ~75%: first-order guess.
        hard = profile.branches.hard_fraction()
        original_accuracy = 0.99 * (1 - hard) + 0.75 * hard
    branch_distance = abs(clone_accuracy - original_accuracy)
    return FidelityReport(
        mix_distance=mix_distance,
        cache_distance=cache_distance,
        branch_distance=branch_distance,
        instructions=trace.instructions,
    )


def synthesize_validated(
    profile: StatisticalProfile,
    threshold: float = 0.8,
    initial_target: int = 10_000,
    max_target: int = 160_000,
    isa: str = "x86",
    original_trace: ExecutionTrace | None = None,
) -> tuple[SyntheticBenchmark, FidelityReport]:
    """Smallest clone whose fidelity score clears *threshold*.

    Doubles the size target until the report is acceptable or the budget
    runs out; returns the best clone seen either way.  This realizes the
    paper's proposed representativeness-driven reduction-factor choice.
    """
    target = initial_target
    best: tuple[float, SyntheticBenchmark, FidelityReport] | None = None
    while True:
        clone = synthesize(profile, target_instructions=target)
        report = validate_clone(profile, clone, isa, original_trace)
        if best is None or report.score > best[0]:
            best = (report.score, clone, report)
        if report.acceptable(threshold) or target >= max_target:
            break
        target *= 2
    _, clone, report = best
    return clone, report
