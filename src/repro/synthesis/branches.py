"""Branch behaviour synthesis (§III-B.4).

Two branch classes, per the profiled transition rate (§III-A.2):

* **easy** — modelled as always taken / always not-taken: the hot side is
  emitted inline and the cold side sits behind a never-true guard whose
  body prints previously computed results (the paper's defence against
  the compiler optimizing the dead path away — Fig. 3's
  ``if (mStream0[0] == 0x99) { ... printf ... }``);
* **hard** — a periodic test on the innermost loop iterator.  The paper
  uses a modulo; we use the equivalent power-of-two mask (same period and
  taken rate, no spurious divide instructions): a branch with taken rate
  ``p`` and transition rate ``t`` becomes ``(it & (P-1)) < K`` with
  period ``P ~ 2/t`` and ``K ~ p*P``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.profiling.branch_profile import BranchStats

# Never-true sentinel (the paper uses 0x99 == 153).
SINK_SENTINEL = 153
SINK_ARRAY = "mSink"
SINK_WORDS = 64

# -O0 costs of the generated conditions, for the accounting layer.
GUARD_COST = Counter(load=1, ialu=1, branch=1)
HARD_COST = Counter(load=2, ialu=4, branch=1)


def _round_pow2(value: float, low: int = 2, high: int = 64) -> int:
    """Nearest power of two within [low, high]."""
    value = max(low, min(high, value))
    power = 1
    while power * 2 <= value:
        power *= 2
    return power if value / power < (power * 2) / value else power * 2


@dataclass
class BranchShaper:
    """Generates branch conditions and cold-path sinks."""

    sink_emitted: bool = False

    def sink_declarations(self) -> list[str]:
        """Globals backing the sink guard."""
        return [f"unsigned {SINK_ARRAY}[{SINK_WORDS}];"]

    def never_true_guard(self) -> str:
        """A guard condition that always evaluates false at run time."""
        return f"{SINK_ARRAY}[0] == {SINK_SENTINEL}u"

    def always_true_guard(self) -> str:
        """A load-cmp guard that always evaluates true at run time."""
        return f"{SINK_ARRAY}[1] < {SINK_SENTINEL}u"

    def sink_statements(self, iterator: str = "sj") -> list[str]:
        """The never-executed printf body (keeps results observable)."""
        return [
            f"for (int {iterator} = 0; {iterator} < {SINK_WORDS}; {iterator}++) {{",
            f'  printf("%u;", {SINK_ARRAY}[{iterator}]);',
            "}",
        ]

    def hard_condition(self, iterator: str, stats: BranchStats) -> str:
        """Data-like test reproducing taken + transition rates.

        The paper uses a plain modulo on the iterator; a pure periodic
        pattern is perfectly learnable by a history predictor, so we
        scramble the iterator with a shifted xor first (same taken rate,
        same average transition rate, far longer effective period).
        """
        transition = max(0.03, min(1.0, stats.transition_rate))
        period = _round_pow2(2.0 / transition)
        taken_rate = stats.taken_rate
        k = int(round(taken_rate * period))
        k = max(1, min(period - 1, k))
        return (
            f"(((({iterator} >> 2) ^ {iterator}) & {period - 1}u) < {k}u)"
        )

    def probability_condition(self, iterator: str, probability: float) -> str:
        """Mask test firing with roughly *probability* per iteration."""
        probability = max(0.0, min(1.0, probability))
        if probability >= 0.97:
            return self.always_true_guard()
        if probability <= 0.03:
            return self.never_true_guard()
        period = 64
        k = max(1, min(period - 1, int(round(probability * period))))
        return f"(({iterator} & {period - 1}u) < {k}u)"
