"""Prior-work baseline: linear block sequence in one big loop.

The paper contrasts its SFGL approach with earlier benchmark synthesis
(Bell & John, ICS 2005), which "generates a linear sequence of
instructions that is iterated in a big loop until convergence" — no
nested loops, no function calls, no fine-grained control flow.  This
module implements that baseline over the same statement generator, so the
ablation benchmarks can quantify what the SFGL buys (loop structure,
branch behaviour, instruction-count shape).
"""

from __future__ import annotations

import random

from repro.profiling.profile import StatisticalProfile
from repro.synthesis.branches import BranchShaper
from repro.synthesis.memory import StreamPool
from repro.synthesis.patterns import BlockTranslator
from repro.synthesis.synthesizer import SyntheticBenchmark

_HEADER = """\
/* Linear-sequence baseline synthetic (Bell & John style), for ablation. */
"""


class LinearSynthesizer:
    """Flat block sequence, iterated in a single top-level loop."""

    def __init__(
        self,
        profile: StatisticalProfile,
        target_instructions: int = 20_000,
        seed: int = 20100612,
    ):
        self.profile = profile
        self.target_instructions = target_instructions
        self.seed = seed

    def generate(self) -> SyntheticBenchmark:
        profile = self.profile
        rng = random.Random(self.seed)
        pool = StreamPool()
        shaper = BranchShaper()
        translator = BlockTranslator(pool, profile.memory, rng)
        # Representative linear sequence: blocks sorted by execution count,
        # each emitted once, weighted presence approximated by repetition
        # of the hottest blocks (cap the sequence length).
        blocks = sorted(
            profile.sfgl.blocks.values(), key=lambda b: -b.count
        )
        total = sum(b.count * max(1, b.size) for b in blocks) or 1
        body: list[str] = []
        per_iteration = 0
        for block in blocks:
            weight = block.count * max(1, block.size) / total
            copies = max(1, round(weight * 24)) if weight > 0.005 else 0
            if copies == 0:
                continue
            for _ in range(min(copies, 8)):
                statements, cost = translator.translate(block)
                body.extend(statements)
                per_iteration += sum(cost.values())
        per_iteration = max(1, per_iteration)
        iterations = max(1, self.target_instructions // per_iteration)
        lines = [_HEADER]
        lines.extend(shaper.sink_declarations())
        lines.extend(pool.declarations())
        lines.append("")
        lines.append("int main() {")
        lines.append(f"  for (int it = 0; it < {iterations}; it++) {{")
        lines.extend("    " + line for line in body)
        lines.append("  }")
        lines.append(f"  if ({shaper.never_true_guard()}) {{")
        for line in shaper.sink_statements():
            lines.append("    " + line)
        lines.append("  }")
        lines.append('  printf("checksum %d %d %f\\n", gS0, gS1, gF0);')
        lines.append("  return 0;")
        lines.append("}")
        return SyntheticBenchmark(
            source="\n".join(lines) + "\n",
            reduction_factor=0,
            estimated_instructions=iterations * per_iteration,
            original_instructions=profile.total_instructions,
            pattern_stats=translator.stats,
        )


def synthesize_linear(
    profile: StatisticalProfile,
    target_instructions: int = 20_000,
    seed: int = 20100612,
) -> SyntheticBenchmark:
    """Generate the linear-sequence baseline clone."""
    return LinearSynthesizer(profile, target_instructions, seed).generate()
