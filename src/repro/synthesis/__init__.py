"""Benchmark synthesis — the paper's primary contribution (§III-B).

``synthesize(profile, target_instructions)`` turns a statistical profile
into a synthetic mini-C benchmark:

1. **Scale-down** (§III-B.1): choose the reduction factor R so the clone
   executes roughly ``target_instructions``; divide all SFGL counts by R.
2. **Skeleton** (§III-B.2/3): regenerate functions, (nested) ``for``
   loops with the scaled trip counts, and conditional control flow.
3. **Statements** (§III-B.4, Table II): populate blocks with C statements
   via pattern recognition over the profiled instruction sequences, with
   per-category compensation so the dynamic instruction mix matches.
4. **Branches**: easy-to-predict branches become constant conditions with
   a never-executed ``printf`` sink on the cold path; hard branches
   become periodic mask tests on the innermost loop iterator.
5. **Memory** (Table I): loads/stores get stride walks over pre-allocated
   arrays sized to the access's measured working set.

``synthesize_consolidated`` merges several profiles into one benchmark
(§II-B.e); ``LinearSynthesizer`` is the prior-work baseline (a flat block
sequence in one big loop, à la Bell & John) used for ablation.
"""

from repro.synthesis.memory import StreamPool, StreamKey
from repro.synthesis.patterns import (
    BlockTranslator,
    PatternStats,
    STATEMENT_COSTS,
    category_counts,
)
from repro.synthesis.branches import BranchShaper
from repro.synthesis.synthesizer import (
    SyntheticBenchmark,
    Synthesizer,
    synthesize,
    synthesize_consolidated,
)
from repro.synthesis.baseline import LinearSynthesizer, synthesize_linear
from repro.synthesis.validation import (
    FidelityReport,
    synthesize_validated,
    validate_clone,
)

__all__ = [
    "FidelityReport",
    "synthesize_validated",
    "validate_clone",
    "BlockTranslator",
    "BranchShaper",
    "LinearSynthesizer",
    "PatternStats",
    "STATEMENT_COSTS",
    "StreamKey",
    "StreamPool",
    "SyntheticBenchmark",
    "Synthesizer",
    "category_counts",
    "synthesize",
    "synthesize_consolidated",
    "synthesize_linear",
]
