"""repro.serve — the engine as a long-lived service.

A stdlib-only HTTP+JSON daemon over the content-addressed engine:
submissions normalize to canonical job keys, concurrent overlapping
requests coalesce onto shared in-flight work (whole jobs *and*
individual graph nodes), per-client token buckets keep floods polite,
and measured per-stage wall-clock feeds a learned
:class:`~repro.serve.costs.CostModel` that drives both backend routing
(``auto``'s thread-vs-process threshold) and admission estimates.

Start it with ``repro-serve`` (or ``python -m repro.serve``); talk to
it with :class:`~repro.serve.client.ServeClient` or plain curl.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.coalesce import Coalescer, CoalescingRunner, KeyedMutex
from repro.serve.costs import CostModel, UNIT_SECONDS
from repro.serve.jobs import (
    BadRequest,
    Job,
    JobRegistry,
    estimate_stages,
    job_key,
    normalize_request,
    run_job,
)
from repro.serve.quota import QuotaRegistry, TokenBucket
from repro.serve.server import (
    CapacityError,
    QuotaExceeded,
    ReproServer,
    ServeApp,
)

__all__ = [
    "BadRequest",
    "CapacityError",
    "Coalescer",
    "CoalescingRunner",
    "CostModel",
    "Job",
    "JobRegistry",
    "KeyedMutex",
    "QuotaExceeded",
    "QuotaRegistry",
    "ReproServer",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "TokenBucket",
    "UNIT_SECONDS",
    "estimate_stages",
    "job_key",
    "normalize_request",
    "run_job",
]
