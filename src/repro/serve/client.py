"""Thin stdlib client for the repro.serve daemon.

:class:`ServeClient` wraps :mod:`http.client` — the same dependency
budget as the server (none) — and exposes one method per endpoint plus
:meth:`wait`, the submit-and-block convenience the CLI and CI smoke
tests drive.

>>> client = ServeClient("127.0.0.1", 8023)
>>> reply = client.submit({"kind": "figure", "figure": "fig04"})
>>> status = client.wait(reply["job"])
>>> result = client.result(reply["job"])
"""

from __future__ import annotations

import http.client
import json
import time


class ServeError(RuntimeError):
    """A non-2xx reply from the daemon."""

    def __init__(self, status: int, body: dict) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServeClient:
    """One daemon address; a fresh connection per call (the server
    closes after every response)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023,
                 client_id: str | None = None,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None,
                 ok: tuple[int, ...] = (200, 202)) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode() or "{}")
            if response.status not in ok:
                raise ServeError(response.status, data)
            data["_status"] = response.status
            return data
        finally:
            conn.close()

    # -- endpoints ---------------------------------------------------------

    def submit(self, request: dict) -> dict:
        """POST /v1/jobs — returns the 202 body (``job``, ``key``,
        ``coalesced``, ``estimated_seconds``)."""
        if self.client_id and "client" not in request:
            request = {**request, "client": self.client_id}
        return self._request("POST", "/v1/jobs", request, ok=(202,))

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The result body; raises :class:`ServeError` on a failed job,
        returns the 202 status body while still running."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def events(self, job_id: str, since: int = 0) -> list[dict]:
        """Consume the chunked event stream until the job finishes;
        returns every event received."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError(response.status,
                                 json.loads(response.read().decode()
                                            or "{}"))
            events = []
            # http.client de-chunks; the payload is JSON lines.
            for line in response.read().decode().splitlines():
                if line.strip():
                    events.append(json.loads(line))
            return events
        finally:
            conn.close()

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    # -- conveniences ------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_seconds: float = 0.2) -> dict:
        """Poll status until the job finishes; returns the final status.

        Raises :class:`TimeoutError` if it doesn't finish in time.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:.0f}s")
            time.sleep(poll_seconds)

    def run(self, request: dict, timeout: float = 300.0) -> dict:
        """Submit, wait, and return the result body in one call."""
        reply = self.submit(request)
        status = self.wait(reply["job"], timeout=timeout)
        if status["state"] == "failed":
            raise ServeError(500, {"error": status.get("error"),
                                   "job": reply["job"]})
        return self.result(reply["job"])
