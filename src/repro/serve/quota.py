"""Per-client token-bucket quotas for the serve daemon.

Each client (the ``client`` field of a submission, or the peer address
when anonymous) owns one :class:`TokenBucket`: ``burst`` tokens of
capacity refilled at ``rate`` tokens/second.  A submission costs one
token; an empty bucket means 429 with a ``Retry-After`` hint, so a
flood from one client degrades to polite backpressure instead of
starving everyone else — coalesced resubmissions still pay, which is
what makes the quota meaningful under the cache-friendly request
streams the daemon is built for.

Deterministic under test: every method takes an optional ``now`` so
clocks can be injected.
"""

from __future__ import annotations

import threading
import time


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``rate`` tokens/s."""

    def __init__(self, rate: float, capacity: float) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0,
                    now: float | None = None) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            self._refill(time.monotonic() if now is None else now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0,
                    now: float | None = None) -> float:
        """Seconds until *tokens* will be available (0 when they are)."""
        with self._lock:
            self._refill(time.monotonic() if now is None else now)
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate)

    def available(self, now: float | None = None) -> float:
        with self._lock:
            self._refill(time.monotonic() if now is None else now)
            return self._tokens


class QuotaRegistry:
    """One bucket per client id, created on first sight.

    ``rate=None`` disables quotas entirely (every check admits) — the
    daemon's ``--quota-rate 0`` spelling.
    """

    def __init__(self, rate: float | None, burst: float | None = None):
        self.rate = rate if rate else None
        self.burst = burst if burst else (rate * 10 if rate else None)
        self._buckets: dict[str, TokenBucket] = {}
        self._denied: dict[str, int] = {}
        self._lock = threading.Lock()

    def _bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
                self._buckets[client] = bucket
            return bucket

    def admit(self, client: str, now: float | None = None
              ) -> tuple[bool, float]:
        """``(admitted, retry_after_seconds)`` for one submission."""
        if self.rate is None:
            return True, 0.0
        bucket = self._bucket(client)
        if bucket.try_acquire(1.0, now=now):
            return True, 0.0
        with self._lock:
            self._denied[client] = self._denied.get(client, 0) + 1
        return False, bucket.retry_after(1.0, now=now)

    def snapshot(self) -> dict:
        """Per-client quota state for ``/v1/stats``."""
        if self.rate is None:
            return {"enabled": False}
        with self._lock:
            clients = {
                client: {
                    "available": round(bucket.available(), 3),
                    "denied": self._denied.get(client, 0),
                }
                for client, bucket in sorted(self._buckets.items())
            }
        return {"enabled": True, "rate": self.rate, "burst": self.burst,
                "clients": clients}
