"""The repro.serve daemon: a long-lived engine behind HTTP+JSON.

Hand-rolled HTTP/1.1 over :mod:`asyncio` — stdlib only, one process,
no framework.  The asyncio loop owns the sockets and admission control;
jobs execute on a bounded thread pool against ONE shared
:class:`~repro.engine.api.Engine`, so every client submission lands in
the same memo, the same content-addressed store, and the same
coalescing windows.

Endpoints::

    POST /v1/jobs               submit (figure/warm/replay/sweep/search)
    GET  /v1/jobs/<id>          status + progress counters
    GET  /v1/jobs/<id>/result   the result JSON (202 while running)
    GET  /v1/jobs/<id>/events   chunked JSON-lines progress stream
    GET  /v1/stats              store/coalescing/quota/cost-model stats
    GET  /v1/metrics            Prometheus text exposition
    GET  /healthz               liveness (also reports draining)

Admission runs in order: quota (per-client token bucket → 429 +
``Retry-After``), capacity (live-job bound → 429), coalescing (matching
in-flight job → attach as waiter, 202 with ``"coalesced": true``).
Only submissions that survive all three spawn work.

SIGTERM/SIGINT starts a graceful drain: new submissions get 503,
in-flight jobs finish and persist, measured stage costs flush to the
results DB, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.api import Engine
from repro.engine.backends import resolve_backend
from repro.engine.store import ArtifactStore
from repro.obs.log import StructuredLogger
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.serve.coalesce import Coalescer, CoalescingRunner, KeyedMutex
from repro.serve.costs import CostModel
from repro.serve.jobs import (
    BadRequest,
    Job,
    JobRegistry,
    estimate_stages,
    job_key,
    normalize_request,
    run_job,
)
from repro.serve.quota import QuotaRegistry

PROTOCOL = "HTTP/1.1"
MAX_BODY_BYTES = 1 << 20  # a submission is small JSON; flood → 413

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class CapacityError(RuntimeError):
    """The live-job bound is full (HTTP 429 without a quota charge
    refund — a full server is exactly when quotas should bite)."""


class ServeApp:
    """All daemon state minus the sockets — testable without a port."""

    def __init__(
        self,
        cache_dir=None,
        db_path=None,
        workers: int = 2,
        backend: str | None = "thread",
        quota_rate: float | None = None,
        quota_burst: float | None = None,
        max_inflight: int = 4,
        queue_limit: int = 32,
        log=None,
    ) -> None:
        self.log = log if log is not None else StructuredLogger("repro-serve")
        self.metrics = MetricsRegistry()
        self.db_path = db_path
        self.queue_limit = max(1, queue_limit)
        self.max_inflight = max(1, max_inflight)

        self.cost_model = CostModel()
        self._pending_costs: list[tuple[str, float]] = []
        self._costs_lock = threading.Lock()
        self._warm_start_costs()

        self.store = ArtifactStore(root=cache_dir)
        self.mutex = KeyedMutex()
        runner = CoalescingRunner(self.store, _default_runner(),
                                  _default_keyer(), mutex=self.mutex)
        self.node_coalescer = runner
        resolved = resolve_backend(backend, workers=workers) \
            if backend is not None else None
        if resolved is not None and hasattr(resolved, "cost_model") \
                and resolved.cost_model is None:
            # The auto backend routes thread-vs-process through learned
            # costs once history exists.
            resolved.cost_model = self.cost_model
        self.engine = Engine(workers=workers, store=self.store,
                             backend=resolved, runner=runner,
                             on_timing=self._on_timing)

        self.jobs = JobRegistry()
        self.coalescer = Coalescer()
        self.quota = QuotaRegistry(quota_rate, quota_burst)
        self.executor = ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="repro-serve-job",
        )
        self.started_at = time.time()
        self.draining = False

    def _log(self, message: str, level: str = "info") -> None:
        """Log with a severity when the sink understands one.

        Injected test sinks are often plain ``list.append``-style
        callables; fall back to message-only for those.
        """
        try:
            self.log(message, level=level)
        except TypeError:
            self.log(message)

    # -- learned costs -----------------------------------------------------

    def _warm_start_costs(self) -> None:
        """Replay persisted stage history into the cost model, so a
        restarted daemon routes and admits from day one."""
        from repro.explore.db import ResultsDB

        try:
            with ResultsDB(self.db_path) as db:
                replayed = self.cost_model.warm_start(db)
        except Exception as exc:  # a corrupt DB must not kill startup
            self._log(f"cost-model warm start skipped: {exc}",
                      level="warning")
            return
        if replayed:
            self.log(f"cost model warm-started from {replayed} "
                     "persisted stage observations")

    def _on_timing(self, stage: str, seconds: float) -> None:
        """Engine timing hook (any worker thread): learn immediately,
        buffer for persistence.

        SQLite connections are thread-affine, so observations queue
        here and :meth:`flush_costs` writes them from whichever thread
        flushes (each flush opens its own short-lived connection).
        """
        self.cost_model.observe(stage, seconds, persist=False)
        with self._costs_lock:
            self._pending_costs.append((stage, round(float(seconds), 6)))

    def flush_costs(self) -> int:
        """Persist buffered stage observations to the results DB."""
        with self._costs_lock:
            batch, self._pending_costs = self._pending_costs, []
        if not batch:
            return 0
        from repro.engine.store import toolchain_fingerprint
        from repro.explore.db import ResultsDB

        try:
            with ResultsDB(self.db_path) as db:
                return db.record_stage_costs(
                    batch, toolchain=toolchain_fingerprint())
        except Exception as exc:
            self._log(f"stage-cost flush failed ({len(batch)} dropped): "
                      f"{exc}", level="error")
            return 0

    # -- submission --------------------------------------------------------

    def live_jobs(self) -> int:
        counts = self.jobs.counts()
        return counts["queued"] + counts["running"]

    def submit(self, payload: dict, peer: str = "") -> tuple[Job, bool, dict]:
        """Admit one submission; returns ``(job, coalesced, extra)``.

        Raises :class:`BadRequest` (400), :class:`QuotaExceeded` (429 +
        Retry-After), or :class:`CapacityError` (429) — the HTTP layer
        maps each to its status.
        """
        kind, params, client = normalize_request(payload)
        if not payload.get("client") and peer:
            client = peer
        admitted, retry_after = self.quota.admit(client)
        if not admitted:
            self.metrics.count("serve_quota_rejections")
            raise QuotaExceeded(client, retry_after)
        self.metrics.count("serve_submissions", tag=kind, label="kind")
        key = job_key(kind, params)

        def factory() -> Job:
            if self.live_jobs() >= self.queue_limit:
                raise CapacityError(
                    f"server at capacity ({self.queue_limit} live jobs)")
            return self.jobs.create(kind, params, client, key)

        job, coalesced = self.coalescer.attach_or_register(key, factory)
        estimated = self.cost_model.estimate_seconds(
            estimate_stages(kind, params))
        if coalesced:
            self.metrics.count("serve_coalesced_attaches")
            job.add_event("coalesced", client=client)
            self.log(f"submit kind={kind} key={key[:12]} job={job.id} "
                     f"client={client} coalesced=true waiters={job.waiters}")
        else:
            self.log(f"submit kind={kind} key={key[:12]} job={job.id} "
                     f"client={client} coalesced=false "
                     f"estimated_seconds={estimated:.3f}")
            self.executor.submit(self._execute, job)
        return job, coalesced, {"estimated_seconds": round(estimated, 3)}

    def _execute(self, job: Job) -> None:
        """Worker-thread job body; owns the job's state transitions."""
        before = self.stats_snapshot_counters()
        job.set_running()
        try:
            result = run_job(job, self.engine, self.db_path)
        except Exception as exc:
            self.flush_costs()
            job.set_failed(f"{type(exc).__name__}: {exc}")
            self.metrics.count("serve_jobs_failed", tag=job.kind,
                               label="kind")
            self._log(f"failed job={job.id} error={exc}", level="error")
        else:
            # Flush measured costs before the job reads as finished, so
            # a client observing "done" sees the history persisted too.
            self.flush_costs()
            job.set_done(result)
        finally:
            self.coalescer.release(job.key, job)
        after = self.stats_snapshot_counters()
        for op in ("hits", "misses", "executed", "coalesced"):
            delta = after[op] - before[op]
            if delta:
                self.metrics.count("serve_store_ops", delta, tag=op,
                                   label="op")
        elapsed = (job.finished_at or 0) - (job.started_at or 0)
        self.metrics.observe_latency("serve_job_seconds", elapsed,
                                     tags={"kind": job.kind})
        self.metrics.observe("serve_job_waiters", job.waiters)
        self.log(
            f"finish job={job.id} state={job.state} "
            f"waiters={job.waiters} "
            f"seconds={(job.finished_at or 0) - (job.started_at or 0):.3f} "
            f"hits={after['hits'] - before['hits']} "
            f"misses={after['misses'] - before['misses']} "
            f"executed={after['executed'] - before['executed']} "
            f"coalesced={after['coalesced'] - before['coalesced']}"
        )

    # -- stats -------------------------------------------------------------

    def stats_snapshot_counters(self) -> dict:
        node = self.node_coalescer.snapshot()
        return {"hits": self.store.stats.hits,
                "misses": self.store.stats.misses,
                "executed": node["executed"],
                "coalesced": node["coalesced"]}

    def stats(self) -> dict:
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "draining": self.draining,
            "jobs": self.jobs.counts(),
            "store": self.store.stats.as_dict(),
            "submissions": self.coalescer.snapshot(),
            "nodes": self.node_coalescer.snapshot(),
            "quota": self.quota.snapshot(),
            "stage_costs": self.cost_model.snapshot(),
            "metrics": self.metrics.snapshot(),
        }

    def metrics_text(self) -> str:
        """Prometheus exposition: registry series plus live gauges
        sampled from the store, coalescers, and quota registry."""
        lines = [self.metrics.render_prometheus().rstrip("\n")]
        for op, value in sorted(self.store.stats.as_dict().items()):
            lines.append(
                f'repro_store_ops_total{{op="{op}"}} {int(value)}')
        submissions = self.coalescer.snapshot()
        for field in ("hits", "misses", "in_flight"):
            lines.append(f"repro_serve_submission_coalescer_{field} "
                         f"{int(submissions.get(field, 0))}")
        nodes = self.node_coalescer.snapshot()
        for field in ("executed", "coalesced"):
            lines.append(f"repro_serve_node_coalescer_{field} "
                         f"{int(nodes.get(field, 0))}")
        quota = self.quota.snapshot()
        denied = sum(entry.get("denied", 0)
                     for entry in quota.get("clients", {}).values())
        lines.append(
            f"repro_serve_quota_enabled {int(bool(quota.get('enabled')))}")
        lines.append(f"repro_serve_quota_denied_total {int(denied)}")
        lines.append(f"repro_serve_jobs_live {self.live_jobs()}")
        lines.append(f"repro_serve_uptime_seconds "
                     f"{time.time() - self.started_at:.3f}")
        return "\n".join(lines) + "\n"

    # -- shutdown ----------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting, finish in-flight jobs, persist, flush."""
        if self.draining:
            return
        self.draining = True
        self.log("draining: refusing new jobs, finishing in-flight work")
        self.executor.shutdown(wait=True)
        self.flush_costs()
        counts = self.jobs.counts()
        self.log(f"drained: {counts['done']} done, {counts['failed']} "
                 "failed; store persisted")


class QuotaExceeded(RuntimeError):
    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(f"quota exceeded for client {client!r}")
        self.client = client
        self.retry_after = retry_after


def _default_runner():
    from repro.engine.tasks import run_stage

    return run_stage


def _default_keyer():
    from repro.engine.tasks import key_fields

    return key_fields


# -- the HTTP layer ----------------------------------------------------------


class ReproServer:
    """asyncio socket frontend over a :class:`ServeApp`."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 8023) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._stopping: asyncio.Event | None = None

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _encode(status: int, body: dict, extra_headers: dict | None = None,
                ) -> bytes:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
        headers = [
            f"{PROTOCOL} {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        return ("\r\n".join(headers) + "\r\n\r\n").encode() + payload

    @staticmethod
    def _encode_text(status: int, text: str, content_type: str) -> bytes:
        payload = text.encode()
        headers = [
            f"{PROTOCOL} {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        return ("\r\n".join(headers) + "\r\n\r\n").encode() + payload

    async def _read_request(self, reader: asyncio.StreamReader):
        """``(method, path, query, body)`` or None on a bad/empty read."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _ = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        if content_length > MAX_BODY_BYTES:
            return method, target, None, _TOO_LARGE
        body = await reader.readexactly(content_length) \
            if content_length else b""
        path, _, query = target.partition("?")
        return method, path, query, body

    # -- handlers ----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            if body is _TOO_LARGE:
                writer.write(self._encode(413, {"error": "body too large"}))
                return
            await self._route(method, path, query or "", body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(self, method: str, path: str, query: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        app = self.app
        if path == "/healthz":
            writer.write(self._encode(
                200, {"ok": True, "draining": app.draining}))
            return
        if path == "/v1/stats" and method == "GET":
            writer.write(self._encode(200, app.stats()))
            return
        if path == "/v1/metrics" and method == "GET":
            writer.write(self._encode_text(
                200, app.metrics_text(), PROMETHEUS_CONTENT_TYPE))
            return
        if path == "/v1/jobs" and method == "POST":
            await self._submit(body, writer)
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = app.jobs.get(job_id)
            if job is None:
                writer.write(self._encode(
                    404, {"error": f"unknown job {job_id!r}"}))
                return
            if method != "GET":
                writer.write(self._encode(405, {"error": "GET only"}))
                return
            if tail == "":
                writer.write(self._encode(200, job.status()))
                return
            if tail == "result":
                self._result(job, writer)
                return
            if tail == "events":
                await self._events(job, query, writer)
                return
        writer.write(self._encode(
            404, {"error": f"no route for {method} {path}"}))

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        app = self.app
        if app.draining:
            writer.write(self._encode(503, {"error": "server is draining"}))
            return
        try:
            payload = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            writer.write(self._encode(400, {"error": "body is not JSON"}))
            return
        peer = writer.get_extra_info("peername")
        peer_name = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else ""
        loop = asyncio.get_running_loop()
        try:
            # Submission can price a whole task graph; keep it off the
            # event loop so a burst can't stall health checks.
            job, coalesced, extra = await loop.run_in_executor(
                None, app.submit, payload, peer_name)
        except BadRequest as exc:
            writer.write(self._encode(400, {"error": str(exc)}))
            return
        except QuotaExceeded as exc:
            writer.write(self._encode(
                429,
                {"error": str(exc),
                 "retry_after_seconds": round(exc.retry_after, 3)},
                {"Retry-After": max(1, int(exc.retry_after + 0.999))},
            ))
            return
        except CapacityError as exc:
            writer.write(self._encode(
                429, {"error": str(exc)}, {"Retry-After": 5}))
            return
        writer.write(self._encode(202, {
            "job": job.id,
            "key": job.key,
            "state": job.state,
            "coalesced": coalesced,
            "waiters": job.waiters,
            **extra,
        }))

    def _result(self, job, writer: asyncio.StreamWriter) -> None:
        if job.state == "done":
            writer.write(self._encode(
                200, {"job": job.id, "state": job.state,
                      "result": job.result}))
        elif job.state == "failed":
            writer.write(self._encode(
                500, {"job": job.id, "state": job.state,
                      "error": job.error}))
        else:
            writer.write(self._encode(
                202, {"job": job.id, "state": job.state},
                {"Retry-After": 1}))

    async def _events(self, job, query: str,
                      writer: asyncio.StreamWriter) -> None:
        """Stream job events as chunked JSON lines until it finishes."""
        since = 0
        for param in query.split("&"):
            name, _, value = param.partition("=")
            if name == "since" and value.isdigit():
                since = int(value)
        headers = (
            f"{PROTOCOL} 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(headers.encode())
        loop = asyncio.get_running_loop()
        seq = since
        while True:
            events = job.events_since(seq)
            for event in events:
                line = (json.dumps(event, sort_keys=True) + "\n").encode()
                writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
            seq += len(events)
            await writer.drain()
            if job.finished and not job.events_since(seq):
                break
            # Block on the job's condition in a thread, not the loop.
            await loop.run_in_executor(
                None, job.wait_for_event, seq, 5.0)
        writer.write(b"0\r\n\r\n")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
        self.app.log(f"listening on http://{self.host}:{self.port}")

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Run until SIGTERM/SIGINT (or :meth:`request_stop`), then
        drain gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signals
        await self._stopping.wait()
        self.app.log("signal received, shutting down")
        self._server.close()
        await self._server.wait_closed()
        # Drain off-loop: in-flight jobs run on the app's executor.
        await loop.run_in_executor(None, self.app.drain)
        self.app.log("bye")


_TOO_LARGE = object()
