"""``repro-serve`` / ``python -m repro.serve`` — run the daemon.

Also carries a tiny client mode (``repro-serve submit|stats``) so the
CI smoke test and shell users don't need to hand-roll HTTP.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="engine-as-a-service daemon: coalesced figure/sweep/"
                    "replay/search jobs over HTTP+JSON",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="start the daemon (default)")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=8023,
                     help="0 picks a free port (printed on startup)")
    run.add_argument("--workers", type=int, default=2,
                     help="engine workers per job graph")
    run.add_argument("--backend", default="thread",
                     help="execution backend (inline/thread/process/"
                          "shard/auto); in-process backends coalesce "
                          "at node granularity")
    run.add_argument("--cache-dir", default=None,
                     help="artifact store root (default: REPRO_CACHE_DIR)")
    run.add_argument("--db", default=None, dest="db_path",
                     help="results DB path (default: REPRO_RESULTS_DB)")
    run.add_argument("--quota-rate", type=float, default=0.0,
                     help="per-client submissions/second (0 disables)")
    run.add_argument("--quota-burst", type=float, default=None,
                     help="per-client burst capacity (default 10x rate)")
    run.add_argument("--max-inflight", type=int, default=4,
                     help="jobs executing concurrently")
    run.add_argument("--queue-limit", type=int, default=32,
                     help="live (queued+running) jobs before 429")

    for name, help_text in (
        ("submit", "submit a job (JSON on stdin or --json) and wait"),
        ("stats", "print daemon stats"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--host", default="127.0.0.1")
        cmd.add_argument("--port", type=int, default=8023)
        if name == "submit":
            cmd.add_argument("--json", default=None,
                             help="request body (default: read stdin)")
            cmd.add_argument("--client", default=None,
                             help="client id for quota accounting")
            cmd.add_argument("--timeout", type=float, default=300.0)
            cmd.add_argument("--no-wait", action="store_true",
                             help="print the submission reply and exit")
    return parser


def _serve(args) -> int:
    from repro.serve.server import ReproServer, ServeApp

    app = ServeApp(
        cache_dir=args.cache_dir,
        db_path=args.db_path,
        workers=args.workers,
        backend=args.backend,
        quota_rate=args.quota_rate or None,
        quota_burst=args.quota_burst,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
    )
    server = ReproServer(app, host=args.host, port=args.port)
    asyncio.run(server.serve_until_stopped())
    return 0


def _submit(args) -> int:
    from repro.serve.client import ServeClient, ServeError

    raw = args.json if args.json is not None else sys.stdin.read()
    try:
        request = json.loads(raw)
    except ValueError as exc:
        print(f"request body is not JSON: {exc}", file=sys.stderr)
        return 2
    client = ServeClient(args.host, args.port, client_id=args.client)
    try:
        reply = client.submit(request)
        if args.no_wait:
            print(json.dumps(reply, indent=2, sort_keys=True))
            return 0
        status = client.wait(reply["job"], timeout=args.timeout)
        if status["state"] == "failed":
            print(json.dumps(status, indent=2, sort_keys=True),
                  file=sys.stderr)
            return 1
        print(json.dumps(client.result(reply["job"]),
                         indent=2, sort_keys=True))
        return 0
    except (ServeError, TimeoutError, ConnectionError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _stats(args) -> int:
    from repro.serve.client import ServeClient, ServeError

    try:
        print(json.dumps(ServeClient(args.host, args.port).stats(),
                         indent=2, sort_keys=True))
        return 0
    except (ServeError, ConnectionError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare `repro-serve [--opts]` means `repro-serve run [--opts]`.
    if not argv or argv[0] not in ("run", "submit", "stats",
                                   "-h", "--help"):
        argv = ["run"] + argv
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    return _stats(args)


if __name__ == "__main__":
    sys.exit(main())
