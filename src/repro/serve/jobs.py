"""Jobs: normalized requests, content-addressed keys, execution.

A submission is JSON naming a *kind* plus kind-specific parameters.
:func:`normalize_request` validates it and rewrites it into canonical
form (defaults filled, pairs/coords sorted, axes ordered), and
:func:`job_key` hashes that form together with the toolchain
fingerprint — the same content-address discipline as the artifact
store, which is what makes coalescing sound: two requests share a key
exactly when the engine would do identical work for them.

Kinds:

========  ==========================================================
figure    warm one report figure's full pipeline grid (pairs×coords)
warm      warm an explicit pairs×coords(.×sides) pipeline grid
replay    time one workload on a parametric machine (org or syn side)
sweep     run a design-space sweep preset into the results DB
search    run an adaptive search (hill/halving) within a budget
========  ==========================================================

Execution (:func:`run_job`) happens on the daemon's worker threads
against the shared :class:`~repro.engine.api.Engine`; everything a job
computes lands in the artifact store / results DB, so repeated jobs
resolve warm even after their coalescing window closed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.engine.store import canonical_key, toolchain_fingerprint
from repro.engine.tasks import (
    DEFAULT_TARGET_INSTRUCTIONS,
    REF_ISA,
    REF_OPT,
    build_pipeline_graph,
)
from repro.sim.machines import MachineSpec

JOB_KINDS = ("figure", "warm", "replay", "sweep", "search")

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Serve request-schema version, folded into every job key.
SERVE_SCHEMA = 1


class BadRequest(ValueError):
    """A submission that can't be normalized (HTTP 400)."""


# -- normalization -----------------------------------------------------------


def _as_workload_name(value, field_name: str) -> str:
    """Normalize a workload reference to its canonical registry name.

    Accepts a name string (builtin or ``synth:<fingerprint>``) or a
    synth recipe params object, which is folded to its canonical
    ``synth:`` name — so a job submitted by recipe params and one
    submitted by name coalesce onto the same job key.
    """
    if isinstance(value, dict):
        from repro.workloads.synth import SynthRecipe

        try:
            return SynthRecipe.from_params(value).name
        except (TypeError, ValueError) as exc:
            raise BadRequest(
                f"bad synth recipe in {field_name}: {exc}") from None
    return str(value)


def _as_pairs(value, field_name: str = "pairs") -> list[list[str]]:
    from repro.workloads import UnknownWorkloadError, get_workload

    if not isinstance(value, (list, tuple)) or not value:
        raise BadRequest(f"{field_name} must be a non-empty list of "
                         "[workload, input] pairs")
    pairs = []
    for item in value:
        if isinstance(item, str):
            workload, _, input_name = item.partition("/")
        elif isinstance(item, (list, tuple)) and len(item) == 2:
            workload, input_name = item
        else:
            raise BadRequest(f"bad pair {item!r}: expected "
                             "'workload/input' or [workload, input]")
        workload = _as_workload_name(workload, field_name)
        try:
            spec = get_workload(workload)
        except UnknownWorkloadError as exc:
            raise BadRequest(str(exc)) from None
        if input_name not in spec.inputs:
            raise BadRequest(
                f"unknown input {input_name!r} for workload {workload!r} "
                f"(available: {', '.join(spec.inputs)})")
        pairs.append([str(workload), str(input_name)])
    return sorted(pairs)


def _as_coords(value) -> list[list]:
    coords = []
    for item in value:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise BadRequest(f"bad coord {item!r}: expected [isa, opt_level]")
        isa, opt = item
        coords.append([str(isa), int(opt)])
    if not coords:
        raise BadRequest("coords must be non-empty")
    return sorted(coords)


def _as_machine(value) -> dict:
    if not isinstance(value, dict):
        raise BadRequest("machine must be an axes object")
    defaults = MachineSpec(name="serve")
    axes = {}
    for axis, axis_value in value.items():
        if axis not in MachineSpec.__dataclass_fields__:
            raise BadRequest(
                f"unknown machine axis {axis!r} (available: "
                f"{', '.join(sorted(MachineSpec.__dataclass_fields__))})")
        # Coerce through the default's type so "64"/64/64.0 all
        # normalize (and so hash) identically.
        template = getattr(defaults, axis)
        try:
            axes[axis] = type(template)(axis_value)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad machine axis {axis}={axis_value!r}: "
                             f"{exc}") from None
    axes.setdefault("name", "serve")
    # Round-trip through the spec so the normalized form is complete
    # (defaults materialized) and key-stable.
    spec = MachineSpec(**axes)
    normalized = {"name": spec.name, **spec.axes()}
    return {k: normalized[k] for k in sorted(normalized)}


def machine_spec_from_params(machine: dict) -> MachineSpec:
    return MachineSpec(**machine)


def normalize_request(payload: dict) -> tuple[str, dict, str]:
    """Validate *payload*; returns ``(kind, canonical_params, client)``."""
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise BadRequest(
            f"unknown job kind {kind!r} (available: {', '.join(JOB_KINDS)})")
    client = str(payload.get("client") or "anonymous")
    params: dict[str, Any] = {}

    if kind == "figure":
        from repro.experiments.report import FIGURES

        name = payload.get("figure")
        if name not in FIGURES:
            raise BadRequest(
                f"unknown figure {name!r} "
                f"(available: {', '.join(FIGURES)})")
        params["figure"] = name
    elif kind == "warm":
        params["pairs"] = _as_pairs(payload.get("pairs"))
        params["coords"] = _as_coords(
            payload.get("coords") or [[REF_ISA, REF_OPT]])
        sides = payload.get("sides") or ["org", "syn"]
        if not set(sides) <= {"org", "syn"} or not sides:
            raise BadRequest(f"bad sides {sides!r}: subset of org/syn")
        params["sides"] = sorted(set(sides))
        params["target_instructions"] = int(
            payload.get("target_instructions")
            or DEFAULT_TARGET_INSTRUCTIONS)
    elif kind == "replay":
        pair = _as_pairs([[payload.get("workload"), payload.get("input")]],
                         "workload/input")[0]
        params["workload"], params["input"] = pair
        params["machine"] = _as_machine(payload.get("machine") or {})
        params["opt_level"] = int(payload.get("opt_level", REF_OPT))
        side = payload.get("side", "org")
        if side not in ("org", "syn"):
            raise BadRequest(f"replay side must be org or syn, got {side!r}")
        params["side"] = side
        params["target_instructions"] = int(
            payload.get("target_instructions")
            or DEFAULT_TARGET_INSTRUCTIONS)
    elif kind in ("sweep", "search"):
        from repro.explore.space import PRESETS

        preset = payload.get("preset")
        if preset not in PRESETS:
            raise BadRequest(
                f"unknown preset {preset!r} "
                f"(available: {', '.join(sorted(PRESETS))})")
        params["preset"] = preset
        if payload.get("pairs"):
            params["pairs"] = _as_pairs(payload["pairs"])
        if kind == "sweep":
            params["force"] = bool(payload.get("force", False))
            if payload.get("sweep_name"):
                params["sweep_name"] = str(payload["sweep_name"])
        else:
            from repro.explore.search import STRATEGIES

            strategy = payload.get("strategy", "hill")
            if strategy not in STRATEGIES:
                raise BadRequest(
                    f"unknown strategy {strategy!r} "
                    f"(available: {', '.join(sorted(STRATEGIES))})")
            params["strategy"] = strategy
            params["budget"] = int(payload.get("budget", 8))
            if params["budget"] < 1:
                raise BadRequest("search budget must be >= 1")
            params["seed"] = int(payload.get("seed", 0))
    return kind, params, client


def job_key(kind: str, params: dict) -> str:
    """Canonical content address of one normalized job."""
    return canonical_key({
        "serve_schema": SERVE_SCHEMA,
        "toolchain": toolchain_fingerprint(),
        "kind": kind,
        "params": params,
    })


def estimate_stages(kind: str, params: dict) -> list[str]:
    """The pipeline stages the job would execute cold — the admission
    controller prices these through the :class:`CostModel`.

    Exact (graph-derived) for figure/warm/replay; for sweep/search an
    upper-bound estimate from the space size or budget.
    """
    if kind == "figure":
        from repro.experiments.report import FIGURES

        spec = FIGURES[params["figure"]]
        graph = build_pipeline_graph(tuple(map(tuple, spec.pairs)),
                                     tuple(spec.coords))
        return [task.stage for task in graph.values()]
    if kind == "warm":
        graph = build_pipeline_graph(
            tuple(map(tuple, params["pairs"])),
            tuple(map(tuple, params["coords"])),
            target_instructions=params["target_instructions"],
            sides=tuple(params["sides"]),
        )
        return [task.stage for task in graph.values()]
    if kind == "replay":
        spec = machine_spec_from_params(params["machine"])
        graph = build_pipeline_graph(
            ((params["workload"], params["input"]),), coords=(),
            target_instructions=params["target_instructions"],
            sides=(params["side"],),
            machine_points=((spec, params["opt_level"]),),
        )
        return [task.stage for task in graph.values()]
    # sweep/search: points × pairs × (compile, run, 2×replay) plus the
    # per-pair reference chain — an upper bound; warm artifacts make
    # the real cost smaller, never larger.
    from repro.explore.space import get_preset

    preset = get_preset(params["preset"])
    pairs = params.get("pairs") or list(preset.pairs)
    points = params["budget"] if kind == "search" else \
        len(preset.space.points())
    stages = []
    for _ in pairs:
        stages += ["compile", "run", "profile", "synthesize"]
    for _ in range(points):
        for _ in pairs:
            stages += ["compile", "run", "compile-clone", "run-clone",
                       "replay", "replay"]
    return stages


# -- the job object ----------------------------------------------------------


@dataclass
class Job:
    """One submitted unit of work, shared by every coalesced waiter."""

    id: str
    key: str
    kind: str
    params: dict
    client: str
    created_at: float = field(default_factory=time.time)
    state: str = QUEUED
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    waiters: int = 1

    def __post_init__(self) -> None:
        self._cond = threading.Condition()
        self._events: list[dict] = []
        self.add_event("queued", client=self.client)

    # -- events ----------------------------------------------------------

    def add_event(self, event: str, **data) -> None:
        with self._cond:
            self._events.append({
                "seq": len(self._events),
                "time": time.time(),
                "event": event,
                **data,
            })
            self._cond.notify_all()

    def events_since(self, seq: int) -> list[dict]:
        with self._cond:
            return list(self._events[seq:])

    def wait_for_event(self, seq: int, timeout: float | None = None) -> bool:
        """Block until an event past *seq* exists (or the job finished)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: len(self._events) > seq or self.finished,
                timeout=timeout,
            )

    # -- state -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def add_waiter(self) -> None:
        self.waiters += 1

    def set_running(self) -> None:
        self.state = RUNNING
        self.started_at = time.time()
        self.add_event("started")

    def set_done(self, result: dict) -> None:
        self.result = result
        self.state = DONE
        self.finished_at = time.time()
        self.add_event("done")

    def set_failed(self, error: str) -> None:
        self.error = error
        self.state = FAILED
        self.finished_at = time.time()
        self.add_event("failed", error=error)

    def wait(self, timeout: float | None = None) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self.finished,
                                       timeout=timeout)

    def status(self) -> dict:
        """The ``GET /v1/jobs/<id>`` payload."""
        return {
            "job": self.id,
            "key": self.key,
            "kind": self.kind,
            "params": self.params,
            "state": self.state,
            "client": self.client,
            "waiters": self.waiters,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self._events),
            "error": self.error,
        }


class JobRegistry:
    """All jobs this daemon has seen, by id."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._serial = 0

    def create(self, kind: str, params: dict, client: str, key: str) -> Job:
        with self._lock:
            self._serial += 1
            job = Job(id=f"j{self._serial:06d}-{key[:8]}", key=key,
                      kind=kind, params=params, client=client)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED)}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts


# -- execution ---------------------------------------------------------------


def _timing_result_json(result) -> dict:
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "cpi": result.cpi,
        "l1_hits": result.l1_hits,
        "l1_misses": result.l1_misses,
        "l1_hit_rate": result.l1_hit_rate,
        "branch_hits": result.branch_hits,
        "branch_misses": result.branch_misses,
        "branch_accuracy": result.branch_accuracy,
    }


def _record_json(record) -> dict:
    return {"sweep": record.sweep, "point": record.point,
            "score": record.score, "metrics": record.metrics}


def run_job(job: Job, engine, db_path=None) -> dict:
    """Execute *job* against the shared engine; returns the result JSON.

    Raises on failure — the caller owns state transitions (so the
    coalescing window and registry stay consistent even when execution
    dies).
    """
    params = job.params
    if job.kind == "figure":
        from repro.experiments.report import FIGURES

        spec = FIGURES[params["figure"]]
        nodes = engine.warm(tuple(map(tuple, spec.pairs)),
                            tuple(spec.coords))
        return {"figure": params["figure"], "title": spec.title,
                "nodes": nodes, "pairs": [list(p) for p in spec.pairs],
                "coords": [list(c) for c in spec.coords]}
    if job.kind == "warm":
        nodes = engine.warm(
            tuple(map(tuple, params["pairs"])),
            tuple(map(tuple, params["coords"])),
            sides=tuple(params["sides"]),
        )
        return {"nodes": nodes, "pairs": params["pairs"],
                "coords": params["coords"], "sides": params["sides"]}
    if job.kind == "replay":
        spec = machine_spec_from_params(params["machine"])
        result = engine.replay_timing(
            params["workload"], params["input"], spec,
            params["opt_level"], side=params["side"],
        )
        return {
            "workload": params["workload"], "input": params["input"],
            "machine": params["machine"], "opt_level": params["opt_level"],
            "side": params["side"], "fingerprint": spec.fingerprint(),
            "timing": _timing_result_json(result),
        }
    if job.kind == "sweep":
        from repro.explore.db import ResultsDB
        from repro.explore.sweep import run_sweep

        def progress(index, total, record, status):
            job.add_event("point", index=index, total=total, status=status)

        with ResultsDB(db_path) as db:
            sweep = run_sweep(
                params["preset"], engine=engine, db=db,
                pairs=[tuple(p) for p in params["pairs"]]
                if params.get("pairs") else None,
                sweep_name=params.get("sweep_name"),
                force=params["force"], progress=progress,
            )
        return {
            "sweep": sweep.sweep,
            "points": len(sweep.records),
            "computed": sweep.computed,
            "resumed": sweep.resumed,
            "failed": len(sweep.failed),
            "records": [_record_json(r) for r in sweep.records],
        }
    if job.kind == "search":
        from repro.explore.db import ResultsDB
        from repro.explore.search import run_search

        with ResultsDB(db_path) as db:
            search = run_search(
                params["preset"], strategy=params["strategy"],
                budget=params["budget"], seed=params["seed"],
                engine=engine, db=db,
                pairs=[tuple(p) for p in params["pairs"]]
                if params.get("pairs") else None,
            )
        best = search.best
        return {
            "search": search.search,
            "strategy": search.strategy,
            "budget": search.budget,
            "seed": search.seed,
            "evaluated": search.evaluated,
            "rounds": [
                {"label": r.label, "purpose": r.purpose,
                 "points": len(r.sweep.records),
                 "best": _record_json(r.best) if r.best else None}
                for r in search.rounds
            ],
            "best": _record_json(best) if best else None,
        }
    raise BadRequest(f"unknown job kind {job.kind!r}")
