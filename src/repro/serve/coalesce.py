"""Request coalescing: share in-flight work across concurrent clients.

Two layers, both content-addressed:

* **Submission coalescing** (:class:`Coalescer`) — submissions
  normalize to a canonical job key (see :func:`repro.serve.jobs.job_key`);
  a submission whose key matches a queued or running job attaches to it
  as a *waiter* instead of spawning a duplicate: one execution, N
  byte-identical results.  A thousand users asking for the same figure
  share one in-flight graph.
* **Node coalescing** (:class:`KeyedMutex` + :class:`CoalescingRunner`)
  — distinct jobs whose graphs merely *overlap* share at node
  granularity: before executing a task, the runner takes a per-artifact
  mutex keyed by the node's store address and re-probes the shared
  store under it.  Whichever job gets there first computes and persists;
  everyone else's probe hits.  One compile serves every waiter, even
  across different job kinds.

The node layer lives in the daemon's address space, so it covers the
in-process backends the daemon runs (``inline``/``thread``/``auto``'s
thread side).  Stages a backend ships to worker processes fall back to
the store's last-write-wins atomicity — still correct, at worst
duplicated effort.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.engine.store import ArtifactStore

_MISS = object()


def _unwrapped(runner):
    return runner


class KeyedMutex:
    """A mutex per key, created on demand and dropped when idle."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._entries: dict[str, list] = {}  # key -> [lock, holders]

    @contextmanager
    def holding(self, key: str):
        with self._guard:
            entry = self._entries.get(key)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._entries[key] = entry
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._guard:
                entry[1] -= 1
                if entry[1] == 0:
                    self._entries.pop(key, None)

    def active_keys(self) -> int:
        with self._guard:
            return len(self._entries)


class CoalescingRunner:
    """Stage-runner wrapper that makes overlapping jobs share nodes.

    Wraps the engine's ``runner(task, deps)`` contract.  Execution of a
    node serializes on its content key; the loser of the race re-probes
    the store under the mutex and returns the winner's artifact instead
    of recomputing it.  Probes go through a private store handle (same
    root, separate counters) so coalescing bookkeeping never pollutes
    the daemon's headline hit/miss accounting.

    Counters: ``executed`` nodes this runner actually computed,
    ``coalesced`` executions it skipped because another job's result
    landed first.
    """

    def __init__(self, store: ArtifactStore | None, runner, keyer,
                 mutex: KeyedMutex | None = None) -> None:
        self.runner = runner
        self.keyer = keyer
        self.mutex = mutex if mutex is not None else KeyedMutex()
        self._store = None if store is None else ArtifactStore(
            root=store.root, schema_version=store.schema_version,
            toolchain=store.toolchain, max_bytes=None,
        )
        self._lock = threading.Lock()
        self.executed = 0
        self.coalesced = 0

    def __call__(self, task, deps):
        if self._store is None:
            return self.runner(task, deps)
        key = self._store.key_for(task.stage, **self.keyer(task))
        with self.mutex.holding(key):
            cached = self._store.get(key, _MISS)
            if cached is not _MISS:
                with self._lock:
                    self.coalesced += 1
                return cached
            value = self.runner(task, deps)
            # Persist under the mutex so a waiter's re-probe is already
            # a hit the moment it unblocks.  The scheduler's own put
            # then overwrites with identical bytes (atomic, safe).
            self._store.put(key, value, stage=task.stage)
            with self._lock:
                self.executed += 1
            return value

    def __reduce__(self):
        # Execution contexts are pickled to process/shard workers, and
        # our mutexes can't cross that boundary (nor would they help —
        # coalescing is an address-space property).  Degrade to the
        # wrapped runner; cross-process overlap falls back to the
        # store's last-write-wins atomicity.
        return (_unwrapped, (self.runner,))

    def snapshot(self) -> dict:
        with self._lock:
            return {"executed": self.executed, "coalesced": self.coalesced,
                    "in_flight_keys": self.mutex.active_keys()}


class Coalescer:
    """Submission-level index: job key → live (unfinished) job."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def attach_or_register(self, key: str, factory):
        """``(job, coalesced)`` — the live job for *key*, attaching to
        it when one is in flight, else registering ``factory()``."""
        with self._lock:
            job = self._active.get(key)
            if job is not None and not job.finished:
                job.add_waiter()
                self.hits += 1
                return job, True
            job = factory()
            self._active[key] = job
            self.misses += 1
            return job, False

    def release(self, key: str, job) -> None:
        """Drop the in-flight registration once *job* finishes (later
        identical submissions start fresh — and likely resolve warm)."""
        with self._lock:
            if self._active.get(key) is job:
                del self._active[key]

    def snapshot(self) -> dict:
        with self._lock:
            return {"in_flight": len(self._active), "hits": self.hits,
                    "misses": self.misses}
