"""Learned stage costs: EWMA over measured history, static-table cold.

The engine's static :data:`repro.engine.tasks.STAGE_COSTS` table is a
hand-estimated prior in relative units where process-pool dispatch is
the 1.0 reference point.  :class:`CostModel` replaces the estimate with
measurement: every executed stage's wall-clock (captured by the
scheduler/engine timing hook) feeds an exponentially-weighted moving
average per stage, persisted to the results DB's ``stage_costs`` table
so a restarted daemon resumes warm.

Unit bridge: measured seconds divide by :data:`UNIT_SECONDS` — the
assumed wall-clock of one process-pool dispatch (pickle + IPC round
trip), i.e. of 1.0 static-table unit — so learned and static costs stay
comparable and either can be tested against a backend's
``dispatch_cost``.  Below :data:`MIN_SAMPLES` observations for a stage
the model answers from the static table, so a cold daemon routes
exactly like the static ``auto`` backend and *degrades to*, never
*depends on*, measurement.

Consumers:

* :class:`repro.engine.backends.auto.AutoBackend` — pass
  ``cost_model=`` and the thread/process routing threshold follows
  measured history instead of the static table;
* the serve daemon's admission control — estimated job seconds
  (:meth:`CostModel.estimate_seconds`) bound how much queued work is
  admitted before new submissions see 429s.
"""

from __future__ import annotations

import threading

from repro.engine.tasks import STAGE_COSTS, stage_cost

#: Assumed seconds per static cost unit (one process-pool dispatch).
UNIT_SECONDS = 0.01

#: EWMA weight of the newest observation.
DEFAULT_ALPHA = 0.3

#: Observations per stage before the learned estimate is trusted.
MIN_SAMPLES = 3

#: How much persisted history a warm-start replays per model.
HISTORY_LIMIT = 2048


class CostModel:
    """Per-stage execution-cost estimator with measured-history EWMA.

    Thread-safe: ``observe`` is called from scheduler harvest loops and
    engine worker threads, ``cost``/``estimate_seconds`` from the
    daemon's routing and admission paths.
    """

    def __init__(self, db=None, alpha: float = DEFAULT_ALPHA,
                 unit_seconds: float = UNIT_SECONDS,
                 min_samples: int = MIN_SAMPLES,
                 static: dict[str, float] | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        if unit_seconds <= 0:
            raise ValueError("unit_seconds must be positive")
        self.alpha = alpha
        self.unit_seconds = unit_seconds
        self.min_samples = max(1, int(min_samples))
        self._static = dict(static) if static is not None else None
        #: Optional ResultsDB handle; observations persist to its
        #: stage_costs table so history survives daemon restarts.
        self._db = db
        self._lock = threading.Lock()
        self._ewma: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        if db is not None:
            self.warm_start(db)

    # -- learning ----------------------------------------------------------

    def _fold(self, stage: str, seconds: float) -> None:
        previous = self._ewma.get(stage)
        self._ewma[stage] = seconds if previous is None else \
            self.alpha * seconds + (1.0 - self.alpha) * previous
        self._counts[stage] = self._counts.get(stage, 0) + 1

    def observe(self, stage: str, seconds: float,
                persist: bool = True) -> None:
        """Fold one measured stage wall-clock into the model.

        Signature matches the engine's ``on_timing`` hook, so the model
        itself can be handed to ``Engine(on_timing=model.observe)``.
        """
        seconds = float(seconds)
        if seconds < 0:
            return
        with self._lock:
            self._fold(stage, seconds)
        if persist and self._db is not None:
            self._db.record_stage_cost(stage, seconds)

    def warm_start(self, db, limit: int = HISTORY_LIMIT) -> int:
        """Replay persisted ``stage_costs`` history (oldest first) into
        the EWMA state; returns the number of observations replayed."""
        history = db.stage_cost_history(limit=limit)
        with self._lock:
            for stage, seconds, _ in history:
                self._fold(stage, seconds)
        return len(history)

    # -- estimates ---------------------------------------------------------

    def samples(self, stage: str) -> int:
        with self._lock:
            return self._counts.get(stage, 0)

    def seconds(self, stage: str) -> float | None:
        """Learned wall-clock estimate for *stage*, or ``None`` while
        the stage is cold (fewer than ``min_samples`` observations)."""
        with self._lock:
            if self._counts.get(stage, 0) < self.min_samples:
                return None
            return self._ewma[stage]

    def cost(self, stage: str) -> float:
        """Relative cost of *stage* in static-table units (process-pool
        dispatch = 1.0): learned when warm, static-table prior when
        cold.  Drop-in for :func:`repro.engine.tasks.stage_cost`."""
        learned = self.seconds(stage)
        if learned is not None:
            return learned / self.unit_seconds
        if self._static is not None:
            return self._static.get(stage, stage_cost(stage))
        return stage_cost(stage)

    def estimate_seconds(self, stages) -> float:
        """Estimated total wall-clock of executing *stages* (an iterable
        of stage names, repeats allowed) — the admission-control
        currency.  Cold stages fall back to static units × unit
        seconds."""
        total = 0.0
        for stage in stages:
            learned = self.seconds(stage)
            total += learned if learned is not None else \
                self.cost(stage) * self.unit_seconds
        return total

    def snapshot(self) -> dict[str, dict]:
        """Per-stage ``{"samples", "ewma_seconds", "cost", "source"}``
        for every stage seen or statically known — the ``/v1/stats``
        payload."""
        with self._lock:
            known = set(self._ewma) | set(STAGE_COSTS) | \
                set(self._static or ())
            out = {}
            for stage in sorted(known):
                count = self._counts.get(stage, 0)
                warm = count >= self.min_samples
                ewma = self._ewma.get(stage)
                cost = (ewma / self.unit_seconds) if warm else (
                    (self._static or STAGE_COSTS).get(stage,
                                                      stage_cost(stage)))
                out[stage] = {
                    "samples": count,
                    "ewma_seconds": ewma,
                    "cost": cost,
                    "source": "learned" if warm else "static",
                }
            return out
