"""Branch taken and transition rates (§III-A.2).

The *transition rate* of a static branch is how often its outcome differs
from its previous outcome (Huang et al., HPCA 2000).  Low (<~10%) or high
(>~90%) transition rates mean the branch is easy to predict; mid-range
rates mean hard.  The paper collapses this into two classes, which the
synthesizer turns into constant conditions (easy) or modulo tests (hard).
"""

from __future__ import annotations

from dataclasses import dataclass, field

EASY_LOW = 0.10
EASY_HIGH = 0.90


@dataclass
class BranchStats:
    """Profile of one static conditional branch."""

    uid: int
    executions: int = 0
    taken: int = 0
    transitions: int = 0
    _last: int = field(default=-1, repr=False)

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def transition_rate(self) -> float:
        if self.executions <= 1:
            return 0.0
        return self.transitions / (self.executions - 1)

    @property
    def is_easy(self) -> bool:
        rate = self.transition_rate
        return rate <= EASY_LOW or rate >= EASY_HIGH


@dataclass
class BranchProfile:
    """Per-branch statistics for one execution."""

    branches: dict[int, BranchStats] = field(default_factory=dict)

    def stats(self, uid: int) -> BranchStats | None:
        return self.branches.get(uid)

    @property
    def total_executions(self) -> int:
        return sum(b.executions for b in self.branches.values())

    def hard_fraction(self) -> float:
        """Dynamic fraction of branch executions from hard branches."""
        total = self.total_executions
        if not total:
            return 0.0
        hard = sum(
            b.executions for b in self.branches.values() if not b.is_easy
        )
        return hard / total


def profile_branches(branch_log) -> BranchProfile:
    """Build a :class:`BranchProfile` from a ``(uid << 1) | taken`` log."""
    profile = BranchProfile()
    branches = profile.branches
    for packed in branch_log:
        uid = packed >> 1
        taken = packed & 1
        stats = branches.get(uid)
        if stats is None:
            stats = BranchStats(uid=uid)
            branches[uid] = stats
        stats.executions += 1
        stats.taken += taken
        if stats._last >= 0 and stats._last != taken:
            stats.transitions += 1
        stats._last = taken
    return profile
