"""Memory access profiling (§III-A.3, Table I).

Each static memory instruction gets a hit/miss ratio against the
*profiling cache* (default 8 KB, 32-byte lines, 4-way — the mid-point of
the paper's Fig. 7 sweep) and is classified into one of the nine Table I
miss-rate classes, which map to byte strides 0..32 assuming 32-byte lines.

Additionally, per-instruction miss rates are measured at every sweep size
in one pass (Hill & Smith-style, the paper's citation [13]); the smallest
cache at which an access stops missing estimates its working set, which
the synthesizer uses to size the stride-walk arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.machine import Binary
from repro.sim.cache import Cache, CacheConfig
from repro.sim.trace import ExecutionTrace

# Table I: class index -> stride in bytes (32-byte line, 32-bit words).
MISS_CLASS_STRIDES = (0, 4, 8, 12, 16, 20, 24, 28, 32)

# Cache sizes measured during profiling (bytes).
PROFILE_SWEEP_SIZES = tuple(kb * 1024 for kb in (1, 2, 4, 8, 16, 32))
DEFAULT_PROFILE_SIZE = 8 * 1024


def miss_class_for_rate(miss_rate: float) -> int:
    """Map a miss rate to its Table I class (0..8)."""
    return min(8, int(miss_rate * 8 + 0.5))


@dataclass
class MemoryStats:
    """Profile of one static memory instruction."""

    uid: int
    accesses: int = 0
    misses_by_size: dict[int, int] = field(default_factory=dict)
    profile_size: int = DEFAULT_PROFILE_SIZE

    def miss_rate(self, size: int | None = None) -> float:
        size = size or self.profile_size
        if not self.accesses:
            return 0.0
        return self.misses_by_size.get(size, 0) / self.accesses

    @property
    def miss_class(self) -> int:
        return miss_class_for_rate(self.miss_rate())

    @property
    def stride_bytes(self) -> int:
        return MISS_CLASS_STRIDES[self.miss_class]

    def working_set_bytes(self, sweep=PROFILE_SWEEP_SIZES) -> int:
        """Smallest sweep size whose miss rate falls in class 0."""
        for size in sweep:
            if miss_class_for_rate(self.miss_rate(size)) == 0:
                return size
        return 2 * sweep[-1]


@dataclass
class MemoryProfile:
    """Per-instruction memory statistics plus aggregate hit rates."""

    stats: dict[int, MemoryStats] = field(default_factory=dict)
    hit_rates_by_size: dict[int, float] = field(default_factory=dict)
    profile_size: int = DEFAULT_PROFILE_SIZE

    def stats_for(self, uid: int) -> MemoryStats | None:
        return self.stats.get(uid)

    @property
    def total_accesses(self) -> int:
        return sum(s.accesses for s in self.stats.values())


def _memory_uids_per_block(binary: Binary) -> list[list[int]]:
    per_block: list[list[int]] = []
    for func_idx, blk_idx in binary.block_map:
        block = binary.functions[func_idx].blocks[blk_idx]
        per_block.append([ins.uid for ins in block.instrs if ins.is_memory])
    return per_block


def profile_memory(
    binary: Binary,
    trace: ExecutionTrace,
    sweep_sizes=PROFILE_SWEEP_SIZES,
    profile_size: int = DEFAULT_PROFILE_SIZE,
    line_bytes: int = 32,
    associativity: int = 4,
) -> MemoryProfile:
    """Replay the memory trace, attributing hits/misses per instruction."""
    uids_per_block = _memory_uids_per_block(binary)
    caches = [
        Cache(CacheConfig(size, line_bytes, associativity)) for size in sweep_sizes
    ]
    sizes = list(sweep_sizes)
    profile = MemoryProfile(profile_size=profile_size)
    stats = profile.stats
    mem_addrs = trace.mem_addrs
    mem_idx = 0
    for gbid in trace.block_seq:
        for uid in uids_per_block[gbid]:
            addr = mem_addrs[mem_idx]
            mem_idx += 1
            entry = stats.get(uid)
            if entry is None:
                entry = MemoryStats(uid=uid, profile_size=profile_size)
                stats[uid] = entry
            entry.accesses += 1
            for size, cache in zip(sizes, caches):
                if not cache.access(addr):
                    misses = entry.misses_by_size
                    misses[size] = misses.get(size, 0) + 1
    for size, cache in zip(sizes, caches):
        profile.hit_rates_by_size[size] = cache.hit_rate
    return profile
