"""The statistical profile: everything benchmark synthesis consumes.

Bundles the SFGL, branch profile, memory profile and instruction mix from
one profiled run.  The paper profiles binaries compiled at a *low*
optimization level (-O0) so that pattern recognition sees canonical
load/compute/store shapes; :func:`profile_workload` encapsulates that
convention (compile at O0 on the reference ISA, simulate, profile).

The functional run honors ``REPRO_SIM_EXEC`` (``python|fast|auto``):
profiles are derived from the trace alone and both engines produce
byte-identical traces, so profiling output never depends on the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.driver import compile_program
from repro.isa.machine import Binary
from repro.isa.targets import ISA, X86
from repro.profiling.branch_profile import BranchProfile, profile_branches
from repro.profiling.memory_profile import MemoryProfile, profile_memory
from repro.profiling.sfgl import SFGL, build_sfgl
from repro.sim.functional import run_binary
from repro.sim.trace import ExecutionTrace, InstructionMix


@dataclass
class StatisticalProfile:
    """The paper's statistical profile (§II-A, Fig. 1)."""

    sfgl: SFGL
    branches: BranchProfile
    memory: MemoryProfile
    mix: InstructionMix
    total_instructions: int
    binary: Binary = field(repr=False)
    source_name: str = "workload"

    def reduction_for_target(self, target_instructions: int) -> int:
        """Reduction factor R so the synthetic hits ~target instructions.

        The paper chooses R empirically so the synthetic executes about
        10M instructions (Fig. 4's caption); we do the equivalent
        division, clamped to at least 1 (short-running workloads keep
        R = 1, as the paper notes happens for some MiBench programs).
        """
        if target_instructions <= 0:
            raise ValueError("target must be positive")
        return max(1, round(self.total_instructions / target_instructions))


def profile_trace(
    binary: Binary, trace: ExecutionTrace, source_name: str = "workload"
) -> StatisticalProfile:
    """Build the full statistical profile from one recorded execution."""
    return StatisticalProfile(
        sfgl=build_sfgl(binary, trace),
        branches=profile_branches(trace.branch_log),
        memory=profile_memory(binary, trace),
        mix=trace.instruction_mix(),
        total_instructions=trace.instructions,
        binary=binary,
        source_name=source_name,
    )


def profile_workload(
    source: str,
    isa: ISA | str = X86,
    source_name: str = "workload",
) -> tuple[StatisticalProfile, ExecutionTrace]:
    """Compile *source* at -O0 (the paper's convention), run and profile."""
    result = compile_program(source, isa, opt_level=0)
    trace = run_binary(result.binary)
    return profile_trace(result.binary, trace, source_name), trace
