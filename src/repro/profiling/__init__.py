"""Workload profiling: the paper's "statistical profile" (§III-A).

``profile_trace`` turns one functional-simulation trace into a
:class:`StatisticalProfile` holding:

* the **SFGL** — statistical flow graph with loop annotation: block
  execution counts, edge counts/probabilities, and the natural-loop
  forest with iteration counts (§III-A.1);
* per-static-branch **taken and transition rates** with the easy/hard
  classification of Huang et al. (§III-A.2);
* per-static-memory-access **hit/miss classes** (Table I) measured
  against a configurable profiling cache, plus working-set estimates from
  a multi-size sweep (§III-A.3);
* per-block instruction descriptors feeding the Table II pattern
  recognizer.
"""

from repro.profiling.loops import MachineLoop, find_machine_loops, machine_cfg
from repro.profiling.sfgl import SFGL, SFGLBlock, SFGLLoop, build_sfgl
from repro.profiling.branch_profile import BranchProfile, BranchStats, profile_branches
from repro.profiling.memory_profile import (
    MemoryProfile,
    MemoryStats,
    miss_class_for_rate,
    profile_memory,
    MISS_CLASS_STRIDES,
)
from repro.profiling.profile import StatisticalProfile, profile_trace, profile_workload

__all__ = [
    "BranchProfile",
    "BranchStats",
    "MachineLoop",
    "MemoryProfile",
    "MemoryStats",
    "MISS_CLASS_STRIDES",
    "SFGL",
    "SFGLBlock",
    "SFGLLoop",
    "StatisticalProfile",
    "build_sfgl",
    "find_machine_loops",
    "machine_cfg",
    "miss_class_for_rate",
    "profile_branches",
    "profile_memory",
    "profile_trace",
    "profile_workload",
]
