"""The Statistical Flow Graph with Loop annotation (SFGL) — §III-A.1.

Nodes are the profiled binary's basic blocks annotated with execution
counts; edges carry transition counts (probabilities derive from them);
loops carry total iteration and entry counts so the synthesizer can
regenerate ``for`` nests with the right average trip counts.

``SFGL.scale_down(R)`` implements §III-B.1 / Fig. 2: every block count and
loop count is divided by the reduction factor; blocks executed fewer than
R times disappear (like block C in the paper's example).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.machine import Binary
from repro.profiling.loops import MachineLoop, find_machine_loops
from repro.sim.trace import ExecutionTrace


@dataclass
class InstrDescriptor:
    """What the pattern recognizer needs to know about one instruction."""

    uid: int
    op: str
    klass: str
    is_memory: bool
    is_store: bool
    has_imm: bool
    is_float: bool


@dataclass
class SFGLBlock:
    """One SFGL node."""

    gbid: int
    func_index: int
    block_index: int
    count: int
    instrs: list[InstrDescriptor] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.instrs)


@dataclass
class SFGLLoop:
    """A loop annotation: header/body plus dynamic iteration statistics."""

    header: int  # gbid
    body: set[int] = field(default_factory=set)  # gbids
    iterations: int = 0  # total header executions
    entries: int = 0  # times the loop was entered from outside
    parent: "SFGLLoop | None" = None
    children: list["SFGLLoop"] = field(default_factory=list)

    @property
    def average_trip(self) -> float:
        return self.iterations / self.entries if self.entries else 0.0

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth


@dataclass
class SFGL:
    """The full statistical flow graph."""

    blocks: dict[int, SFGLBlock] = field(default_factory=dict)
    edges: dict[tuple[int, int], int] = field(default_factory=dict)
    loops: list[SFGLLoop] = field(default_factory=list)
    call_counts: dict[int, int] = field(default_factory=dict)  # func idx -> calls
    function_names: dict[int, str] = field(default_factory=dict)

    def total_instructions(self) -> int:
        """Dynamic instructions represented by the graph."""
        return sum(block.count * block.size for block in self.blocks.values())

    def edge_probability(self, src: int, dst: int) -> float:
        total = sum(count for (s, _), count in self.edges.items() if s == src)
        if not total:
            return 0.0
        return self.edges.get((src, dst), 0) / total

    def loop_of(self, gbid: int) -> SFGLLoop | None:
        """Innermost loop containing *gbid*."""
        best: SFGLLoop | None = None
        for loop in self.loops:
            if gbid in loop.body and (best is None or len(loop.body) < len(best.body)):
                best = loop
        return best

    # -- §III-B.1: scale-down -------------------------------------------

    def scale_down(self, reduction: int) -> "SFGL":
        """Return a new SFGL with counts divided by *reduction*.

        Blocks executed fewer than *reduction* times are removed, exactly
        as in the paper's Fig. 2; loops whose header disappears are
        dropped, and loop iteration/entry counts are scaled.
        """
        if reduction < 1:
            raise ValueError("reduction factor must be >= 1")
        scaled = SFGL(function_names=dict(self.function_names))
        for gbid, block in self.blocks.items():
            count = block.count // reduction
            if count >= 1:
                scaled.blocks[gbid] = SFGLBlock(
                    gbid=block.gbid,
                    func_index=block.func_index,
                    block_index=block.block_index,
                    count=count,
                    instrs=block.instrs,
                )
        for (src, dst), count in self.edges.items():
            if src in scaled.blocks and dst in scaled.blocks:
                new_count = count // reduction
                if new_count >= 1:
                    scaled.edges[(src, dst)] = new_count
        # Rebuild loop forest restricted to surviving blocks.
        index_of: dict[int, int] = {}
        for loop in self.loops:
            if loop.header not in scaled.blocks:
                continue
            entries = max(1, loop.entries // reduction)
            iterations = max(entries, loop.iterations // reduction)
            clone = SFGLLoop(
                header=loop.header,
                body={gbid for gbid in loop.body if gbid in scaled.blocks},
                iterations=iterations,
                entries=entries,
            )
            index_of[id(loop)] = len(scaled.loops)
            scaled.loops.append(clone)
            if loop.parent is not None and id(loop.parent) in index_of:
                parent = scaled.loops[index_of[id(loop.parent)]]
                clone.parent = parent
                parent.children.append(clone)
        for func_index, count in self.call_counts.items():
            new_count = count // reduction
            if new_count >= 1:
                scaled.call_counts[func_index] = new_count
        return scaled


def build_sfgl(binary: Binary, trace: ExecutionTrace) -> SFGL:
    """Construct the SFGL for one profiled execution."""
    sfgl = SFGL()
    block_counts = trace.block_counts()
    edge_counts = trace.edge_counts()
    for gbid, count in block_counts.items():
        func_index, block_index = binary.block_map[gbid]
        block = binary.functions[func_index].blocks[block_index]
        descriptors = [
            InstrDescriptor(
                uid=ins.uid,
                op=ins.op,
                klass=ins.klass,
                is_memory=ins.is_memory,
                is_store=ins.is_store,
                has_imm=ins.b_imm is not None,
                is_float=ins.op.startswith("f")
                or ins.klass in ("falu", "fmul", "fdiv", "fmath"),
            )
            for ins in block.instrs
        ]
        sfgl.blocks[gbid] = SFGLBlock(
            gbid=gbid,
            func_index=func_index,
            block_index=block_index,
            count=count,
            instrs=descriptors,
        )
    sfgl.edges = dict(edge_counts)
    for func in binary.functions:
        sfgl.function_names[func.index] = func.name
        machine_loops = find_machine_loops(func)
        clones: dict[int, SFGLLoop] = {}
        for loop in machine_loops:
            header_gbid = func.blocks[loop.header].gbid
            if header_gbid not in sfgl.blocks:
                continue
            body_gbids = {func.blocks[b].gbid for b in loop.body}
            iterations = block_counts.get(header_gbid, 0)
            entries = 0
            for (src, dst), count in edge_counts.items():
                if dst == header_gbid and src not in body_gbids:
                    entries += count
            clone = SFGLLoop(
                header=header_gbid,
                body=body_gbids,
                iterations=iterations,
                entries=max(1, entries) if iterations else 0,
            )
            clones[id(loop)] = clone
            sfgl.loops.append(clone)
        for loop in machine_loops:
            clone = clones.get(id(loop))
            if clone is None:
                continue
            if loop.parent is not None and id(loop.parent) in clones:
                parent = clones[id(loop.parent)]
                clone.parent = parent
                parent.children.append(clone)
    sfgl.call_counts = dict(trace.call_counts())
    return sfgl
