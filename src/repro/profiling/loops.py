"""Natural-loop detection on machine-code CFGs.

The SFGL needs loop structure of the *profiled binary* (not the IR), so
dominators and back edges are recomputed here over machine blocks.  Call
edges do not leave the function: a block ending in ``call`` flows to its
fall-through continuation, matching how Pin's BBL view sees control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.machine import MachineFunction


def machine_cfg(func: MachineFunction) -> dict[int, list[int]]:
    """Successor map (block index -> indices) for one machine function."""
    succs: dict[int, list[int]] = {}
    for idx, blk in enumerate(func.blocks):
        out: list[int] = []
        last = blk.instrs[-1] if blk.instrs else None
        if last is None:
            if blk.fall_through is not None:
                out.append(blk.fall_through)
        elif last.op == "jmp":
            out.append(last.target)
        elif last.op in ("bt", "bf"):
            out.append(last.target)
            if blk.fall_through is not None:
                out.append(blk.fall_through)
        elif last.op == "ret":
            pass
        else:  # call or plain fall-through
            if blk.fall_through is not None:
                out.append(blk.fall_through)
        succs[idx] = out
    return succs


def _reverse_postorder(succs: dict[int, list[int]], entry: int) -> list[int]:
    visited = {entry}
    order: list[int] = []
    stack: list[tuple[int, iter]] = [(entry, iter(succs[entry]))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succs[succ])))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def _dominators(succs: dict[int, list[int]], entry: int) -> dict[int, set[int]]:
    order = _reverse_postorder(succs, entry)
    reachable = set(order)
    preds: dict[int, list[int]] = {node: [] for node in order}
    for node in order:
        for succ in succs[node]:
            if succ in reachable:
                preds[succ].append(node)
    dom: dict[int, set[int]] = {node: set(order) for node in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            node_preds = preds[node]
            if not node_preds:
                continue
            new_set = set(dom[node_preds[0]])
            for pred in node_preds[1:]:
                new_set &= dom[pred]
            new_set.add(node)
            if new_set != dom[node]:
                dom[node] = new_set
                changed = True
    return dom


@dataclass
class MachineLoop:
    """A natural loop in a machine function."""

    func_index: int
    header: int  # block index within the function
    body: set[int] = field(default_factory=set)
    back_edges: list[int] = field(default_factory=list)
    parent: "MachineLoop | None" = None
    children: list["MachineLoop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth


def loop_header_gbids(binary) -> list[int]:
    """Global block ids of every natural-loop header in *binary*.

    The replay kernels use these as anchors for periodic-region
    detection: a steady-state loop shows up in the dynamic block
    sequence as equally spaced occurrences of its header block.
    """
    headers: list[int] = []
    for func in binary.functions:
        for loop in find_machine_loops(func):
            headers.append(func.blocks[loop.header].gbid)
    return sorted(set(headers))


def find_machine_loops(func: MachineFunction) -> list[MachineLoop]:
    """Natural loops of one machine function, outermost-first."""
    if not func.blocks:
        return []
    succs = machine_cfg(func)
    dom = _dominators(succs, 0)
    preds: dict[int, list[int]] = {node: [] for node in dom}
    for node in dom:
        for succ in succs[node]:
            if succ in dom:
                preds[succ].append(node)
    loops_by_header: dict[int, MachineLoop] = {}
    for node in dom:
        for succ in succs[node]:
            if succ in dom.get(node, set()):
                loop = loops_by_header.setdefault(
                    succ, MachineLoop(func_index=func.index, header=succ)
                )
                loop.back_edges.append(node)
                body = {succ, node}
                stack = [node]
                while stack:
                    current = stack.pop()
                    if current == succ:
                        continue
                    for pred in preds.get(current, []):
                        if pred not in body:
                            body.add(pred)
                            stack.append(pred)
                loop.body |= body
    loops = sorted(loops_by_header.values(), key=lambda lp: len(lp.body))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1 :]:
            if inner.header in outer.body and inner.body <= outer.body:
                inner.parent = outer
                outer.children.append(inner)
                break
    loops.sort(key=lambda lp: -len(lp.body))
    return loops
