"""Unified observability: metrics registry, span tracing, structured logs.

``repro.obs`` is the one place the engine, the simulators, the explorer,
and the serve daemon report what they did and how long it took:

* :mod:`repro.obs.metrics` — declarative metrics (counters, tagged
  counters, exponential histograms, latency measurers) with
  deterministic JSON snapshots and a commutative ``merge()`` so
  per-worker registries from the process/shard backends flow back
  through the same seam that already merges store stats.
* :mod:`repro.obs.trace` — hierarchical wall-clock spans recorded from
  ``run_graph`` down to individual stages, exportable as
  Chrome-trace-event JSON (loadable in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.log` — structured stderr logging (timestamp, level)
  behind the ``REPRO_LOG_LEVEL`` env var.

CLI: ``repro-trace`` (``python -m repro.obs``) records, summarizes, and
exports traces.
"""

from repro.obs.metrics import (  # noqa: F401
    Counter,
    ExpHistogram,
    LatencyMeasurer,
    MetricsRegistry,
    TaggedCounter,
    hist_distance,
    merge_hist_data,
)
from repro.obs.trace import Tracer, chrome_trace, load_trace  # noqa: F401
from repro.obs.log import StructuredLogger  # noqa: F401
