"""Span tracing: perf_counter intervals exportable as Chrome trace JSON.

A :class:`Tracer` records complete spans (name, category, start, dur)
relative to its own ``perf_counter`` epoch.  The scheduler emits one
span per graph node (category = stage name, with the cache outcome in
``args``) plus a root ``run_graph`` span; shard workers run their own
tracer and the parent :meth:`absorb`\\ s their spans, remapped onto the
parent timeline via the wall-clock offset between the two epochs.

The native on-disk format keeps seconds and carries an optional
metrics snapshot::

    {"format": "repro-trace", "version": 1, "epoch_wall": ...,
     "spans": [{"name", "cat", "ts", "dur", "pid", "tid", "args"}, ...],
     "metrics": {...}}

:func:`chrome_trace` converts it to Chrome trace-event JSON
(microsecond ``ts``/``dur``, phase ``X``) loadable in Perfetto or
``chrome://tracing``.  The ``repro-trace`` CLI (:mod:`repro.obs.__main__`)
wraps record/summary/export.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class Tracer:
    """Thread-safe recorder of completed spans on one timeline."""

    def __init__(self) -> None:
        self.epoch_perf = time.perf_counter()
        self.epoch_wall = time.time()
        self.pid = os.getpid()
        self._spans: list[dict] = []
        self._lock = threading.Lock()

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self.epoch_perf

    def add_span(self, name: str, cat: str, start: float, dur: float,
                 args: dict | None = None, pid: int | None = None,
                 tid: int | None = None) -> None:
        """Record a completed span; *start* is relative to the epoch."""
        span = {
            "name": name,
            "cat": cat,
            "ts": start,
            "dur": max(dur, 0.0),
            "pid": self.pid if pid is None else pid,
            "tid": threading.get_ident() if tid is None else tid,
        }
        if args:
            span["args"] = args
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, cat: str = "", **args):
        """Context manager timing a block into a span."""
        return _SpanContext(self, name, cat, args)

    def absorb(self, spans: list[dict] | None,
               epoch_wall: float | None = None) -> None:
        """Fold spans from a child tracer onto this timeline.

        Child spans carry offsets from the *child's* epoch; the
        wall-clock difference between the epochs remaps them.  Perf
        counters are process-local, so wall time is the only shared
        clock — good to a few ms, plenty for stage-scale spans.
        """
        if not spans:
            return
        shift = 0.0 if epoch_wall is None else epoch_wall - self.epoch_wall
        with self._lock:
            for span in spans:
                remapped = dict(span)
                remapped["ts"] = span.get("ts", 0.0) + shift
                self._spans.append(remapped)

    def spans(self) -> list[dict]:
        """Spans so far, sorted by start time."""
        with self._lock:
            return sorted((dict(s) for s in self._spans),
                          key=lambda s: (s["ts"], s["name"]))

    def to_dict(self, metrics: dict | None = None) -> dict:
        data = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "epoch_wall": self.epoch_wall,
            "spans": self.spans(),
        }
        if metrics is not None:
            data["metrics"] = metrics
        return data

    def save(self, path: Path | str, metrics: dict | None = None) -> Path:
        """Write the native trace JSON (plus optional metrics snapshot)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(metrics), indent=2,
                                   sort_keys=True))
        return path


class _SpanContext:
    def __init__(self, tracer: Tracer, name: str, cat: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._start = self.tracer.now()
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.args = {**self.args, "error": exc_type.__name__}
        self.tracer.add_span(self.name, self.cat, self._start,
                             self.tracer.now() - self._start,
                             self.args or None)


def _unwrapped_runner(runner):
    return runner


class TracedRunner:
    """Wraps a stage runner so every execution records an ``exec`` span.

    Mirrors ``CoalescingRunner``: unpicklable by value (the tracer holds
    a lock), so ``__reduce__`` degrades to the wrapped runner when a
    process/shard backend ships it to a worker — workers that want spans
    run their own tracer (see ``repro.engine.shard``).
    """

    def __init__(self, tracer: Tracer, runner) -> None:
        self.tracer = tracer
        self.runner = runner

    def __call__(self, task, deps):
        with self.tracer.span(task.id, cat="exec", stage=task.stage):
            return self.runner(task, deps)

    def __reduce__(self):
        return (_unwrapped_runner, (self.runner,))


def load_trace(path: Path | str) -> dict:
    """Load a native trace file (validating the format marker)."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} file")
    return data


def chrome_trace(trace: dict) -> dict:
    """Convert a native trace dict to Chrome trace-event JSON."""
    events = []
    for span in trace.get("spans", ()):
        event = {
            "name": span["name"],
            "cat": span.get("cat") or "span",
            "ph": "X",
            "ts": span["ts"] * 1e6,
            "dur": span["dur"] * 1e6,
            "pid": span.get("pid", 0),
            "tid": span.get("tid", 0),
        }
        if span.get("args"):
            event["args"] = span["args"]
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize(trace: dict) -> list[dict]:
    """Aggregate spans per category: count, total, mean, max seconds."""
    by_cat: dict[str, list[float]] = {}
    for span in trace.get("spans", ()):
        by_cat.setdefault(span.get("cat") or "span", []).append(span["dur"])
    rows = []
    for cat in sorted(by_cat):
        durs = by_cat[cat]
        rows.append({
            "cat": cat,
            "count": len(durs),
            "total_seconds": sum(durs),
            "mean_seconds": sum(durs) / len(durs),
            "max_seconds": max(durs),
        })
    return rows
