"""``repro-trace`` CLI: record, summarize, and export engine traces.

* ``repro-trace record --figure fig04 --out trace.json`` — run one
  experiment figure (or ``--preset smoke`` for an explorer sweep) with
  tracing on; delegates to the experiments/explore CLIs' ``--trace``.
* ``repro-trace summary trace.json`` — per-category span rollup plus
  the embedded metrics snapshot's counters.
* ``repro-trace export trace.json --out chrome.json`` — Chrome
  trace-event JSON for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.trace import chrome_trace, load_trace, summarize


def _cmd_record(args) -> int:
    extra = ["--trace", args.out, "--workers", str(args.workers)]
    if args.backend:
        extra += ["--backend", args.backend]
    if args.cache_dir:
        extra += ["--cache-dir", args.cache_dir]
    if args.figure:
        from repro.experiments.__main__ import main as experiments_main
        return experiments_main(["--figures", args.figure, *extra])
    from repro.explore.__main__ import main as explore_main
    return explore_main(["run", "--preset", args.preset, *extra])


def _cmd_summary(args) -> int:
    trace = load_trace(args.path)
    rows = summarize(trace)
    if not rows:
        print("no spans recorded")
        return 0
    width = max(len(r["cat"]) for r in rows)
    print(f"{'category':<{width}}  {'count':>6}  {'total':>10}  "
          f"{'mean':>10}  {'max':>10}")
    for row in rows:
        print(f"{row['cat']:<{width}}  {row['count']:>6}  "
              f"{row['total_seconds']:>9.4f}s  {row['mean_seconds']:>9.4f}s  "
              f"{row['max_seconds']:>9.4f}s")
    metrics = (trace.get("metrics") or {}).get("metrics", ())
    if metrics:
        print(f"\n{len(metrics)} metric(s) in embedded snapshot:")
        for entry in metrics:
            data = entry["data"]
            if entry["kind"] == "counter":
                value = data["value"]
            elif entry["kind"] == "tagged_counter":
                value = dict(data.get("values", {}))
            else:
                value = f"count={data.get('count', 0)}"
            print(f"  {entry['name']} [{entry['kind']}] = {value}")
    return 0


def _cmd_export(args) -> int:
    trace = load_trace(args.path)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(trace), indent=2))
    print(f"wrote {len(trace.get('spans', ()))} events to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Record, summarize, and export engine span traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run one traced workload")
    record.add_argument("--out", required=True, help="trace output path")
    what = record.add_mutually_exclusive_group(required=True)
    what.add_argument("--figure", help="experiment figure, e.g. fig04")
    what.add_argument("--preset", help="explorer preset, e.g. smoke")
    record.add_argument("--workers", type=int, default=2)
    record.add_argument("--backend", default=None)
    record.add_argument("--cache-dir", default=None)
    record.set_defaults(func=_cmd_record)

    summary = sub.add_parser("summary", help="per-category span rollup")
    summary.add_argument("path")
    summary.set_defaults(func=_cmd_summary)

    export = sub.add_parser("export", help="emit Chrome trace-event JSON")
    export.add_argument("path")
    export.add_argument("--out", required=True)
    export.set_defaults(func=_cmd_export)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
