"""Structured stderr logging behind the ``REPRO_LOG_LEVEL`` env var.

One line per event: ``[name] <ISO-8601 UTC> LEVEL [job=...] message``.
The bracketed name leads the line (and the timestamp/level are inserted
*after* it), so existing consumers that grep for ``[repro-serve] `` plus
a message substring keep working unchanged.

``REPRO_LOG_LEVEL`` (debug/info/warning/error, default info) gates
emission; the logger is callable with a bare message for drop-in
compatibility with the plain ``log(message)`` callbacks it replaces.
"""

from __future__ import annotations

import datetime
import os
import sys

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
DEFAULT_LEVEL = "info"


def env_level() -> str:
    """The configured minimum level (unknown values fall back to info)."""
    raw = os.environ.get(LOG_LEVEL_ENV, DEFAULT_LEVEL).strip().lower()
    return raw if raw in LEVELS else DEFAULT_LEVEL


class StructuredLogger:
    """Callable leveled logger writing one structured line per event."""

    def __init__(self, name: str = "repro", stream=None,
                 level: str | None = None) -> None:
        self.name = name
        self.stream = stream
        self.level = (level or env_level()).lower()
        if self.level not in LEVELS:
            self.level = DEFAULT_LEVEL

    def log(self, message: str, level: str = "info",
            job: str | None = None) -> None:
        if LEVELS.get(level, LEVELS["info"]) < LEVELS[self.level]:
            return
        now = datetime.datetime.now(datetime.timezone.utc)
        stamp = now.strftime("%Y-%m-%dT%H:%M:%S.") + f"{now.microsecond // 1000:03d}Z"
        job_part = f" job={job}" if job else ""
        stream = self.stream if self.stream is not None else sys.stderr
        print(f"[{self.name}] {stamp} {level.upper()}{job_part} {message}",
              file=stream, flush=True)

    # Drop-in for plain `log(message)` callbacks.
    def __call__(self, message: str, level: str = "info",
                 job: str | None = None) -> None:
        self.log(message, level=level, job=job)

    def debug(self, message: str, **kw) -> None:
        self.log(message, level="debug", **kw)

    def info(self, message: str, **kw) -> None:
        self.log(message, level="info", **kw)

    def warning(self, message: str, **kw) -> None:
        self.log(message, level="warning", **kw)

    def error(self, message: str, **kw) -> None:
        self.log(message, level="error", **kw)
