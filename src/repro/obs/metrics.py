"""Declarative metrics: counters, tagged counters, exp-histograms.

A :class:`MetricsRegistry` holds named metrics keyed by ``(name, tags)``.
Four metric kinds cover everything the pipeline wants to report:

* :class:`Counter` — a monotonically increasing integer.
* :class:`TaggedCounter` — one counter per dynamic tag value (stage
  names, cache outcomes, store ops) under a single metric name.
* :class:`ExpHistogram` — a sparse base-2 exponential histogram; bucket
  ``k`` holds values in ``[2**(k-1), 2**k)``, so one dict entry per
  occupied power-of-two band records a full latency distribution.
* :class:`LatencyMeasurer` — an exp-histogram of seconds plus a context
  manager that times a block.  Always *volatile* (see below).

Every metric serializes to a deterministic JSON snapshot and merges
commutatively — counts add, mins/maxes combine — so per-worker
registries from the process/shard backends fold into the parent's
through the same seam that already merges store stats.  Metrics whose
values depend on wall-clock timing or dispatch interleaving (latency
measurers, queue-depth histograms) are flagged ``volatile``; dropping
them from a snapshot leaves exactly the backend-invariant part, which
the conformance suite asserts is identical across all five backends.

:func:`MetricsRegistry.render_prometheus` emits the text exposition
format served by the daemon's ``/v1/metrics`` endpoint.
"""

from __future__ import annotations

import math
import threading

#: Prometheus text exposition content type served by ``/v1/metrics``.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

SNAPSHOT_FORMAT = "repro-metrics"
SNAPSHOT_VERSION = 1


def bucket_index(value: float) -> int:
    """Base-2 exponential bucket for *value*.

    Bucket ``k`` covers ``[2**(k-1), 2**k)``; non-positive values land
    in bucket 0.  Works for sub-unit floats (seconds) via negative
    exponents: 1.5 ms falls in bucket -9 (``2**-10 <= v < 2**-9``).
    """
    if value <= 0:
        return 0
    return math.frexp(value)[1]


class Counter:
    """Monotonic integer counter."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot_data(self) -> dict:
        return {"value": self.value}

    def merge_data(self, data: dict) -> None:
        self.value += data.get("value", 0)


class TaggedCounter:
    """One counter per dynamic label value under a single name.

    *label* is the Prometheus label the values render under, e.g.
    ``engine_stages_executed{stage="compile"}``.
    """

    kind = "tagged_counter"

    def __init__(self, label: str = "key") -> None:
        self.label = label
        self.values: dict[str, int] = {}

    def inc(self, key: str, n: int = 1) -> None:
        self.values[key] = self.values.get(key, 0) + n

    def snapshot_data(self) -> dict:
        return {"label": self.label,
                "values": {k: self.values[k] for k in sorted(self.values)}}

    def merge_data(self, data: dict) -> None:
        for key, n in (data.get("values") or {}).items():
            self.inc(key, n)


class ExpHistogram:
    """Sparse base-2 exponential histogram with count/sum/min/max."""

    kind = "exp_histogram"

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def add(self, value: float) -> None:
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def snapshot_data(self) -> dict:
        # Int bucket keys: they pickle by value (no string-identity
        # memoization), keeping artifact pickles byte-identical across
        # process boundaries; JSON encoding coerces them to strings and
        # merge_data()/hist_distance() normalize either form back.
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {k: self.buckets[k] for k in sorted(self.buckets)},
        }

    def merge_data(self, data: dict) -> None:
        for key, n in (data.get("buckets") or {}).items():
            idx = int(key)
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += data.get("count", 0)
        self.sum += data.get("sum", 0.0)
        for attr, pick in (("min", min), ("max", max)):
            other = data.get(attr)
            if other is None:
                continue
            ours = getattr(self, attr)
            setattr(self, attr, other if ours is None else pick(ours, other))


class LatencyMeasurer:
    """Times code blocks into an exp-histogram of seconds.

    Use :meth:`observe` with a measured duration, or as a context
    manager around the block to time.  Always volatile: wall-clock
    durations are never backend-invariant.
    """

    kind = "latency"

    def __init__(self) -> None:
        self.hist = ExpHistogram()
        self._start: float | None = None

    def observe(self, seconds: float) -> None:
        self.hist.add(seconds)

    def __enter__(self) -> "LatencyMeasurer":
        from time import perf_counter
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        from time import perf_counter
        if self._start is not None:
            self.hist.add(perf_counter() - self._start)
            self._start = None

    def snapshot_data(self) -> dict:
        return self.hist.snapshot_data()

    def merge_data(self, data: dict) -> None:
        self.hist.merge_data(data)


_KINDS = {cls.kind: cls for cls in
          (Counter, TaggedCounter, ExpHistogram, LatencyMeasurer)}

#: Kinds that are volatile by construction, regardless of the flag
#: passed at registration.
_ALWAYS_VOLATILE = {"latency"}


def _tags_key(tags: dict | None) -> tuple:
    return tuple(sorted((tags or {}).items()))


class MetricsRegistry:
    """Named metrics with deterministic snapshots and commutative merge.

    Accessors are get-or-create: ``registry.counter("x").inc()`` works
    whether or not ``x`` exists yet.  All mutation through the
    convenience methods (:meth:`count`, :meth:`observe`,
    :meth:`observe_latency`) is lock-protected, so the daemon's worker
    threads can share one registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._volatile: set[tuple] = set()
        self._lock = threading.Lock()

    # -- get-or-create accessors ------------------------------------

    def _get(self, cls, name: str, tags: dict | None, volatile: bool,
             **kwargs):
        key = (name, _tags_key(tags))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(**kwargs)
            self._metrics[key] = metric
        if volatile or metric.kind in _ALWAYS_VOLATILE:
            self._volatile.add(key)
        return metric

    def counter(self, name: str, tags: dict | None = None,
                volatile: bool = False) -> Counter:
        return self._get(Counter, name, tags, volatile)

    def tagged(self, name: str, label: str = "key",
               tags: dict | None = None,
               volatile: bool = False) -> TaggedCounter:
        return self._get(TaggedCounter, name, tags, volatile, label=label)

    def histogram(self, name: str, tags: dict | None = None,
                  volatile: bool = False) -> ExpHistogram:
        return self._get(ExpHistogram, name, tags, volatile)

    def latency(self, name: str, tags: dict | None = None) -> LatencyMeasurer:
        return self._get(LatencyMeasurer, name, tags, True)

    # -- thread-safe convenience mutators ----------------------------

    def count(self, name: str, n: int = 1, tag: str | None = None,
              label: str = "key", tags: dict | None = None,
              volatile: bool = False) -> None:
        """Increment a counter (or, with *tag*, a tagged counter)."""
        with self._lock:
            if tag is None:
                self.counter(name, tags, volatile).inc(n)
            else:
                self.tagged(name, label, tags, volatile).inc(tag, n)

    def observe(self, name: str, value: float, tags: dict | None = None,
                volatile: bool = False) -> None:
        """Record *value* into an exp-histogram."""
        with self._lock:
            self.histogram(name, tags, volatile).add(value)

    def observe_latency(self, name: str, seconds: float,
                        tags: dict | None = None) -> None:
        """Record a measured duration into a latency measurer."""
        with self._lock:
            self.latency(name, tags).observe(seconds)

    # -- snapshot / merge seam ---------------------------------------

    def snapshot(self, include_volatile: bool = True) -> dict:
        """Deterministic JSON-able snapshot, sorted by (name, tags)."""
        with self._lock:
            entries = []
            for key in sorted(self._metrics):
                if not include_volatile and key in self._volatile:
                    continue
                name, tags = key
                metric = self._metrics[key]
                entries.append({
                    "name": name,
                    "kind": metric.kind,
                    "tags": dict(tags),
                    "volatile": key in self._volatile,
                    "data": metric.snapshot_data(),
                })
            return {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION,
                    "metrics": entries}

    def merge(self, other: "MetricsRegistry | dict | None") -> None:
        """Fold another registry (or its snapshot) into this one.

        Commutative and associative: counters add, histogram buckets
        add, mins/maxes combine — merging worker snapshots in any order
        yields the same registry.
        """
        if other is None:
            return
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) \
            else other
        for entry in snapshot.get("metrics", ()):
            cls = _KINDS[entry["kind"]]
            kwargs = {}
            if cls is TaggedCounter:
                kwargs["label"] = entry["data"].get("label", "key")
            with self._lock:
                metric = self._get(cls, entry["name"], entry["tags"],
                                   entry.get("volatile", False), **kwargs)
                metric.merge_data(entry["data"])

    # -- exposition --------------------------------------------------

    def render_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        snapshot = self.snapshot()
        lines: list[str] = []
        typed: set[str] = set()
        for entry in snapshot["metrics"]:
            lines.extend(_prometheus_lines(entry, typed))
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(tags: dict, extra: dict | None = None) -> str:
    items = dict(tags)
    if extra:
        items.update(extra)
    if not items:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_prom_escape(str(v))}"'
                     for k, v in sorted(items.items()))
    return "{" + inner + "}"


def _prometheus_lines(entry: dict, typed: set[str]) -> list[str]:
    name = _prom_name(entry["name"])
    tags = entry["tags"]
    data = entry["data"]
    kind = entry["kind"]
    lines: list[str] = []

    def declare(prom_type: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {prom_type}")

    if kind == "counter":
        declare("counter")
        lines.append(f"{name}{_prom_labels(tags)} {data['value']}")
    elif kind == "tagged_counter":
        declare("counter")
        label = data.get("label", "key")
        for key, value in data.get("values", {}).items():
            lines.append(f"{name}{_prom_labels(tags, {label: key})} {value}")
    else:  # exp_histogram / latency: cumulative buckets + sum + count
        declare("histogram")
        cumulative = 0
        for bucket, count in sorted(((int(k), v) for k, v in
                                     data.get("buckets", {}).items())):
            cumulative += count
            le = 2.0 ** bucket
            lines.append(
                f"{name}_bucket{_prom_labels(tags, {'le': repr(le)})} "
                f"{cumulative}")
        lines.append(
            f"{name}_bucket{_prom_labels(tags, {'le': '+Inf'})} "
            f"{data.get('count', 0)}")
        lines.append(f"{name}_sum{_prom_labels(tags)} {data.get('sum', 0.0)}")
        lines.append(f"{name}_count{_prom_labels(tags)} "
                     f"{data.get('count', 0)}")
    return lines


# -- histogram-dict helpers for fidelity scoring ---------------------
#
# Simulator histograms travel as snapshot_data() dicts inside
# TimingResult; the sweep aggregates per side and compares.

def merge_hist_data(into: dict | None, data: dict | None) -> dict | None:
    """Merge two ``ExpHistogram.snapshot_data()`` dicts (either None)."""
    if data is None:
        return into
    if into is None:
        hist = ExpHistogram()
        hist.merge_data(data)
        return hist.snapshot_data()
    hist = ExpHistogram()
    hist.merge_data(into)
    hist.merge_data(data)
    return hist.snapshot_data()


def hist_distance(a: dict | None, b: dict | None) -> float | None:
    """Total-variation distance between two histogram snapshots.

    Normalizes each bucket map to a probability distribution and
    returns ``0.5 * sum(|p - q|)`` — 0 for identical shapes, 1 for
    disjoint support.  None when either side is missing or empty, so
    callers can skip the component rather than score garbage.
    """
    if not a or not b:
        return None
    pa = {int(k): v for k, v in (a.get("buckets") or {}).items()}
    pb = {int(k): v for k, v in (b.get("buckets") or {}).items()}
    ta, tb = sum(pa.values()), sum(pb.values())
    if not ta or not tb:
        return None
    keys = set(pa) | set(pb)
    return 0.5 * sum(abs(pa.get(k, 0) / ta - pb.get(k, 0) / tb)
                     for k in keys)
