"""repro — benchmark synthesis for architecture and compiler exploration.

A complete reproduction of Van Ertvelde & Eeckhout (IISWC 2010): a
profile-driven generator of synthetic C benchmarks, together with every
substrate the paper's evaluation needs — a mini-C compiler with
-O0..-O3 pipelines, three virtual ISAs, functional and timing simulators,
cache and branch-predictor models, a MiBench-like workload suite and
Moss/JPlag-style plagiarism detectors.

Quickstart::

    from repro import profile_workload, synthesize, compile_program, run_binary

    profile, trace = profile_workload(c_source)       # paper's Fig. 1 left
    clone = synthesize(profile, target_instructions=20_000)
    binary = compile_program(clone.source, "x86_64", opt_level=2).binary
    result = run_binary(binary)                       # proxy measurement
"""

from repro.cc.driver import CompileResult, compile_program
from repro.engine import ArtifactStore, Engine, StoreStats
from repro.explore import (
    DesignSpace,
    PRESETS,
    ResultsDB,
    SearchResult,
    SweepResult,
    run_search,
    run_sweep,
)
from repro.obfuscation.report import SimilarityReport, compare_sources
from repro.profiling.profile import (
    StatisticalProfile,
    profile_trace,
    profile_workload,
)
from repro.sim.functional import SimTrap, Simulator, run_binary
from repro.sim.machines import (
    MACHINES,
    Machine,
    MachineSpec,
    TABLE_III_SPECS,
    machine_from_axes,
)
from repro.sim.trace import ExecutionTrace
from repro.synthesis.baseline import synthesize_linear
from repro.synthesis.synthesizer import (
    SyntheticBenchmark,
    synthesize,
    synthesize_consolidated,
)
from repro.workloads import (
    SynthRecipe,
    UnknownWorkloadError,
    WORKLOADS,
    Workload,
    WorkloadProvider,
    all_pairs,
    get_workload,
    register_provider,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "ArtifactStore",
    "CompileResult",
    "DesignSpace",
    "Engine",
    "ExecutionTrace",
    "MACHINES",
    "Machine",
    "MachineSpec",
    "PRESETS",
    "ResultsDB",
    "SearchResult",
    "SimTrap",
    "SimilarityReport",
    "StoreStats",
    "Simulator",
    "StatisticalProfile",
    "SweepResult",
    "SynthRecipe",
    "SyntheticBenchmark",
    "TABLE_III_SPECS",
    "UnknownWorkloadError",
    "WORKLOADS",
    "Workload",
    "WorkloadProvider",
    "all_pairs",
    "compare_sources",
    "compile_program",
    "get_workload",
    "machine_from_axes",
    "profile_trace",
    "profile_workload",
    "register_provider",
    "run_binary",
    "run_search",
    "run_sweep",
    "synthesize",
    "synthesize_consolidated",
    "synthesize_linear",
    "workload_names",
]
