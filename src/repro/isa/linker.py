"""Linker: lays out globals, resolves symbols, numbers instructions.

Produces a :class:`repro.isa.machine.Binary` ready for the functional
simulator.  Every static instruction receives a ``uid`` and every basic
block a global block id (``gbid``); profilers key their statistics on
these, mirroring how Pin attributes counts to instruction addresses.
"""

from __future__ import annotations

from repro.ir.instructions import IRProgram
from repro.isa.codegen import generate_function
from repro.isa.machine import AddressMode, Binary, MOp
from repro.isa.targets import ISA

_DATA_BASE = 64  # first global word address; low words stay unused
_STACK_ALIGN = 1024


class LinkError(Exception):
    """Raised for unresolved symbols or malformed programs."""


def link_program(ir_program: IRProgram, isa: ISA, opt_level: int = 0) -> Binary:
    """Generate code for every function and produce a linked binary."""
    binary = Binary(isa_name=isa.name, opt_level=opt_level)
    # 1. Lay out globals.
    address = _DATA_BASE
    image: list = []
    for name, gvar in ir_program.globals.items():
        binary.globals_layout[name] = address
        image.extend(gvar.init)
        if len(gvar.init) != gvar.size:
            raise LinkError(f"global {name!r}: init size mismatch")
        address += gvar.size
    binary.data_base = _DATA_BASE
    binary.data_image = image
    binary.stack_base = ((address + _STACK_ALIGN) // _STACK_ALIGN + 1) * _STACK_ALIGN
    # 2. Generate machine code.
    for name, func in ir_program.functions.items():
        mfunc = generate_function(func, isa)
        mfunc.index = len(binary.functions)
        binary.function_index[name] = mfunc.index
        binary.functions.append(mfunc)
    if "main" not in binary.function_index:
        raise LinkError("no main() in program")
    binary.entry = binary.function_index["main"]
    # 3. Resolve symbols, assign uids and gbids.
    uid = 0
    gbid = 0
    for func in binary.functions:
        for blk_idx, blk in enumerate(func.blocks):
            blk.gbid = gbid
            binary.block_map.append((func.index, blk_idx))
            gbid += 1
            for ins_idx, mop in enumerate(blk.instrs):
                mop.uid = uid
                binary.uid_map.append((func.index, blk_idx, ins_idx))
                uid += 1
                _resolve(mop, binary)
    binary.total_static_instructions = uid
    return binary


def _resolve(mop: MOp, binary: Binary) -> None:
    """Resolve symbolic addresses and call targets in place."""
    if mop.addr is not None:
        mode, base, idx_reg, off = mop.addr
        if mode == AddressMode.ABS and isinstance(base, str):
            if base not in binary.globals_layout:
                raise LinkError(f"undefined symbol {base!r}")
            mop.addr = (mode, binary.globals_layout[base], idx_reg, off)
    if mop.op == "call":
        name = mop.fmt
        if name not in binary.function_index:
            raise LinkError(f"call to undefined function {name!r}")
        mop.target = binary.function_index[name]
