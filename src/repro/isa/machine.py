"""Machine-level instruction format shared by the virtual ISAs.

Instructions carry physical register indices and resolved addresses.  The
format is deliberately close to real assembly:

* integer and float register files are separate;
* addresses are (mode, base, index-reg, offset) tuples resolved by the
  linker — ``ABS`` for globals, ``FP`` for frame slots, ``REG`` for
  computed bases (array parameters);
* conditional branches (``bt``/``bf``) have a taken target block and fall
  through to the next block in layout order, so "taken" is meaningful;
* every instruction has a ``klass`` used by profilers and timing models:
  ``load store branch jump call ret ialu imul idiv falu fmul fdiv fmath
  print other``.

Word addressing: one word = 4 bytes; byte addresses (for cache simulation)
are ``word_address << 2``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AddressMode(enum.IntEnum):
    """Addressing modes after linking."""

    ABS = 0  # base = absolute word address (globals)
    FP = 1  # base = frame-pointer-relative word offset (locals, spills)
    REG = 2  # base = integer register holding a word address


KLASS_NAMES = (
    "load",
    "store",
    "branch",
    "jump",
    "call",
    "ret",
    "ialu",
    "imul",
    "idiv",
    "falu",
    "fmul",
    "fdiv",
    "fmath",
    "print",
    "other",
)

# Opcode -> klass.  Fused CISC ALU ops with a memory operand keep their ALU
# klass but set ``addr`` (they count as arithmetic in the mix, yet produce
# a data-cache access — like ``addl t+504, %eax``).
OP_KLASS = {
    "li": "ialu",
    "lif": "falu",
    "ld": "load",
    "fld": "load",
    "st": "store",
    "fst": "store",
    "lea": "ialu",
    "mov": "ialu",
    "fmov": "falu",
    "add": "ialu",
    "sub": "ialu",
    "mul": "imul",
    "div": "idiv",
    "udiv": "idiv",
    "mod": "idiv",
    "umod": "idiv",
    "and": "ialu",
    "or": "ialu",
    "xor": "ialu",
    "shl": "ialu",
    "shr": "ialu",
    "sar": "ialu",
    "neg": "ialu",
    "not": "ialu",
    "lognot": "ialu",
    "absi": "ialu",
    "cmpeq": "ialu",
    "cmpne": "ialu",
    "cmplt": "ialu",
    "cmple": "ialu",
    "cmpgt": "ialu",
    "cmpge": "ialu",
    "cmpltu": "ialu",
    "cmpleu": "ialu",
    "cmpgtu": "ialu",
    "cmpgeu": "ialu",
    "fadd": "falu",
    "fsub": "falu",
    "fmul": "fmul",
    "fdiv": "fdiv",
    "fneg": "falu",
    "fcmpeq": "falu",
    "fcmpne": "falu",
    "fcmplt": "falu",
    "fcmple": "falu",
    "fcmpgt": "falu",
    "fcmpge": "falu",
    "itof": "falu",
    "utof": "falu",
    "ftoi": "falu",
    "sqrt": "fmath",
    "sin": "fmath",
    "cos": "fmath",
    "log": "fmath",
    "exp": "fmath",
    "fabs": "falu",
    "floor": "fmath",
    "arg": "ialu",
    "farg": "falu",
    "bt": "branch",
    "bf": "branch",
    "jmp": "jump",
    "call": "call",
    "ret": "ret",
    "print": "print",
}


class MOp:
    """One machine instruction.

    Generic fields (meaning depends on ``op``):

    * ``dst``  — destination register index (int or float file per op);
    * ``a``    — first source register index;
    * ``b_reg``/``b_imm`` — second operand: register or immediate
      (exactly one is set for two-operand ALU instructions);
    * ``addr`` — (mode, base, index_reg, offset) for memory instructions
      or fused ALU ops;
    * ``target`` — taken block index (branches/jumps), function index
      (calls);
    * ``args`` — call argument descriptors or print arguments;
    * ``fmt``  — printf format string;
    * ``uid``  — global static instruction id (assigned at link time),
      used to attribute profile statistics to static instructions.
    """

    __slots__ = (
        "op",
        "klass",
        "dst",
        "a",
        "b_reg",
        "b_imm",
        "addr",
        "target",
        "args",
        "fmt",
        "uid",
    )

    def __init__(
        self,
        op: str,
        dst: int | None = None,
        a: int | None = None,
        b_reg: int | None = None,
        b_imm: int | float | None = None,
        addr: tuple | None = None,
        target: int | None = None,
        args: list | None = None,
        fmt: str | None = None,
    ):
        self.op = op
        self.klass = OP_KLASS[op]
        self.dst = dst
        self.a = a
        self.b_reg = b_reg
        self.b_imm = b_imm
        self.addr = addr
        self.target = target
        self.args = args
        self.fmt = fmt
        self.uid = -1

    @property
    def is_memory(self) -> bool:
        """True if this instruction performs a data memory access.

        ``lea`` only computes an address, so it is excluded; fused CISC
        ALU ops with a memory operand are included.
        """
        return self.addr is not None and self.op != "lea"

    @property
    def is_store(self) -> bool:
        return self.op in ("st", "fst")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        if self.dst is not None:
            parts.append(f"r{self.dst}")
        if self.a is not None:
            parts.append(f"r{self.a}")
        if self.b_reg is not None:
            parts.append(f"r{self.b_reg}")
        if self.b_imm is not None:
            parts.append(f"#{self.b_imm}")
        if self.addr is not None:
            parts.append(f"@{self.addr}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        return " ".join(parts)


@dataclass
class MachineBlock:
    """A machine basic block.

    ``taken_target``/branch semantics: the block's last instruction may be
    ``bt``/``bf`` (conditional, target = taken block index, falls through
    to ``fall_through``) or ``jmp``/``ret``.  A block with neither falls
    through unconditionally.
    """

    label: str
    instrs: list[MOp] = field(default_factory=list)
    fall_through: int | None = None  # next block index in layout order
    gbid: int = -1  # global block id assigned at link time
    loop_header: bool = False


@dataclass
class MachineFunction:
    """Machine code for one function."""

    name: str
    index: int = -1
    blocks: list[MachineBlock] = field(default_factory=list)
    frame_size: int = 0  # words
    # (kind, where, index) per parameter: kind in {'i', 'f'}, where 'r'
    # (register index) or 's' (frame slot offset — the calling convention
    # deposits spilled parameters straight into the callee frame, like
    # stack arguments on a real ABI).
    param_locs: list[tuple[str, str, int]] = field(default_factory=list)
    num_int_regs: int = 8
    num_float_regs: int = 8

    def instruction_count(self) -> int:
        return sum(len(blk.instrs) for blk in self.blocks)


@dataclass
class Binary:
    """A linked program: functions, data image, symbol table."""

    isa_name: str
    opt_level: int
    functions: list[MachineFunction] = field(default_factory=list)
    function_index: dict[str, int] = field(default_factory=dict)
    globals_layout: dict[str, int] = field(default_factory=dict)  # symbol -> word addr
    data_image: list = field(default_factory=list)  # initial global words
    data_base: int = 64  # first global word address
    stack_base: int = 0  # first stack word address (set by linker)
    entry: int = 0  # index of main()
    total_static_instructions: int = 0
    # uid -> (function index, block index, instr index) for attribution
    uid_map: list[tuple[int, int, int]] = field(default_factory=list)
    # gbid -> (function index, block index)
    block_map: list[tuple[int, int]] = field(default_factory=list)

    def function(self, name: str) -> MachineFunction:
        return self.functions[self.function_index[name]]

    def instr_by_uid(self, uid: int) -> MOp:
        func_idx, blk_idx, ins_idx = self.uid_map[uid]
        return self.functions[func_idx].blocks[blk_idx].instrs[ins_idx]

    def block_by_gbid(self, gbid: int) -> MachineBlock:
        func_idx, blk_idx = self.block_map[gbid]
        return self.functions[func_idx].blocks[blk_idx]

    def static_instruction_count(self) -> int:
        return sum(func.instruction_count() for func in self.functions)
