"""Virtual instruction-set architectures and code generation.

Three targets mirror the paper's hardware mix (§IV, Table III):

* ``x86``    — 32-bit CISC: 8 integer / 8 float registers, load-op fusion
               at O1+ (memory operands on ALU instructions);
* ``x86_64`` — 64-bit: 16/16 registers, load-op fusion;
* ``ia64``   — EPIC-style: 32/32 visible registers, strict load/store,
               no fusion; paired with an in-order timing model so compiler
               scheduling quality shows through (the paper's Itanium 2
               observation in Fig. 11).

Machine code is a linearized sequence of basic blocks per function;
conditional branches have explicit taken-target/fall-through semantics so
branch taken and transition rates are well defined (§III-A.2).
"""

from repro.isa.machine import (
    AddressMode,
    Binary,
    KLASS_NAMES,
    MachineBlock,
    MachineFunction,
    MOp,
)
from repro.isa.targets import ISA, ISA_BY_NAME, IA64, X86, X86_64
from repro.isa.codegen import generate_function
from repro.isa.linker import link_program

__all__ = [
    "AddressMode",
    "Binary",
    "IA64",
    "ISA",
    "ISA_BY_NAME",
    "KLASS_NAMES",
    "MOp",
    "MachineBlock",
    "MachineFunction",
    "X86",
    "X86_64",
    "generate_function",
    "link_program",
]
