"""ISA target descriptions.

Register counts model what a compiler can actually allocate; the last two
registers of each file are reserved as spill scratch.  ``cisc_fusion``
enables the load-op peephole (memory operands on ALU instructions) that
distinguishes x86-style CISC encodings from the IA64 load/store
discipline — one of the mechanisms behind the per-ISA instruction-count
differences in the paper's Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ISA:
    """Static description of a virtual instruction-set architecture."""

    name: str
    int_regs: int  # total integer registers (incl. 2 scratch)
    float_regs: int  # total float registers (incl. 2 scratch)
    cisc_fusion: bool  # allow ALU ops with a memory source operand at O1+
    wordsize_bits: int = 32
    description: str = ""

    @property
    def allocatable_int(self) -> int:
        return self.int_regs - 2

    @property
    def allocatable_float(self) -> int:
        return self.float_regs - 2

    @property
    def int_scratch(self) -> tuple[int, int]:
        return (self.int_regs - 2, self.int_regs - 1)

    @property
    def float_scratch(self) -> tuple[int, int]:
        return (self.float_regs - 2, self.float_regs - 1)


X86 = ISA(
    name="x86",
    int_regs=8,
    float_regs=8,
    cisc_fusion=True,
    wordsize_bits=32,
    description="32-bit CISC: few registers, load-op memory operands",
)

X86_64 = ISA(
    name="x86_64",
    int_regs=16,
    float_regs=16,
    cisc_fusion=True,
    wordsize_bits=64,
    description="64-bit CISC: 16 registers, load-op memory operands",
)

IA64 = ISA(
    name="ia64",
    int_regs=32,
    float_regs=32,
    cisc_fusion=False,
    wordsize_bits=64,
    description="EPIC: large register file, strict load/store, static scheduling",
)

ISA_BY_NAME = {isa.name: isa for isa in (X86, X86_64, IA64)}
