"""IR to machine-code generation.

One IR basic block maps to one machine block in the same order; virtual
registers are replaced by physical registers from the linear-scan
allocation, with spill traffic through the target's reserved scratch
registers.  Branches are lowered to taken-target/fall-through form
(``bt``/``bf``), which is what gives branch *taken rates* meaning at the
machine level.

Symbols (global addresses, call targets) remain symbolic here; the linker
resolves them.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Address,
    BinOp,
    Branch,
    Call,
    Const,
    IRFunction,
    Jump,
    Load,
    LoadAddress,
    LoadConst,
    Print,
    Ret,
    StackSlot,
    Store,
    Temp,
    UnOp,
)
from repro.isa.machine import AddressMode, MachineBlock, MachineFunction, MOp
from repro.isa.targets import ISA
from repro.opt.regalloc import Allocation, allocate_registers


class CodegenError(Exception):
    """Raised on unexpected IR during instruction selection."""


class _FuncCodegen:
    """Generates machine code for one function."""

    def __init__(self, func: IRFunction, isa: ISA, allocation: Allocation):
        self.func = func
        self.isa = isa
        self.allocation = allocation
        self.mfunc = MachineFunction(
            name=func.name,
            num_int_regs=isa.int_regs,
            num_float_regs=isa.float_regs,
        )
        self.block_index = {blk.label: i for i, blk in enumerate(func.blocks)}
        self.current: MachineBlock | None = None
        # Frame layout: slot name -> word offset.
        self.slot_offsets: dict[str, int] = {}
        offset = 0
        for slot in func.stack_slots:
            self.slot_offsets[slot.name] = offset
            offset += slot.size
        self.mfunc.frame_size = offset
        self._int_scratch = isa.int_scratch
        self._float_scratch = isa.float_scratch

    # -- operand materialization ----------------------------------------

    def emit(self, mop: MOp) -> None:
        self.current.instrs.append(mop)

    def _temp_reg(self, temp: Temp, scratch_index: int) -> int:
        """Physical register holding *temp*, loading from a spill slot."""
        where, value = self.allocation.location(temp)
        if where == "reg":
            return value
        slot: StackSlot = value
        offset = self.slot_offsets[slot.name]
        if temp.kind == "f":
            scratch = self._float_scratch[scratch_index]
            self.emit(MOp("fld", dst=scratch, addr=(AddressMode.FP, offset, None, 0)))
        else:
            scratch = self._int_scratch[scratch_index]
            self.emit(MOp("ld", dst=scratch, addr=(AddressMode.FP, offset, None, 0)))
        return scratch

    def _operand_reg(self, operand, scratch_index: int) -> int:
        """Materialize any operand into a register."""
        if isinstance(operand, Temp):
            return self._temp_reg(operand, scratch_index)
        if isinstance(operand, Const):
            if isinstance(operand.value, float):
                scratch = self._float_scratch[scratch_index]
                self.emit(MOp("lif", dst=scratch, b_imm=float(operand.value)))
            else:
                scratch = self._int_scratch[scratch_index]
                self.emit(MOp("li", dst=scratch, b_imm=int(operand.value)))
            return scratch
        raise CodegenError(f"cannot materialize operand {operand!r}")

    def _dest(self, temp: Temp) -> tuple[int, int | None]:
        """(register to compute into, spill offset to store to afterwards)."""
        where, value = self.allocation.location(temp)
        if where == "reg":
            return value, None
        offset = self.slot_offsets[value.name]
        scratch = self._float_scratch[0] if temp.kind == "f" else self._int_scratch[0]
        return scratch, offset

    def _finish_dest(self, temp: Temp, reg: int, spill_offset: int | None) -> None:
        if spill_offset is None:
            return
        op = "fst" if temp.kind == "f" else "st"
        self.emit(MOp(op, a=reg, addr=(AddressMode.FP, spill_offset, None, 0)))

    def _address(
        self, addr: Address, base_scratch: int = 0, idx_scratch: int = 1
    ) -> tuple:
        """Lower an IR address to a machine (mode, base, idx, off) tuple.

        Callers assign distinct scratch indices so a spilled base, index
        and other operand never collide (store legalization guarantees at
        most two temps appear in any one memory instruction).
        """
        index_reg = None
        offset = 0
        if isinstance(addr.index, Const):
            offset = int(addr.index.value)
        elif isinstance(addr.index, Temp):
            index_reg = self._temp_reg(addr.index, idx_scratch)
        if isinstance(addr.base, str):
            return (AddressMode.ABS, addr.base, index_reg, offset)
        if isinstance(addr.base, StackSlot):
            base = self.slot_offsets[addr.base.name]
            return (AddressMode.FP, base, index_reg, offset)
        if isinstance(addr.base, Temp):
            base_reg = self._temp_reg(addr.base, base_scratch)
            return (AddressMode.REG, base_reg, index_reg, offset)
        raise CodegenError(f"cannot lower address {addr!r}")

    # -- instruction selection -------------------------------------------

    def generate(self) -> MachineFunction:
        # Parameter locations: where the calling convention deposits
        # arguments (register, or callee frame slot when spilled).
        for temp in self.func.param_temps:
            where, value = self.allocation.location(temp)
            if where == "reg":
                self.mfunc.param_locs.append((temp.kind, "r", value))
            else:
                offset = self.slot_offsets[value.name]
                self.mfunc.param_locs.append((temp.kind, "s", offset))
        for blk in self.func.blocks:
            mblock = MachineBlock(label=blk.label)
            self.mfunc.blocks.append(mblock)
        for blk_idx, blk in enumerate(self.func.blocks):
            self.current = self.mfunc.blocks[blk_idx]
            if blk_idx + 1 < len(self.func.blocks):
                self.current.fall_through = blk_idx + 1
            next_label = (
                self.func.blocks[blk_idx + 1].label
                if blk_idx + 1 < len(self.func.blocks)
                else None
            )
            for instr in blk.instrs:
                self._select(instr, next_label)
        return self.mfunc

    def _select(self, instr, next_label: str | None) -> None:
        if isinstance(instr, LoadConst):
            reg, spill = self._dest(instr.dst)
            op = "lif" if instr.dst.kind == "f" else "li"
            self.emit(MOp(op, dst=reg, b_imm=instr.value))
            self._finish_dest(instr.dst, reg, spill)
        elif isinstance(instr, Load):
            addr = self._address(instr.addr)
            reg, spill = self._dest(instr.dst)
            op = "fld" if instr.dst.kind == "f" else "ld"
            self.emit(MOp(op, dst=reg, addr=addr))
            self._finish_dest(instr.dst, reg, spill)
        elif isinstance(instr, Store):
            self._select_store(instr)
        elif isinstance(instr, LoadAddress):
            if isinstance(instr.base, str):
                addr = (AddressMode.ABS, instr.base, None, 0)
            else:
                addr = (AddressMode.FP, self.slot_offsets[instr.base.name], None, 0)
            reg, spill = self._dest(instr.dst)
            self.emit(MOp("lea", dst=reg, addr=addr))
            self._finish_dest(instr.dst, reg, spill)
        elif isinstance(instr, BinOp):
            self._select_binop(instr)
        elif isinstance(instr, UnOp):
            self._select_unop(instr)
        elif isinstance(instr, Call):
            self._select_call(instr)
        elif isinstance(instr, Print):
            self._select_print(instr)
        elif isinstance(instr, Branch):
            self._select_branch(instr, next_label)
        elif isinstance(instr, Jump):
            if instr.label != next_label:
                self.emit(MOp("jmp", target=self.block_index[instr.label]))
        elif isinstance(instr, Ret):
            self._select_ret(instr)
        else:
            raise CodegenError(f"cannot select {instr!r}")

    def _select_store(self, instr: Store) -> None:
        # Store legalization guarantees the address holds at most one
        # temp; it goes through scratch 1, the source through scratch 0.
        addr = self._address(instr.addr, base_scratch=1, idx_scratch=1)
        if isinstance(instr.src, Const):
            op = "fst" if isinstance(instr.src.value, float) else "st"
            self.emit(MOp(op, b_imm=instr.src.value, addr=addr))
            return
        src_reg = self._temp_reg(instr.src, 0)
        op = "fst" if instr.src.kind == "f" else "st"
        self.emit(MOp(op, a=src_reg, addr=addr))

    def _select_binop(self, instr: BinOp) -> None:
        lhs_reg = self._operand_reg(instr.lhs, 0)
        if isinstance(instr.rhs, Address):
            # Fused CISC memory operand (from the fusion pass); fusion
            # guarantees at most one temp in the address, so scratch 1 is
            # free for it (the lhs uses scratch 0).
            addr = self._address(instr.rhs, base_scratch=1, idx_scratch=1)
            reg, spill = self._dest(instr.dst)
            self.emit(MOp(instr.op, dst=reg, a=lhs_reg, addr=addr))
            self._finish_dest(instr.dst, reg, spill)
            return
        reg, spill = self._dest(instr.dst)
        if isinstance(instr.rhs, Const):
            self.emit(MOp(instr.op, dst=reg, a=lhs_reg, b_imm=instr.rhs.value))
        else:
            rhs_reg = self._temp_reg(instr.rhs, 1)
            self.emit(MOp(instr.op, dst=reg, a=lhs_reg, b_reg=rhs_reg))
        self._finish_dest(instr.dst, reg, spill)

    def _select_unop(self, instr: UnOp) -> None:
        if instr.op in ("mov", "fmov") and isinstance(instr.src, Const):
            reg, spill = self._dest(instr.dst)
            op = "lif" if instr.op == "fmov" else "li"
            self.emit(MOp(op, dst=reg, b_imm=instr.src.value))
            self._finish_dest(instr.dst, reg, spill)
            return
        src_reg = self._operand_reg(instr.src, 0)
        reg, spill = self._dest(instr.dst)
        self.emit(MOp(instr.op, dst=reg, a=src_reg))
        self._finish_dest(instr.dst, reg, spill)

    def _select_call(self, instr: Call) -> None:
        for arg in instr.args:
            if isinstance(arg, Const):
                op = "farg" if isinstance(arg.value, float) else "arg"
                self.emit(MOp(op, b_imm=arg.value))
            else:
                reg = self._temp_reg(arg, 0)
                op = "farg" if arg.kind == "f" else "arg"
                self.emit(MOp(op, a=reg))
        if instr.dst is None:
            self.emit(MOp("call", fmt=instr.func))
            return
        reg, spill = self._dest(instr.dst)
        self.emit(MOp("call", dst=reg, fmt=instr.func, b_imm=instr.dst.kind))
        self._finish_dest(instr.dst, reg, spill)

    def _select_print(self, instr: Print) -> None:
        # Arguments go through the same staging mechanism as calls: each
        # 'arg' reads its register immediately, so spilled values never
        # need to be live simultaneously in scratch registers.
        for arg in instr.args:
            if isinstance(arg, Const):
                op = "farg" if isinstance(arg.value, float) else "arg"
                self.emit(MOp(op, b_imm=arg.value))
            else:
                reg = self._temp_reg(arg, 0)
                op = "farg" if arg.kind == "f" else "arg"
                self.emit(MOp(op, a=reg))
        self.emit(MOp("print", fmt=instr.fmt, args=len(instr.args)))

    def _select_branch(self, instr: Branch, next_label: str | None) -> None:
        if isinstance(instr.cond, Const):
            target = instr.then_label if instr.cond.value else instr.other_label
            if target != next_label:
                self.emit(MOp("jmp", target=self.block_index[target]))
            return
        cond_reg = self._temp_reg(instr.cond, 0)
        then_idx = self.block_index[instr.then_label]
        other_idx = self.block_index[instr.other_label]
        if instr.other_label == next_label:
            self.emit(MOp("bt", a=cond_reg, target=then_idx))
        elif instr.then_label == next_label:
            self.emit(MOp("bf", a=cond_reg, target=other_idx))
        else:
            self.emit(MOp("bt", a=cond_reg, target=then_idx))
            self.emit(MOp("jmp", target=other_idx))

    def _select_ret(self, instr: Ret) -> None:
        if instr.value is None:
            self.emit(MOp("ret"))
            return
        if isinstance(instr.value, Const):
            self.emit(MOp("ret", b_imm=instr.value.value))
            return
        reg = self._temp_reg(instr.value, 0)
        if instr.value.kind == "f":
            self.emit(MOp("ret", b_reg=reg))
        else:
            self.emit(MOp("ret", a=reg))


def _legalize_stores(func: IRFunction) -> None:
    """Rewrite stores whose address has two temps (base and index).

    ``a[i] = src`` with both the array base and the index in temps would
    need three scratch registers when everything spills; precomputing
    ``base + index`` bounds every memory instruction to two temps.
    """
    for blk in func.blocks:
        rewritten: list = []
        for instr in blk.instrs:
            if (
                isinstance(instr, Store)
                and isinstance(instr.addr.base, Temp)
                and isinstance(instr.addr.index, Temp)
            ):
                combined = func.new_temp("i")
                rewritten.append(
                    BinOp("add", combined, instr.addr.base, instr.addr.index)
                )
                instr.addr = Address(combined, None)
            rewritten.append(instr)
        blk.instrs = rewritten


def _split_at_calls(mfunc: MachineFunction) -> None:
    """Split blocks so that ``call`` always terminates its block.

    Pin-style basic blocks end at calls; this keeps the dynamic block
    trace unambiguous (every trace transition is a branch edge, a call
    edge, or a return edge), which the SFGL builder relies on.
    """
    new_blocks: list[MachineBlock] = []
    index_map: dict[int, int] = {}
    for old_idx, blk in enumerate(mfunc.blocks):
        index_map[old_idx] = len(new_blocks)
        parts: list[list[MOp]] = []
        current: list[MOp] = []
        for ins in blk.instrs:
            current.append(ins)
            if ins.op == "call":
                parts.append(current)
                current = []
        parts.append(current)
        if len(parts) > 1 and not parts[-1]:
            parts.pop()  # call was the last instruction: fall to next block
        for j, part in enumerate(parts):
            label = blk.label if j == 0 else f"{blk.label}.c{j}"
            new_blocks.append(MachineBlock(label=label, instrs=part))
    for i, blk in enumerate(new_blocks):
        blk.fall_through = i + 1 if i + 1 < len(new_blocks) else None
        for ins in blk.instrs:
            if ins.op in ("bt", "bf", "jmp"):
                ins.target = index_map[ins.target]
    mfunc.blocks = new_blocks


def generate_function(func: IRFunction, isa: ISA) -> MachineFunction:
    """Allocate registers for *func* and emit machine code for *isa*."""
    _legalize_stores(func)
    allocation = allocate_registers(func, isa.allocatable_int, isa.allocatable_float)
    mfunc = _FuncCodegen(func, isa, allocation).generate()
    _split_at_calls(mfunc)
    return mfunc
