"""Recursive-descent parser for the mini-C dialect.

Grammar (informal):

    program     := (global_decl | function)*
    function    := type IDENT '(' params ')' block
    global_decl := type IDENT ('[' INT ']')? ('=' initializer)? ';'
    block       := '{' stmt* '}'
    stmt        := decl | if | for | while | do_while | break | continue
                 | return | block | expr ';' | ';'
    expr        := assignment (with C precedence below)

Expression precedence follows C: assignment < ternary < || < && < | < ^ <
& < equality < relational < shift < additive < multiplicative < unary <
postfix.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.types import ScalarType, scalar_from_name

_TYPE_KEYWORDS = {
    TokenKind.KW_INT,
    TokenKind.KW_UNSIGNED,
    TokenKind.KW_FLOAT,
    TokenKind.KW_DOUBLE,
    TokenKind.KW_VOID,
}

_ASSIGN_OPS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
    TokenKind.PERCENT_ASSIGN: "%=",
    TokenKind.AMP_ASSIGN: "&=",
    TokenKind.PIPE_ASSIGN: "|=",
    TokenKind.CARET_ASSIGN: "^=",
    TokenKind.LSHIFT_ASSIGN: "<<=",
    TokenKind.RSHIFT_ASSIGN: ">>=",
}

# Binary precedence table: level -> [(TokenKind, spelling)].  Lower index
# binds more loosely.
_BINARY_LEVELS: list[list[tuple[TokenKind, str]]] = [
    [(TokenKind.OR_OR, "||")],
    [(TokenKind.AND_AND, "&&")],
    [(TokenKind.PIPE, "|")],
    [(TokenKind.CARET, "^")],
    [(TokenKind.AMP, "&")],
    [(TokenKind.EQ, "=="), (TokenKind.NE, "!=")],
    [(TokenKind.LT, "<"), (TokenKind.GT, ">"), (TokenKind.LE, "<="), (TokenKind.GE, ">=")],
    [(TokenKind.LSHIFT, "<<"), (TokenKind.RSHIFT, ">>")],
    [(TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")],
    [(TokenKind.STAR, "*"), (TokenKind.SLASH, "/"), (TokenKind.PERCENT, "%")],
]


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self.current.kind is kind

    def _match(self, kind: TokenKind) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        if not self._check(kind):
            found = self.current.text or self.current.kind.value
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted}, found {found!r}", self.current.line, self.current.column
            )
        return self._advance()

    # -- top level -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse a full translation unit."""
        program = ast.Program()
        while not self._check(TokenKind.EOF):
            if self.current.kind not in _TYPE_KEYWORDS:
                raise ParseError(
                    f"expected declaration, found {self.current.text!r}",
                    self.current.line,
                    self.current.column,
                )
            # Lookahead: type IDENT '(' starts a function.
            if self._peek().kind is TokenKind.IDENT and self._peek(2).kind is TokenKind.LPAREN:
                program.functions.append(self._parse_function())
            else:
                program.globals.append(self._parse_global())
        return program

    def _parse_type(self) -> ScalarType:
        token = self._advance()
        if token.kind not in _TYPE_KEYWORDS:
            raise ParseError(f"expected type, found {token.text!r}", token.line, token.column)
        name = token.kind.value
        # 'unsigned int' is accepted as a synonym for 'unsigned'.
        if token.kind is TokenKind.KW_UNSIGNED and self._check(TokenKind.KW_INT):
            self._advance()
        return scalar_from_name(name)

    def _parse_function(self) -> ast.FuncDecl:
        line = self.current.line
        return_type = self._parse_type()
        name = self._expect(TokenKind.IDENT, "function name").text
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._check(TokenKind.RPAREN):
            if self._check(TokenKind.KW_VOID) and self._peek().kind is TokenKind.RPAREN:
                self._advance()
            else:
                params.append(self._parse_param())
                while self._match(TokenKind.COMMA):
                    params.append(self._parse_param())
        self._expect(TokenKind.RPAREN)
        body = self._parse_block()
        return ast.FuncDecl(name=name, return_type=return_type, params=params, body=body, line=line)

    def _parse_param(self) -> ast.Param:
        line = self.current.line
        base = self._parse_type()
        name = self._expect(TokenKind.IDENT, "parameter name").text
        is_array = False
        if self._match(TokenKind.LBRACKET):
            # Extent, if present, is ignored for parameters (C semantics).
            if self._check(TokenKind.INT_LIT):
                self._advance()
            self._expect(TokenKind.RBRACKET)
            is_array = True
        return ast.Param(name=name, base_type=base, is_array=is_array, line=line)

    def _parse_global(self) -> ast.Decl:
        decl = self._parse_decl()
        return decl

    # -- statements --------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self.current.line
        self._expect(TokenKind.LBRACE)
        stmts: list[ast.Stmt] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated block", line, 0)
            stmts.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE)
        return ast.Block(stmts=stmts, line=line)

    def _parse_stmt(self) -> ast.Stmt:
        kind = self.current.kind
        if kind in _TYPE_KEYWORDS:
            return self._parse_decl()
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_BREAK:
            token = self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Break(line=token.line)
        if kind is TokenKind.KW_CONTINUE:
            token = self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Continue(line=token.line)
        if kind is TokenKind.KW_RETURN:
            token = self._advance()
            value = None if self._check(TokenKind.SEMI) else self._parse_expr()
            self._expect(TokenKind.SEMI)
            return ast.Return(value=value, line=token.line)
        if kind is TokenKind.SEMI:
            token = self._advance()
            return ast.Block(stmts=[], line=token.line)
        expr = self._parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.ExprStmt(expr=expr, line=expr.line)

    def _parse_decl(self) -> ast.Decl:
        line = self.current.line
        base = self._parse_type()
        name = self._expect(TokenKind.IDENT, "variable name").text
        array_length = None
        if self._match(TokenKind.LBRACKET):
            length_tok = self._expect(TokenKind.INT_LIT, "array length")
            array_length = int(length_tok.value)
            self._expect(TokenKind.RBRACKET)
        init: ast.Expr | list[ast.Expr] | None = None
        if self._match(TokenKind.ASSIGN):
            if self._check(TokenKind.LBRACE):
                init = self._parse_initializer_list()
            else:
                init = self._parse_assignment()
        self._expect(TokenKind.SEMI)
        return ast.Decl(
            name=name, base_type=base, array_length=array_length, init=init, line=line
        )

    def _parse_initializer_list(self) -> list[ast.Expr]:
        self._expect(TokenKind.LBRACE)
        items: list[ast.Expr] = []
        if not self._check(TokenKind.RBRACE):
            items.append(self._parse_assignment())
            while self._match(TokenKind.COMMA):
                if self._check(TokenKind.RBRACE):  # trailing comma
                    break
                items.append(self._parse_assignment())
        self._expect(TokenKind.RBRACE)
        return items

    def _parse_if(self) -> ast.If:
        token = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        then = self._parse_stmt()
        other = None
        if self._match(TokenKind.KW_ELSE):
            other = self._parse_stmt()
        return ast.If(cond=cond, then=then, other=other, line=token.line)

    def _parse_while(self) -> ast.While:
        token = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_stmt()
        return ast.While(cond=cond, body=body, line=token.line)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self._expect(TokenKind.KW_DO)
        body = self._parse_stmt()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ast.DoWhile(body=body, cond=cond, line=token.line)

    def _parse_for(self) -> ast.For:
        token = self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN)
        init: ast.Stmt | None = None
        if not self._check(TokenKind.SEMI):
            if self.current.kind in _TYPE_KEYWORDS:
                init = self._parse_decl()  # consumes the ';'
            else:
                expr = self._parse_expr()
                self._expect(TokenKind.SEMI)
                init = ast.ExprStmt(expr=expr, line=expr.line)
        else:
            self._expect(TokenKind.SEMI)
        cond = None if self._check(TokenKind.SEMI) else self._parse_expr()
        self._expect(TokenKind.SEMI)
        step = None if self._check(TokenKind.RPAREN) else self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_stmt()
        return ast.For(init=init, cond=cond, step=step, body=body, line=token.line)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        if self.current.kind in _ASSIGN_OPS:
            op_tok = self._advance()
            if not isinstance(left, (ast.Ident, ast.ArrayRef)):
                raise ParseError("invalid assignment target", op_tok.line, op_tok.column)
            value = self._parse_assignment()
            return ast.Assign(
                op=_ASSIGN_OPS[op_tok.kind], target=left, value=value, line=op_tok.line
            )
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._match(TokenKind.QUESTION):
            then = self._parse_assignment()
            self._expect(TokenKind.COLON)
            other = self._parse_ternary()
            return ast.Ternary(cond=cond, then=then, other=other, line=cond.line)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            matched = None
            for kind, spelling in ops:
                if self._check(kind):
                    matched = spelling
                    self._advance()
                    break
            if matched is None:
                return left
            right = self._parse_binary(level + 1)
            left = ast.BinOp(op=matched, left=left, right=right, line=left.line)

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind in (TokenKind.MINUS, TokenKind.PLUS, TokenKind.TILDE, TokenKind.BANG):
            self._advance()
            operand = self._parse_unary()
            if token.kind is TokenKind.PLUS:
                return operand
            return ast.UnaryOp(op=token.text, operand=operand, line=token.line)
        if token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
            self._advance()
            target = self._parse_unary()
            if not isinstance(target, (ast.Ident, ast.ArrayRef)):
                raise ParseError("invalid ++/-- target", token.line, token.column)
            return ast.IncDec(op=token.text, target=target, prefix=True, line=token.line)
        # Cast: '(' type ')' unary
        if token.kind is TokenKind.LPAREN and self._peek().kind in _TYPE_KEYWORDS:
            self._advance()
            target = self._parse_type()
            self._expect(TokenKind.RPAREN)
            operand = self._parse_unary()
            return ast.Cast(target=target, operand=operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenKind.PLUS_PLUS) or self._check(TokenKind.MINUS_MINUS):
                token = self._advance()
                if not isinstance(expr, (ast.Ident, ast.ArrayRef)):
                    raise ParseError("invalid ++/-- target", token.line, token.column)
                expr = ast.IncDec(op=token.text, target=expr, prefix=False, line=token.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(
                value=int(token.value), unsigned=token.text.endswith("u"), line=token.line
            )
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(value=float(token.value), line=token.line)
        if token.kind is TokenKind.CHAR_LIT:
            self._advance()
            return ast.CharLit(value=int(token.value), line=token.line)
        if token.kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLit(value=str(token.value), line=token.line)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = token.text
            if self._match(TokenKind.LPAREN):
                args: list[ast.Expr] = []
                if not self._check(TokenKind.RPAREN):
                    args.append(self._parse_assignment())
                    while self._match(TokenKind.COMMA):
                        args.append(self._parse_assignment())
                self._expect(TokenKind.RPAREN)
                return ast.Call(name=name, args=args, line=token.line)
            if self._match(TokenKind.LBRACKET):
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET)
                return ast.ArrayRef(base=name, index=index, line=token.line)
            return ast.Ident(name=name, line=token.line)
        raise ParseError(
            f"unexpected token {token.text or token.kind.value!r}", token.line, token.column
        )


def parse_program(source: str) -> ast.Program:
    """Lex and parse *source*, returning the AST."""
    return Parser(tokenize(source)).parse_program()
