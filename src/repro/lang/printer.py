"""Pretty-printer: mini-C AST back to compilable C source.

The emitted text is valid input for :func:`repro.lang.parser.parse_program`
(round-trip property tested in ``tests/lang/test_roundtrip.py``) and is
also legal C89 modulo the ``float``-is-double convention, which keeps the
synthetic benchmarks distributable as ordinary ``.c`` files — the central
promise of the paper.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast

_INDENT = "  "

# Precedence for parenthesization, mirroring the parser's table.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_UNARY_PREC = 11
_ESCAPES = {"\n": "\\n", "\t": "\\t", "\r": "\\r", "\0": "\\0", "\\": "\\\\", '"': '\\"'}


def _escape(text: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def format_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render *expr* as C source, adding parentheses where precedence needs."""
    if isinstance(expr, ast.IntLit):
        suffix = "u" if expr.unsigned else ""
        if expr.value >= 0x10000 and expr.unsigned:
            return f"0x{expr.value:x}{suffix}"
        return f"{expr.value}{suffix}"
    if isinstance(expr, ast.FloatLit):
        text = repr(float(expr.value))
        if "e" not in text and "." not in text and "inf" not in text and "nan" not in text:
            text += ".0"
        return text
    if isinstance(expr, ast.CharLit):
        ch = chr(expr.value)
        if ch in _ESCAPES:
            return f"'{_ESCAPES[ch]}'"
        if ch == "'":
            return "'\\''"
        return f"'{ch}'"
    if isinstance(expr, ast.StringLit):
        return f'"{_escape(expr.value)}"'
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        return f"{expr.base}[{format_expr(expr.index)}]"
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, prec)
        right = format_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.UnaryOp):
        inner = format_expr(expr.operand, _UNARY_PREC)
        # "- -x" must not collapse into the "--" token.
        spacer = " " if inner and inner[0] == expr.op else ""
        text = f"{expr.op}{spacer}{inner}"
        return f"({text})" if _UNARY_PREC < parent_prec else text
    if isinstance(expr, ast.Cast):
        inner = format_expr(expr.operand, _UNARY_PREC)
        text = f"({expr.target}){inner}"
        return f"({text})" if _UNARY_PREC < parent_prec else text
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.Assign):
        target = format_expr(expr.target)
        value = format_expr(expr.value)
        text = f"{target} {expr.op} {value}"
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ast.IncDec):
        target = format_expr(expr.target)
        text = f"{expr.op}{target}" if expr.prefix else f"{target}{expr.op}"
        return f"({text})" if _UNARY_PREC < parent_prec else text
    if isinstance(expr, ast.Ternary):
        cond = format_expr(expr.cond, 1)
        then = format_expr(expr.then)
        other = format_expr(expr.other)
        text = f"{cond} ? {then} : {other}"
        return f"({text})" if parent_prec > 0 else text
    raise TypeError(f"cannot format expression {expr!r}")


def _format_decl(decl: ast.Decl, indent: str) -> str:
    head = f"{indent}{decl.base_type} {decl.name}"
    if decl.is_array:
        head += f"[{decl.array_length}]"
    if decl.init is not None:
        if isinstance(decl.init, list):
            items = ", ".join(format_expr(item) for item in decl.init)
            head += f" = {{{items}}}"
        else:
            head += f" = {format_expr(decl.init)}"
    return head + ";"


def _format_stmt(stmt: ast.Stmt, level: int) -> list[str]:
    indent = _INDENT * level
    if isinstance(stmt, ast.Decl):
        return [_format_decl(stmt, indent)]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{indent}{format_expr(stmt.expr)};"]
    if isinstance(stmt, ast.Block):
        lines = [f"{indent}{{"]
        for inner in stmt.stmts:
            lines.extend(_format_stmt(inner, level + 1))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.If):
        lines = [f"{indent}if ({format_expr(stmt.cond)}) {{"]
        lines.extend(_format_body(stmt.then, level + 1))
        if stmt.other is not None:
            lines.append(f"{indent}}} else {{")
            lines.extend(_format_body(stmt.other, level + 1))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{indent}while ({format_expr(stmt.cond)}) {{"]
        lines.extend(_format_body(stmt.body, level + 1))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.DoWhile):
        lines = [f"{indent}do {{"]
        lines.extend(_format_body(stmt.body, level + 1))
        lines.append(f"{indent}}} while ({format_expr(stmt.cond)});")
        return lines
    if isinstance(stmt, ast.For):
        init = ""
        if isinstance(stmt.init, ast.Decl):
            init = _format_decl(stmt.init, "")[:-1]  # strip ';'
        elif isinstance(stmt.init, ast.ExprStmt):
            init = format_expr(stmt.init.expr)
        cond = format_expr(stmt.cond) if stmt.cond is not None else ""
        step = format_expr(stmt.step) if stmt.step is not None else ""
        lines = [f"{indent}for ({init}; {cond}; {step}) {{"]
        lines.extend(_format_body(stmt.body, level + 1))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.Break):
        return [f"{indent}break;"]
    if isinstance(stmt, ast.Continue):
        return [f"{indent}continue;"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{indent}return;"]
        return [f"{indent}return {format_expr(stmt.value)};"]
    raise TypeError(f"cannot format statement {stmt!r}")


def _format_body(stmt: ast.Stmt, level: int) -> list[str]:
    """Format a statement as the body of a control construct.

    Blocks are flattened into the parent's braces.
    """
    if isinstance(stmt, ast.Block):
        lines: list[str] = []
        for inner in stmt.stmts:
            lines.extend(_format_stmt(inner, level))
        return lines
    return _format_stmt(stmt, level)


def format_function(func: ast.FuncDecl) -> str:
    """Render a function definition."""
    params = []
    for param in func.params:
        if param.is_array:
            params.append(f"{param.base_type} {param.name}[]")
        else:
            params.append(f"{param.base_type} {param.name}")
    header = f"{func.return_type} {func.name}({', '.join(params)}) {{"
    lines = [header]
    for stmt in func.body.stmts:
        lines.extend(_format_stmt(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def format_program(program: ast.Program) -> str:
    """Render a full translation unit as C source text."""
    parts: list[str] = []
    for decl in program.globals:
        parts.append(_format_decl(decl, ""))
    if program.globals:
        parts.append("")
    for func in program.functions:
        parts.append(format_function(func))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
