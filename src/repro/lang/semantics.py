"""Semantic analysis for mini-C: name resolution and type checking.

Annotates every expression node with its ``ctype`` and validates the usual
C rules (call arity, assignment targets, array indexing, void usage).  The
IR builder (:mod:`repro.ir.builder`) relies on these annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast
from repro.lang.errors import SemanticError
from repro.lang.types import (
    FLOAT,
    INT,
    UNSIGNED,
    VOID,
    ArrayType,
    ScalarType,
    Type,
    arithmetic_result,
)

# Math builtins all take and return float.  ``abs`` is integer.
MATH_BUILTINS = ("sqrt", "sin", "cos", "log", "exp", "fabs", "floor")
BUILTIN_SIGNATURES: dict[str, tuple[ScalarType, tuple[Type, ...]]] = {
    name: (FLOAT, (FLOAT,)) for name in MATH_BUILTINS
}
BUILTIN_SIGNATURES["abs"] = (INT, (INT,))


@dataclass
class FunctionSignature:
    """Resolved signature of a user-defined function."""

    name: str
    return_type: ScalarType
    param_types: list[Type] = field(default_factory=list)


@dataclass
class SymbolInfo:
    """A resolved variable: its type and storage class."""

    name: str
    ctype: Type
    storage: str  # 'global' | 'local' | 'param'


class _Scope:
    """A lexical scope chaining to its parent."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.symbols: dict[str, SymbolInfo] = {}

    def define(self, info: SymbolInfo, line: int) -> None:
        if info.name in self.symbols:
            raise SemanticError(f"redefinition of {info.name!r}", line)
        self.symbols[info.name] = info

    def lookup(self, name: str) -> SymbolInfo | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Type-checks a program and annotates the AST in place."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.globals = _Scope()
        self.functions: dict[str, FunctionSignature] = {}
        self._current_return: ScalarType | None = None
        self._loop_depth = 0

    def analyze(self) -> ast.Program:
        """Run all checks; returns the (annotated) program."""
        for decl in self.program.globals:
            self._declare_variable(decl, self.globals, "global")
        for func in self.program.functions:
            if func.name in self.functions or func.name in BUILTIN_SIGNATURES:
                raise SemanticError(f"redefinition of function {func.name!r}", func.line)
            params: list[Type] = []
            for param in func.params:
                if param.base_type.is_void():
                    raise SemanticError("void parameter", param.line)
                if param.is_array:
                    params.append(ArrayType(param.base_type))
                else:
                    params.append(param.base_type)
            self.functions[func.name] = FunctionSignature(func.name, func.return_type, params)
        if "main" not in self.functions:
            raise SemanticError("program has no main() function")
        for func in self.program.functions:
            self._check_function(func)
        return self.program

    # -- declarations -----------------------------------------------------

    def _declare_variable(self, decl: ast.Decl, scope: _Scope, storage: str) -> None:
        if decl.base_type.is_void():
            raise SemanticError(f"variable {decl.name!r} cannot be void", decl.line)
        ctype: Type
        if decl.is_array:
            if decl.array_length <= 0:
                raise SemanticError(f"array {decl.name!r} must have positive length", decl.line)
            ctype = ArrayType(decl.base_type, decl.array_length)
            if isinstance(decl.init, ast.Expr):
                raise SemanticError(f"array {decl.name!r} needs a brace initializer", decl.line)
            if isinstance(decl.init, list):
                if len(decl.init) > decl.array_length:
                    raise SemanticError(f"too many initializers for {decl.name!r}", decl.line)
                for item in decl.init:
                    item_type = self._check_expr(item, scope)
                    self._require_scalar(item_type, decl.line)
        else:
            ctype = decl.base_type
            if isinstance(decl.init, list):
                raise SemanticError(f"scalar {decl.name!r} cannot take a brace init", decl.line)
            if decl.init is not None:
                init_type = self._check_expr(decl.init, scope)
                self._require_scalar(init_type, decl.line)
        if storage == "global" and decl.init is not None:
            self._require_constant_init(decl)
        scope.define(SymbolInfo(decl.name, ctype, storage), decl.line)

    def _require_constant_init(self, decl: ast.Decl) -> None:
        items = decl.init if isinstance(decl.init, list) else [decl.init]
        for item in items:
            if not self._is_constant(item):
                raise SemanticError(
                    f"global {decl.name!r} initializer must be constant", decl.line
                )

    def _is_constant(self, expr: ast.Expr) -> bool:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit)):
            return True
        if isinstance(expr, ast.UnaryOp):
            return self._is_constant(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self._is_constant(expr.left) and self._is_constant(expr.right)
        if isinstance(expr, ast.Cast):
            return self._is_constant(expr.operand)
        return False

    # -- functions -------------------------------------------------------

    def _check_function(self, func: ast.FuncDecl) -> None:
        scope = _Scope(self.globals)
        for param in func.params:
            ctype: Type = ArrayType(param.base_type) if param.is_array else param.base_type
            scope.define(SymbolInfo(param.name, ctype, "param"), param.line)
        self._current_return = func.return_type
        self._check_block(func.body, scope)
        self._current_return = None

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Decl):
            self._declare_variable(stmt, scope, "local")
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.line)
            self._check_stmt(stmt.then, scope)
            if stmt.other is not None:
                self._check_stmt(stmt.other, scope)
        elif isinstance(stmt, ast.While):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.line)
            self._enter_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._enter_loop(stmt.body, scope)
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.line)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._require_scalar(self._check_expr(stmt.cond, inner), stmt.line)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._enter_loop(stmt.body, inner)
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                raise SemanticError("break outside a loop", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise SemanticError("continue outside a loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if not self._current_return.is_void():
                    raise SemanticError("non-void function must return a value", stmt.line)
            else:
                if self._current_return.is_void():
                    raise SemanticError("void function cannot return a value", stmt.line)
                self._require_scalar(self._check_expr(stmt.value, scope), stmt.line)
        else:
            raise SemanticError(f"unknown statement {stmt!r}", stmt.line)

    def _enter_loop(self, body: ast.Stmt, scope: _Scope) -> None:
        self._loop_depth += 1
        try:
            self._check_stmt(body, scope)
        finally:
            self._loop_depth -= 1

    # -- expressions --------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        ctype = self._infer(expr, scope)
        expr.ctype = ctype
        return ctype

    def _infer(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            return UNSIGNED if expr.unsigned else INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.CharLit):
            return INT
        if isinstance(expr, ast.StringLit):
            raise SemanticError("string literal outside printf", expr.line)
        if isinstance(expr, ast.Ident):
            info = scope.lookup(expr.name)
            if info is None:
                raise SemanticError(f"undefined variable {expr.name!r}", expr.line)
            return info.ctype
        if isinstance(expr, ast.ArrayRef):
            info = scope.lookup(expr.base)
            if info is None:
                raise SemanticError(f"undefined array {expr.base!r}", expr.line)
            if not info.ctype.is_array():
                raise SemanticError(f"{expr.base!r} is not an array", expr.line)
            index_type = self._check_expr(expr.index, scope)
            if not index_type.is_integer():
                raise SemanticError("array index must be an integer", expr.line)
            return info.ctype.element
        if isinstance(expr, ast.BinOp):
            return self._infer_binop(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            operand = self._check_expr(expr.operand, scope)
            self._require_scalar(operand, expr.line)
            if expr.op == "!":
                return INT
            if expr.op == "~":
                if not operand.is_integer():
                    raise SemanticError("~ requires an integer operand", expr.line)
                return operand
            return operand  # unary minus keeps the operand type
        if isinstance(expr, ast.Cast):
            operand = self._check_expr(expr.operand, scope)
            self._require_scalar(operand, expr.line)
            if expr.target.is_void():
                raise SemanticError("cannot cast to void", expr.line)
            return expr.target
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._infer_assign(expr, scope)
        if isinstance(expr, ast.IncDec):
            target = self._check_expr(expr.target, scope)
            if not target.is_integer():
                raise SemanticError("++/-- requires an integer lvalue", expr.line)
            return target
        if isinstance(expr, ast.Ternary):
            self._require_scalar(self._check_expr(expr.cond, scope), expr.line)
            then = self._check_expr(expr.then, scope)
            other = self._check_expr(expr.other, scope)
            self._require_scalar(then, expr.line)
            self._require_scalar(other, expr.line)
            return arithmetic_result(then, other)
        raise SemanticError(f"unknown expression {expr!r}", expr.line)

    def _infer_binop(self, expr: ast.BinOp, scope: _Scope) -> Type:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        self._require_scalar(left, expr.line)
        self._require_scalar(right, expr.line)
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return INT
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if not (left.is_integer() and right.is_integer()):
                raise SemanticError(f"{op!r} requires integer operands", expr.line)
            if op in ("<<", ">>"):
                return left
            return arithmetic_result(left, right)
        return arithmetic_result(left, right)

    def _infer_assign(self, expr: ast.Assign, scope: _Scope) -> Type:
        target_type = self._check_expr(expr.target, scope)
        if not target_type.is_scalar():
            raise SemanticError("assignment target must be a scalar lvalue", expr.line)
        value_type = self._check_expr(expr.value, scope)
        self._require_scalar(value_type, expr.line)
        if expr.op != "=":
            base_op = expr.op[:-1]
            if base_op in ("%", "&", "|", "^", "<<", ">>"):
                if not (target_type.is_integer() and value_type.is_integer()):
                    raise SemanticError(
                        f"{expr.op!r} requires integer operands", expr.line
                    )
        return target_type

    def _infer_call(self, expr: ast.Call, scope: _Scope) -> Type:
        if expr.name == "printf":
            return self._infer_printf(expr, scope)
        if expr.name in BUILTIN_SIGNATURES:
            return_type, param_types = BUILTIN_SIGNATURES[expr.name]
            if len(expr.args) != len(param_types):
                raise SemanticError(f"{expr.name}() takes {len(param_types)} args", expr.line)
            for arg in expr.args:
                self._require_scalar(self._check_expr(arg, scope), expr.line)
            return return_type
        sig = self.functions.get(expr.name)
        if sig is None:
            raise SemanticError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(sig.param_types):
            raise SemanticError(
                f"{expr.name}() takes {len(sig.param_types)} args, got {len(expr.args)}",
                expr.line,
            )
        for arg, param_type in zip(expr.args, sig.param_types):
            arg_type = self._check_expr(arg, scope)
            if param_type.is_array():
                if not (isinstance(arg, ast.Ident) and arg_type.is_array()):
                    raise SemanticError("array argument must be an array name", expr.line)
                if arg_type.element != param_type.element:
                    raise SemanticError("array element type mismatch", expr.line)
            else:
                self._require_scalar(arg_type, expr.line)
        return sig.return_type

    def _infer_printf(self, expr: ast.Call, scope: _Scope) -> Type:
        if not expr.args or not isinstance(expr.args[0], ast.StringLit):
            raise SemanticError("printf needs a string literal format", expr.line)
        fmt: ast.StringLit = expr.args[0]
        fmt.ctype = None  # strings carry no value type
        conversions = _parse_printf_format(fmt.value, expr.line)
        rest = expr.args[1:]
        if len(conversions) != len(rest):
            raise SemanticError(
                f"printf format expects {len(conversions)} args, got {len(rest)}", expr.line
            )
        for conv, arg in zip(conversions, rest):
            arg_type = self._check_expr(arg, scope)
            self._require_scalar(arg_type, expr.line)
            if conv == "f" and not arg_type.is_float():
                raise SemanticError("%f requires a float argument", expr.line)
            if conv in ("d", "u", "c", "x") and arg_type.is_float():
                raise SemanticError(f"%{conv} requires an integer argument", expr.line)
        return INT

    def _require_scalar(self, ctype: Type, line: int) -> None:
        if ctype is None or not ctype.is_scalar():
            raise SemanticError("expected a scalar value", line)


def _parse_printf_format(fmt: str, line: int) -> list[str]:
    """Return the conversion letters in a printf format string."""
    conversions: list[str] = []
    i = 0
    while i < len(fmt):
        if fmt[i] == "%":
            if i + 1 >= len(fmt):
                raise SemanticError("dangling % in printf format", line)
            ch = fmt[i + 1]
            if ch == "%":
                i += 2
                continue
            # Skip width/precision digits and '.'
            j = i + 1
            while j < len(fmt) and (fmt[j].isdigit() or fmt[j] == "."):
                j += 1
            if j >= len(fmt) or fmt[j] not in "dufcxs":
                raise SemanticError(f"unsupported printf conversion in {fmt!r}", line)
            conversions.append(fmt[j])
            i = j + 1
        else:
            i += 1
    return conversions


def analyze(program: ast.Program) -> SemanticAnalyzer:
    """Run semantic analysis; returns the analyzer (with signature tables)."""
    analyzer = SemanticAnalyzer(program)
    analyzer.analyze()
    return analyzer
