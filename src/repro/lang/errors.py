"""Exception hierarchy for the mini-C front end."""


class LangError(Exception):
    """Base class for all front-end errors.

    Carries an optional source position so tools can point at the
    offending construct.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(LangError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(LangError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(LangError):
    """Raised by semantic analysis (type errors, undefined names, ...)."""
