"""AST node definitions for the mini-C dialect.

Plain dataclasses; expression nodes carry a ``ctype`` slot that the
semantic analyzer fills in.  Nodes keep the source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.types import ScalarType, Type


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions; ``ctype`` is set by semantic analysis."""

    ctype: Type | None = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    """Integer literal; ``unsigned`` when the source had a ``u`` suffix."""

    value: int = 0
    unsigned: bool = False


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class CharLit(Expr):
    """Character literal, an ``int`` whose value is the code point."""

    value: int = 0


@dataclass
class StringLit(Expr):
    """String literal; only valid as a ``printf`` argument."""

    value: str = ""


@dataclass
class Ident(Expr):
    """A reference to a variable (scalar or whole-array)."""

    name: str = ""


@dataclass
class ArrayRef(Expr):
    """``base[index]`` where ``base`` names an array."""

    base: str = ""
    index: Expr | None = None


@dataclass
class BinOp(Expr):
    """Binary operation.  ``op`` is the C spelling (``+``, ``<<``, ...)."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class UnaryOp(Expr):
    """Unary operation: ``-``, ``~``, ``!``, or ``+`` (no-op)."""

    op: str = ""
    operand: Expr | None = None


@dataclass
class Cast(Expr):
    """Explicit scalar cast, e.g. ``(float)x``."""

    target: ScalarType | None = None
    operand: Expr | None = None


@dataclass
class Call(Expr):
    """Function or builtin call."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Assign(Expr):
    """Assignment, possibly compound (``op`` is ``"="``, ``"+="``, ...).

    ``target`` is an :class:`Ident` or :class:`ArrayRef`.
    """

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class IncDec(Expr):
    """``++x`` / ``x++`` / ``--x`` / ``x--``.

    ``op`` is ``"++"`` or ``"--"``; ``prefix`` selects pre/post semantics.
    """

    op: str = "++"
    target: Expr | None = None
    prefix: bool = True


@dataclass
class Ternary(Expr):
    """``cond ? then : other``."""

    cond: Expr | None = None
    then: Expr | None = None
    other: Expr | None = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Decl(Stmt):
    """A variable declaration (local or global).

    For arrays, ``array_length`` is the static extent and ``init`` may be a
    list of literal expressions.  For scalars, ``init`` is an optional
    expression.
    """

    name: str = ""
    base_type: ScalarType | None = None
    array_length: int | None = None
    init: Expr | list[Expr] | None = None

    @property
    def is_array(self) -> bool:
        return self.array_length is not None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    other: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``; any of the three heads may be None.

    ``init`` is either a :class:`Decl` or an expression statement.
    """

    init: Stmt | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class Param(Node):
    """A function parameter; arrays are passed by reference."""

    name: str = ""
    base_type: ScalarType | None = None
    is_array: bool = False


@dataclass
class FuncDecl(Node):
    """A function definition."""

    name: str = ""
    return_type: ScalarType | None = None
    params: list[Param] = field(default_factory=list)
    body: Block | None = None


@dataclass
class Program(Node):
    """A translation unit: globals and function definitions in order."""

    globals: list[Decl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        """Return the function named *name* (KeyError if absent)."""
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
