"""Type system for the mini-C dialect.

Three scalar types (``int``, ``unsigned``, ``float``), ``void`` for
functions, and one-dimensional arrays of scalars.  ``float`` follows C's
``double`` semantics (the paper's workloads use ``double`` math through
``libm``); we keep the C spelling ``float`` in source for brevity but give
it 64-bit behaviour, which is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class for mini-C types."""

    def is_scalar(self) -> bool:
        return isinstance(self, ScalarType) and self.name != "void"

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_integer(self) -> bool:
        return isinstance(self, ScalarType) and self.name in ("int", "unsigned")

    def is_float(self) -> bool:
        return isinstance(self, ScalarType) and self.name == "float"

    def is_void(self) -> bool:
        return isinstance(self, ScalarType) and self.name == "void"

    def is_unsigned(self) -> bool:
        return isinstance(self, ScalarType) and self.name == "unsigned"


@dataclass(frozen=True)
class ScalarType(Type):
    """One of ``int``, ``unsigned``, ``float`` or ``void``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(Type):
    """A one-dimensional array of a scalar element type.

    ``length`` is ``None`` for array function parameters (``int a[]``),
    whose extent is supplied by the caller.
    """

    element: ScalarType
    length: int | None = None

    def __str__(self) -> str:
        if self.length is None:
            return f"{self.element}[]"
        return f"{self.element}[{self.length}]"


INT = ScalarType("int")
UNSIGNED = ScalarType("unsigned")
FLOAT = ScalarType("float")
VOID = ScalarType("void")

_BY_NAME = {"int": INT, "unsigned": UNSIGNED, "float": FLOAT, "double": FLOAT, "void": VOID}


def scalar_from_name(name: str) -> ScalarType:
    """Look up a scalar type by keyword, treating ``double`` as ``float``."""
    return _BY_NAME[name]


def arithmetic_result(left: Type, right: Type) -> ScalarType:
    """C's usual arithmetic conversions, restricted to our three scalars.

    float beats unsigned beats int.
    """
    if left.is_float() or right.is_float():
        return FLOAT
    if left.is_unsigned() or right.is_unsigned():
        return UNSIGNED
    return INT
