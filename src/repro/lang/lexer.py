"""Hand-written lexer for the mini-C dialect.

Produces a flat list of :class:`Token` objects.  The token stream is also
reused by :mod:`repro.obfuscation` for plagiarism detection, which mirrors
how JPlag tokenizes source before matching.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.errors import LexError


class TokenKind(enum.Enum):
    """Lexical classes for mini-C tokens."""

    # Literals / identifiers
    IDENT = "ident"
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    STRING_LIT = "string_lit"
    CHAR_LIT = "char_lit"
    # Keywords
    KW_INT = "int"
    KW_UNSIGNED = "unsigned"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"
    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    QUESTION = "?"
    COLON = ":"
    # Operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND_AND = "&&"
    OR_OR = "||"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    LSHIFT_ASSIGN = "<<="
    RSHIFT_ASSIGN = ">>="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EOF = "eof"


KEYWORDS = {
    "int": TokenKind.KW_INT,
    "unsigned": TokenKind.KW_UNSIGNED,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "return": TokenKind.KW_RETURN,
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    ("<<=", TokenKind.LSHIFT_ASSIGN),
    (">>=", TokenKind.RSHIFT_ASSIGN),
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
    ("!", TokenKind.BANG),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("=", TokenKind.ASSIGN),
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'"}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    value: object = None
    line: int = 0
    column: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"


class Lexer:
    """Converts mini-C source text into a list of tokens."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Lex the entire input, appending a final EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenKind.EOF, "", None, self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r":
                self._advance(1)
            elif ch == "\n":
                self.pos += 1
                self.line += 1
                self.column = 1
            elif src.startswith("//", self.pos):
                end = src.find("\n", self.pos)
                self.pos = len(src) if end < 0 else end
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end < 0:
                    raise LexError("unterminated block comment", self.line, self.column)
                for i in range(self.pos, end + 2):
                    if src[i] == "\n":
                        self.line += 1
                        self.column = 1
                    else:
                        self.column += 1
                self.pos = end + 2
            else:
                return

    def _advance(self, n: int) -> None:
        self.pos += n
        self.column += n

    def _next_token(self) -> Token:
        src = self.source
        ch = src[self.pos]
        line, column = self.line, self.column
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, column)
        if ch.isdigit() or (ch == "." and self.pos + 1 < len(src) and src[self.pos + 1].isdigit()):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        for text, kind in _OPERATORS:
            if src.startswith(text, self.pos):
                self._advance(len(text))
                return Token(kind, text, None, line, column)
        raise LexError(f"unexpected character {ch!r}", line, column)

    def _lex_ident(self, line: int, column: int) -> Token:
        src = self.source
        start = self.pos
        while self.pos < len(src) and (src[self.pos].isalnum() or src[self.pos] == "_"):
            self._advance(1)
        text = src[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, text if kind is TokenKind.IDENT else None, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        src = self.source
        start = self.pos
        if src.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                self._advance(1)
            text = src[start : self.pos]
            if len(text) == 2:
                raise LexError("malformed hex literal", line, column)
            value = int(text, 16)
            text = self._maybe_unsigned_suffix(text)
            return Token(TokenKind.INT_LIT, text, value, line, column)
        is_float = False
        while self.pos < len(src) and src[self.pos].isdigit():
            self._advance(1)
        if self.pos < len(src) and src[self.pos] == ".":
            is_float = True
            self._advance(1)
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance(1)
        if self.pos < len(src) and src[self.pos] in "eE":
            peek = self.pos + 1
            if peek < len(src) and src[peek] in "+-":
                peek += 1
            if peek < len(src) and src[peek].isdigit():
                is_float = True
                self._advance(peek - self.pos)
                while self.pos < len(src) and src[self.pos].isdigit():
                    self._advance(1)
        text = src[start : self.pos]
        if is_float:
            return Token(TokenKind.FLOAT_LIT, text, float(text), line, column)
        value = int(text, 10)
        text = self._maybe_unsigned_suffix(text)
        return Token(TokenKind.INT_LIT, text, value, line, column)

    def _maybe_unsigned_suffix(self, text: str) -> str:
        """Consume an optional ``u``/``U`` suffix on integer literals."""
        if self.pos < len(self.source) and self.source[self.pos] in "uU":
            self._advance(1)
            return text + "u"
        return text

    def _lex_string(self, line: int, column: int) -> Token:
        src = self.source
        self._advance(1)
        chunks: list[str] = []
        while True:
            if self.pos >= len(src) or src[self.pos] == "\n":
                raise LexError("unterminated string literal", line, column)
            ch = src[self.pos]
            if ch == '"':
                self._advance(1)
                value = "".join(chunks)
                return Token(TokenKind.STRING_LIT, value, value, line, column)
            if ch == "\\":
                if self.pos + 1 >= len(src):
                    raise LexError("bad escape at end of input", line, column)
                esc = src[self.pos + 1]
                if esc not in _ESCAPES:
                    raise LexError(f"unknown escape \\{esc}", self.line, self.column)
                chunks.append(_ESCAPES[esc])
                self._advance(2)
            else:
                chunks.append(ch)
                self._advance(1)

    def _lex_char(self, line: int, column: int) -> Token:
        src = self.source
        self._advance(1)
        if self.pos >= len(src):
            raise LexError("unterminated char literal", line, column)
        ch = src[self.pos]
        if ch == "\\":
            esc = src[self.pos + 1] if self.pos + 1 < len(src) else ""
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape \\{esc}", line, column)
            value = _ESCAPES[esc]
            self._advance(2)
        else:
            value = ch
            self._advance(1)
        if self.pos >= len(src) or src[self.pos] != "'":
            raise LexError("unterminated char literal", line, column)
        self._advance(1)
        return Token(TokenKind.CHAR_LIT, value, ord(value), line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex *source* and return the token list."""
    return Lexer(source).tokenize()
