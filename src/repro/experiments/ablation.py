"""Ablation — SFGL synthesis vs the linear-sequence baseline.

Prior benchmark synthesizers (Bell & John) emit one flat block sequence
iterated in a big loop: no nested loops, no calls, no conditional
structure.  This experiment quantifies what the SFGL buys by comparing
both clones' fidelity to the original on three axes the paper's figures
read off: branch-prediction accuracy, instruction mix and cache hit
rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.driver import compile_program
from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table
from repro.sim.branch import HybridPredictor, simulate_predictor
from repro.sim.cache import CacheConfig, simulate_cache
from repro.sim.functional import run_binary
from repro.synthesis.baseline import synthesize_linear

_CACHE = CacheConfig(8 * 1024, 32, 4)


def _metrics(trace) -> dict:
    mix = trace.instruction_mix().paper_mix()
    branch = simulate_predictor(trace.branch_log, HybridPredictor()).accuracy
    cache = simulate_cache(trace.mem_addrs, _CACHE).hit_rate
    return {"mix": mix, "branch_accuracy": branch, "cache_hit_rate": cache}


def _mix_error(a: dict, b: dict) -> float:
    return sum(abs(a[key] - b[key]) for key in a) / len(a)


@dataclass
class AblationResult:
    rows: list[dict] = field(default_factory=list)

    def average(self, field_name: str) -> float:
        values = [row[field_name] for row in self.rows]
        return sum(values) / len(values) if values else 0.0

    def format_table(self) -> str:
        table_rows = [
            [
                f"{row['workload']}/{row['input']}",
                row["sfgl_branch_err"],
                row["linear_branch_err"],
                row["sfgl_mix_err"],
                row["linear_mix_err"],
                row["sfgl_cache_err"],
                row["linear_cache_err"],
            ]
            for row in self.rows
        ]
        table_rows.append(
            [
                "AVERAGE",
                self.average("sfgl_branch_err"),
                self.average("linear_branch_err"),
                self.average("sfgl_mix_err"),
                self.average("linear_mix_err"),
                self.average("sfgl_cache_err"),
                self.average("linear_cache_err"),
            ]
        )
        return format_table(
            [
                "benchmark",
                "SFGL br.err",
                "linear br.err",
                "SFGL mix.err",
                "linear mix.err",
                "SFGL $.err",
                "linear $.err",
            ],
            table_rows,
            title="Ablation: SFGL synthesis vs linear-sequence baseline",
        )


def run_ablation(
    runner: ExperimentRunner, pairs=QUICK_PAIRS, target_instructions: int = 20_000
) -> AblationResult:
    result = AblationResult()
    for workload, input_name in pairs:
        original = _metrics(runner.original_trace(workload, input_name, "x86", 0))
        sfgl = _metrics(runner.synthetic_trace(workload, input_name, "x86", 0))
        profile = runner.profile(workload, input_name)
        linear_clone = synthesize_linear(profile, target_instructions)
        linear_binary = compile_program(linear_clone.source, "x86", 0).binary
        linear = _metrics(run_binary(linear_binary))
        result.rows.append(
            {
                "workload": workload,
                "input": input_name,
                "sfgl_branch_err": abs(
                    sfgl["branch_accuracy"] - original["branch_accuracy"]
                ),
                "linear_branch_err": abs(
                    linear["branch_accuracy"] - original["branch_accuracy"]
                ),
                "sfgl_mix_err": _mix_error(sfgl["mix"], original["mix"]),
                "linear_mix_err": _mix_error(linear["mix"], original["mix"]),
                "sfgl_cache_err": abs(
                    sfgl["cache_hit_rate"] - original["cache_hit_rate"]
                ),
                "linear_cache_err": abs(
                    linear["cache_hit_rate"] - original["cache_hit_rate"]
                ),
            }
        )
    return result
