"""Fig. 10 — CPI on a 2-wide out-of-order core across cache sizes.

Per benchmark: CPI with 8/16/32 KB data caches on the 2-wide OoO model
(the paper's PTLSim setup), original vs synthetic.  The paper's markers:
fft has the highest CPI (floating point), sha the lowest, and cache-size
sensitivity (dijkstra, qsort) carries over to the clones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table
from repro.sim.cache import CacheConfig
from repro.sim.ooo import OutOfOrderModel, TimingConfig

CACHE_SIZES_KB = (8, 16, 32)


def _config(cache_kb: int) -> TimingConfig:
    return TimingConfig(
        width=2,
        rob_size=64,
        l1=CacheConfig(cache_kb * 1024, 32, 4),
        l2=CacheConfig(512 * 1024, 32, 8),
    )


@dataclass
class Fig10Result:
    rows: list[dict] = field(default_factory=list)

    def cpi(self, workload: str, input_name: str, side: str, cache_kb: int) -> float:
        for row in self.rows:
            if (
                row["workload"] == workload
                and row["input"] == input_name
                and row["side"] == side
            ):
                return row["cpi"][cache_kb]
        raise KeyError((workload, input_name, side))

    def format_table(self) -> str:
        headers = ["benchmark", "side"] + [f"{kb}KB" for kb in CACHE_SIZES_KB]
        table_rows = [
            [f"{row['workload']}/{row['input']}", row["side"]]
            + [row["cpi"][kb] for kb in CACHE_SIZES_KB]
            for row in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title="Fig. 10: CPI, 2-wide out-of-order, varying D-cache size",
        )


def run_fig10(
    runner: ExperimentRunner,
    pairs=QUICK_PAIRS,
    isa: str = "x86",
    opt_level: int = 0,
    cache_sizes_kb=CACHE_SIZES_KB,
) -> Fig10Result:
    result = Fig10Result()
    for workload, input_name in pairs:
        for side in ("ORG", "SYN"):
            trace = (
                runner.original_trace(workload, input_name, isa, opt_level)
                if side == "ORG"
                else runner.synthetic_trace(workload, input_name, isa, opt_level)
            )
            cpis: dict[int, float] = {}
            for cache_kb in cache_sizes_kb:
                model = OutOfOrderModel(_config(cache_kb))
                cpis[cache_kb] = model.simulate(trace).cpi
            result.rows.append(
                {
                    "workload": workload,
                    "input": input_name,
                    "side": side,
                    "cpi": cpis,
                }
            )
    return result
