"""``python -m repro.experiments`` — figure-selectable, parallel, cached.

Examples::

    python -m repro.experiments                        # full report
    python -m repro.experiments --figures fig04,fig07  # two sections
    python -m repro.experiments --workers 4            # parallel warm-up
    python -m repro.experiments --no-cache             # ignore the store
    python -m repro.experiments --stats                # cache counters

A first run populates the content-addressed artifact store (see
``repro-cache info``); later runs replay from it and perform zero
compiles/runs for unchanged inputs.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.engine.api import DEFAULT_TARGET_INSTRUCTIONS, Engine
from repro.engine.backends import BACKEND_ENV, backend_names
from repro.sim.fastexec import EXEC_CHOICES
from repro.sim.kernels import KERNEL_CHOICES
from repro.experiments.report import FIGURES, generate_report, resolve_figures
from repro.experiments.runner import ExperimentRunner
from repro.workloads import UnknownWorkloadError, parse_pairs


def _parse_figures(text: str | None) -> list[str] | None:
    if not text or text == "all":
        return None
    return [name.strip() for name in text.split(",") if name.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables/figures.",
    )
    parser.add_argument(
        "--figures", default="all",
        help="comma-separated subset to regenerate "
             f"(available: {', '.join(FIGURES)}; default: all)",
    )
    parser.add_argument(
        "--pairs", default=None,
        help="comma-separated workload[/input] override applied to "
             "every pair-reading figure (registry names, including "
             "synth:<fingerprint>; input defaults to small)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="fan pipeline stages out over N workers (default: 1)",
    )
    parser.add_argument(
        "--backend", default=None, choices=backend_names(),
        help=f"execution backend (default: ${BACKEND_ENV}, else inline "
             "for --workers 1, process otherwise; 'auto' cost-routes "
             "cheap replays to threads and heavy compiles to processes)",
    )
    parser.add_argument(
        "--target-instructions", type=int,
        default=DEFAULT_TARGET_INSTRUCTIONS,
        help="synthetic clone size target (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact store root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent artifact store entirely",
    )
    parser.add_argument(
        "--max-cache-bytes", type=int, default=None,
        help="size-cap the store: LRU-evict on put past this many bytes "
             "(default: $REPRO_CACHE_MAX_BYTES or unbounded)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print cache hit/miss counters to stderr afterwards",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record per-stage spans and a metrics snapshot to PATH "
             "(inspect with repro-trace summary/export)",
    )
    parser.add_argument(
        "--sim-kernel", default=None, choices=KERNEL_CHOICES,
        help="replay kernel for the timing models (default: "
             "$REPRO_SIM_KERNEL, else auto = numpy for long traces "
             "when available; results are byte-identical either way)",
    )
    parser.add_argument(
        "--sim-exec", default=None, choices=EXEC_CHOICES,
        help="functional execution engine (default: $REPRO_SIM_EXEC, "
             "else auto = the block-compiling fast engine; traces are "
             "byte-identical either way)",
    )
    args = parser.parse_args(argv)
    if args.sim_kernel:
        # Exported rather than threaded through the engine: the env var
        # is the kernels' own selection channel and it reaches worker
        # subprocesses (process/shard backends) for free.
        os.environ["REPRO_SIM_KERNEL"] = args.sim_kernel
    if args.sim_exec:
        os.environ["REPRO_SIM_EXEC"] = args.sim_exec

    metrics = tracer = None
    if args.trace:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        metrics = MetricsRegistry()
        tracer = Tracer()
    engine = Engine(
        target_instructions=args.target_instructions,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        backend=args.backend,
        metrics=metrics,
        tracer=tracer,
    )
    if engine.store is not None and args.max_cache_bytes is not None:
        engine.store.max_bytes = args.max_cache_bytes
    runner = ExperimentRunner(
        target_instructions=args.target_instructions, engine=engine,
    )
    try:
        # Validate the selection up front so only bad --figures input is
        # reported as a usage error; KeyErrors from the pipeline itself
        # must keep their tracebacks.
        figures = resolve_figures(_parse_figures(args.figures))
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))
    try:
        # Same discipline for --pairs: registry resolution fails here
        # with suggestions (exit 2), not deep in the pipeline.
        pairs = parse_pairs(args.pairs)
    except UnknownWorkloadError as exc:
        parser.error(str(exc))
    print(generate_report(runner, figures=figures, workers=args.workers,
                          pairs=pairs))
    if args.stats:
        stats = engine.stats
        print(
            f"[repro.engine] cache: {stats.hits} hits, "
            f"{stats.misses} misses, {stats.puts} puts, "
            f"{stats.evictions} evictions",
            file=sys.stderr,
        )
    if tracer is not None:
        tracer.save(args.trace, metrics=metrics.snapshot())
        print(f"[repro.obs] trace: {len(tracer.spans())} span(s) -> "
              f"{args.trace}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
