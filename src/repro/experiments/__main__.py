"""Entry point: regenerate the full evaluation report on stdout."""

from repro.experiments.report import main

main()
