"""Fig. 5 — normalized dynamic instruction count across -O0..-O3.

Suite-average dynamic instruction count at each optimization level,
normalized to -O0, for originals and synthetics.  The paper's headline:
both drop by roughly a third from -O0 to any higher level, and the
synthetic tracks the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table

OPT_LEVELS = (0, 1, 2, 3)


@dataclass
class Fig05Result:
    original: dict[int, float] = field(default_factory=dict)
    synthetic: dict[int, float] = field(default_factory=dict)

    def format_table(self) -> str:
        rows = [
            [f"O{level}", self.original[level], self.synthetic[level]]
            for level in OPT_LEVELS
        ]
        return format_table(
            ["level", "original", "synthetic"],
            rows,
            title="Fig. 5: normalized dynamic instruction count (suite average)",
        )


def run_fig05(
    runner: ExperimentRunner, pairs=QUICK_PAIRS, isa: str = "x86"
) -> Fig05Result:
    result = Fig05Result()
    ratios_org: dict[int, list[float]] = {level: [] for level in OPT_LEVELS}
    ratios_syn: dict[int, list[float]] = {level: [] for level in OPT_LEVELS}
    for workload, input_name in pairs:
        base_org = runner.original_trace(workload, input_name, isa, 0).instructions
        base_syn = runner.synthetic_trace(workload, input_name, isa, 0).instructions
        for level in OPT_LEVELS:
            org = runner.original_trace(workload, input_name, isa, level).instructions
            syn = runner.synthetic_trace(workload, input_name, isa, level).instructions
            ratios_org[level].append(org / base_org)
            ratios_syn[level].append(syn / max(1, base_syn))
    for level in OPT_LEVELS:
        result.original[level] = sum(ratios_org[level]) / len(ratios_org[level])
        result.synthetic[level] = sum(ratios_syn[level]) / len(ratios_syn[level])
    return result
