"""Fig. 9 — branch prediction accuracy.

Hybrid (bimodal + gshare + chooser) predictor accuracy per benchmark,
original vs synthetic, at -O0 and -O2.  The paper's marker: adpcm is the
most predictor-sensitive benchmark, in both originals and clones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table
from repro.sim.branch import HybridPredictor, simulate_predictor


@dataclass
class Fig09Result:
    rows: list[dict] = field(default_factory=list)

    def accuracy(self, workload: str, input_name: str, side: str, level: int) -> float:
        for row in self.rows:
            if (
                row["workload"] == workload
                and row["input"] == input_name
                and row["side"] == side
                and row["level"] == level
            ):
                return row["accuracy"]
        raise KeyError((workload, input_name, side, level))

    def format_table(self) -> str:
        table_rows = [
            [
                f"{row['workload']}/{row['input']}",
                f"O{row['level']}",
                row["side"],
                row["accuracy"],
            ]
            for row in self.rows
        ]
        return format_table(
            ["benchmark", "level", "side", "accuracy"],
            table_rows,
            title="Fig. 9: hybrid branch predictor accuracy",
        )


def run_fig09(
    runner: ExperimentRunner, pairs=QUICK_PAIRS, levels=(0, 2), isa: str = "x86"
) -> Fig09Result:
    result = Fig09Result()
    for workload, input_name in pairs:
        for level in levels:
            for side in ("ORG", "SYN"):
                trace = (
                    runner.original_trace(workload, input_name, isa, level)
                    if side == "ORG"
                    else runner.synthetic_trace(workload, input_name, isa, level)
                )
                outcome = simulate_predictor(trace.branch_log, HybridPredictor())
                result.rows.append(
                    {
                        "workload": workload,
                        "input": input_name,
                        "level": level,
                        "side": side,
                        "accuracy": outcome.accuracy,
                    }
                )
    return result
