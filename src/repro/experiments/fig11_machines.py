"""Fig. 11 — normalized execution time across machines and compilers.

The paper's cross-platform experiment: five machines (Table III), four
optimization levels, original workloads (suite average) vs a consolidated
synthetic benchmark.  Everything is normalized to -O0 on the Pentium 4
3 GHz machine.  Shape targets:

* Core i7 fastest, Itanium 2 slowest;
* -O2/-O3 give the Itanium a substantial extra boost (~25% over -O1)
  that the out-of-order x86 machines do not show;
* the synthetic's speedup-vs-O0 error stays under ~20% (avg ~7% in the
  paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.driver import compile_program
from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table
from repro.sim.functional import run_binary
from repro.sim.machines import MACHINES, Machine
from repro.synthesis.synthesizer import synthesize_consolidated

OPT_LEVELS = (0, 1, 2, 3)


@dataclass
class Fig11Result:
    # (machine name, level) -> normalized execution time
    original: dict[tuple[str, int], float] = field(default_factory=dict)
    synthetic: dict[tuple[str, int], float] = field(default_factory=dict)

    def speedup_error(self) -> dict[tuple[str, int], float]:
        """Relative error of the synthetic's predicted speedup vs -O0."""
        errors: dict[tuple[str, int], float] = {}
        for key, org_time in self.original.items():
            syn_time = self.synthetic.get(key)
            if syn_time is None or org_time <= 0 or syn_time <= 0:
                continue
            org_speedup = 1.0 / org_time
            syn_speedup = 1.0 / syn_time
            errors[key] = abs(syn_speedup - org_speedup) / org_speedup
        return errors

    @property
    def average_error(self) -> float:
        errors = self.speedup_error()
        return sum(errors.values()) / len(errors) if errors else 0.0

    @property
    def max_error(self) -> float:
        errors = self.speedup_error()
        return max(errors.values()) if errors else 0.0

    def format_table(self) -> str:
        headers = ["machine", "level", "original", "synthetic", "rel.err"]
        errors = self.speedup_error()
        rows = []
        for (machine, level), org in sorted(self.original.items()):
            rows.append(
                [
                    machine,
                    f"O{level}",
                    org,
                    self.synthetic.get((machine, level), float("nan")),
                    errors.get((machine, level), float("nan")),
                ]
            )
        rows.append(["AVERAGE ERROR", "", "", "", self.average_error])
        return format_table(
            headers,
            rows,
            title="Fig. 11: normalized execution time across machines/compilers",
        )


def run_fig11(
    runner: ExperimentRunner,
    pairs=QUICK_PAIRS,
    machines=MACHINES,
    levels=OPT_LEVELS,
    target_instructions: int | None = None,
) -> Fig11Result:
    """The machines are :class:`Machine` instances — the five Table III
    constants by default, but any parametric machine (built via
    ``machine_from_axes`` / a ``MachineSpec``) slots in unchanged; the
    explorer's ``table3`` preset runs this same grid as a sweep.
    """
    if target_instructions is None:
        target_instructions = runner.target_instructions
    result = Fig11Result()
    # Original side: suite-average runtime per (machine, level), timed
    # through the engine's replay stage — each (machine, level, pair)
    # is a content-addressed replay node, so a warm store serves the
    # whole grid without loading a single trace, and machines sharing
    # cycle-model axes share artifacts.  Machines built outside
    # MachineSpec (no ``.spec``) fall back to direct trace simulation.
    spec_machines = [m for m in machines if m.spec is not None]
    fallback = [m for m in machines if m.spec is None]
    machine_points = {
        (m.spec.fingerprint(), level): (m.spec, level)
        for m in spec_machines for level in levels
    }
    coords = sorted({(m.isa.name, level) for m in fallback
                     for level in levels})
    runner.warm(pairs, coords, sides=("org",),
                machine_points=[machine_points[key]
                                for key in sorted(machine_points)])
    org_times: dict[tuple[str, int], float] = {}
    for machine in machines:
        hz = machine.frequency_ghz * 1e9
        for level in levels:
            total = 0.0
            for workload, input_name in pairs:
                if machine.spec is not None:
                    timing = runner.replay_timing(workload, input_name,
                                                  machine.spec, level)
                    total += timing.cycles / hz
                else:
                    trace = runner.original_trace(workload, input_name,
                                                  machine.isa.name, level)
                    total += machine.runtime_seconds(trace)
            org_times[(machine.name, level)] = total / len(pairs)
    # Synthetic side: one consolidated clone of the whole set (§II-B.e).
    profiles = [runner.profile(workload, inp) for workload, inp in pairs]
    consolidated = synthesize_consolidated(
        profiles, target_instructions=target_instructions * len(pairs)
    )
    # The consolidated source is derived per call, so its compiles stay
    # outside the store; memoize per (ISA, level) across machines.
    syn_traces: dict[tuple[str, int], object] = {}
    syn_times: dict[tuple[str, int], float] = {}
    for machine in machines:
        for level in levels:
            coord = (machine.isa.name, level)
            if coord not in syn_traces:
                compiled = compile_program(consolidated.source, machine.isa,
                                           level)
                syn_traces[coord] = run_binary(compiled.binary)
            syn_times[(machine.name, level)] = machine.runtime_seconds(
                syn_traces[coord]
            )
    # Normalize both sides to P4-3GHz at -O0 (the paper's baseline).
    baseline_machine = machines[0].name
    org_base = org_times[(baseline_machine, 0)]
    syn_base = syn_times[(baseline_machine, 0)]
    for key, value in org_times.items():
        result.original[key] = value / org_base
    for key, value in syn_times.items():
        result.synthetic[key] = value / syn_base
    return result
