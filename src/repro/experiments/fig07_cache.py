"""Figs. 7 & 8 — data cache hit rates across sizes (1..32 KB).

Per benchmark: hit rate at each cache size, original vs synthetic.
Fig. 7 uses -O0 binaries, Fig. 8 the -O2 binaries; the paper's example
signal is dijkstra's working-set knee at 8 KB appearing in both the
original and the clone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table
from repro.sim.cache import sweep_cache_sizes

CACHE_SIZES = tuple(kb * 1024 for kb in (1, 2, 4, 8, 16, 32))


@dataclass
class CacheFigureResult:
    level: int
    rows: list[dict] = field(default_factory=list)

    def series(self, workload: str, input_name: str, side: str) -> dict[int, float]:
        for row in self.rows:
            if (
                row["workload"] == workload
                and row["input"] == input_name
                and row["side"] == side
            ):
                return row["hit_rates"]
        raise KeyError((workload, input_name, side))

    def format_table(self) -> str:
        headers = ["benchmark", "side"] + [f"{s // 1024}KB" for s in CACHE_SIZES]
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [f"{row['workload']}/{row['input']}", row["side"]]
                + [row["hit_rates"][size] for size in CACHE_SIZES]
            )
        figure = "Fig. 7" if self.level == 0 else "Fig. 8"
        return format_table(
            headers,
            table_rows,
            title=f"{figure}: data cache hit rates at -O{self.level}",
        )


def run_cache_figure(
    runner: ExperimentRunner,
    pairs=QUICK_PAIRS,
    opt_level: int = 0,
    isa: str = "x86",
    sizes=CACHE_SIZES,
) -> CacheFigureResult:
    result = CacheFigureResult(level=opt_level)
    for workload, input_name in pairs:
        org = runner.original_trace(workload, input_name, isa, opt_level)
        syn = runner.synthetic_trace(workload, input_name, isa, opt_level)
        result.rows.append(
            {
                "workload": workload,
                "input": input_name,
                "side": "ORG",
                "hit_rates": sweep_cache_sizes(org.mem_addrs, sizes),
            }
        )
        result.rows.append(
            {
                "workload": workload,
                "input": input_name,
                "side": "SYN",
                "hit_rates": sweep_cache_sizes(syn.mem_addrs, sizes),
            }
        )
    return result
