"""Fig. 6 — instruction mix at -O0 and -O2.

Per benchmark: loads / stores / branches / others fractions, original
(ORG) vs synthetic (SYN).  The paper's headline trend: the load fraction
drops and the arithmetic fraction rises at -O2 (copy propagation removes
reloads), in both the originals and the clones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table

MIX_KEYS = ("loads", "stores", "branches", "others")


@dataclass
class Fig06Result:
    rows: list[dict] = field(default_factory=list)

    def average(self, side: str, level: int, key: str) -> float:
        values = [
            row["mix"][key]
            for row in self.rows
            if row["side"] == side and row["level"] == level
        ]
        return sum(values) / len(values) if values else 0.0

    def format_table(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    f"{row['workload']}/{row['input']}",
                    f"O{row['level']}",
                    row["side"],
                    row["mix"]["loads"],
                    row["mix"]["stores"],
                    row["mix"]["branches"],
                    row["mix"]["others"],
                ]
            )
        for level in (0, 2):
            for side in ("ORG", "SYN"):
                table_rows.append(
                    [
                        "AVERAGE",
                        f"O{level}",
                        side,
                        self.average(side, level, "loads"),
                        self.average(side, level, "stores"),
                        self.average(side, level, "branches"),
                        self.average(side, level, "others"),
                    ]
                )
        return format_table(
            ["benchmark", "level", "side", "loads", "stores", "branches", "others"],
            table_rows,
            title="Fig. 6: instruction mix at -O0 and -O2",
        )


def run_fig06(
    runner: ExperimentRunner, pairs=QUICK_PAIRS, levels=(0, 2), isa: str = "x86"
) -> Fig06Result:
    result = Fig06Result()
    for workload, input_name in pairs:
        for level in levels:
            org = runner.original_trace(workload, input_name, isa, level)
            syn = runner.synthetic_trace(workload, input_name, isa, level)
            result.rows.append(
                {
                    "workload": workload,
                    "input": input_name,
                    "level": level,
                    "side": "ORG",
                    "mix": org.instruction_mix().paper_mix(),
                }
            )
            result.rows.append(
                {
                    "workload": workload,
                    "input": input_name,
                    "level": level,
                    "side": "SYN",
                    "mix": syn.instruction_mix().paper_mix(),
                }
            )
    return result
