"""§V-E — benchmark obfuscation check with Moss- and JPlag-style tools.

For every (workload, input) pair: similarity of the original source and
its synthetic clone under both detectors.  The paper reports that
neither tool finds any similarity; the sanity rows confirm the tools do
fire on actual copies (original vs itself ~= 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table
from repro.obfuscation.report import SUSPICION_THRESHOLD, compare_sources


@dataclass
class ObfuscationResult:
    rows: list[dict] = field(default_factory=list)

    @property
    def any_flagged(self) -> bool:
        return any(row["flagged"] for row in self.rows)

    def format_table(self) -> str:
        table_rows = [
            [
                f"{row['workload']}/{row['input']}",
                row["moss"],
                row["jplag"],
                "FLAGGED" if row["flagged"] else "clean",
                row["self_moss"],
            ]
            for row in self.rows
        ]
        return format_table(
            ["benchmark", "moss(orig,syn)", "jplag(orig,syn)", "verdict",
             "moss(orig,orig)"],
            table_rows,
            title=(
                "Obfuscation (§V-E): plagiarism-detector similarity "
                f"(flag threshold {SUSPICION_THRESHOLD})"
            ),
        )


def run_obfuscation(runner: ExperimentRunner, pairs=QUICK_PAIRS) -> ObfuscationResult:
    result = ObfuscationResult()
    for workload, input_name in pairs:
        original = runner.source(workload, input_name)
        clone = runner.clone(workload, input_name)
        report = compare_sources(original, clone.source)
        self_report = compare_sources(original, original)
        result.rows.append(
            {
                "workload": workload,
                "input": input_name,
                "moss": report.moss_similarity,
                "jplag": report.jplag_similarity,
                "flagged": report.flagged,
                "self_moss": self_report.moss_similarity,
            }
        )
    return result
