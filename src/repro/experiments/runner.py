"""Shared experiment pipeline with memoization.

The pipeline mirrors the paper's flow (Fig. 1): compile the original at
-O0 on the reference ISA, profile it, synthesize the clone, then compile
and measure both sides under whatever (ISA, optimization level) the
figure calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.driver import compile_program
from repro.profiling.profile import StatisticalProfile, profile_trace
from repro.sim.functional import run_binary
from repro.sim.trace import ExecutionTrace
from repro.synthesis.synthesizer import SyntheticBenchmark, synthesize
from repro.workloads import WORKLOADS, all_pairs

# Synthetic size target (see DESIGN.md §5: the paper's 10M scaled ~1e3).
SYNTHETIC_TARGET = 20_000

# Fast subset used by default in the pytest-benchmark harness.
QUICK_PAIRS: tuple[tuple[str, str], ...] = (
    ("adpcm", "small"),
    ("bitcount", "small"),
    ("crc32", "small"),
    ("dijkstra", "small"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
)

FULL_PAIRS: tuple[tuple[str, str], ...] = tuple(all_pairs())


@dataclass
class ExperimentRunner:
    """Memoized compile/run/profile/synthesize pipeline."""

    target_instructions: int = SYNTHETIC_TARGET
    _sources: dict = field(default_factory=dict)
    _traces: dict = field(default_factory=dict)
    _profiles: dict = field(default_factory=dict)
    _clones: dict = field(default_factory=dict)

    # -- originals ---------------------------------------------------------

    def source(self, workload: str, input_name: str) -> str:
        key = (workload, input_name)
        if key not in self._sources:
            self._sources[key] = WORKLOADS[workload].source_for(input_name)
        return self._sources[key]

    def original_trace(
        self, workload: str, input_name: str, isa: str = "x86", opt_level: int = 0
    ) -> ExecutionTrace:
        key = ("org", workload, input_name, isa, opt_level)
        if key not in self._traces:
            result = compile_program(self.source(workload, input_name), isa, opt_level)
            self._traces[key] = run_binary(result.binary)
        return self._traces[key]

    # -- profiles & clones -------------------------------------------------

    def profile(self, workload: str, input_name: str) -> StatisticalProfile:
        key = (workload, input_name)
        if key not in self._profiles:
            trace = self.original_trace(workload, input_name, "x86", 0)
            self._profiles[key] = profile_trace(
                trace.binary, trace, source_name=f"{workload}/{input_name}"
            )
        return self._profiles[key]

    def clone(self, workload: str, input_name: str) -> SyntheticBenchmark:
        key = (workload, input_name)
        if key not in self._clones:
            self._clones[key] = synthesize(
                self.profile(workload, input_name),
                target_instructions=self.target_instructions,
            )
        return self._clones[key]

    def synthetic_trace(
        self, workload: str, input_name: str, isa: str = "x86", opt_level: int = 0
    ) -> ExecutionTrace:
        key = ("syn", workload, input_name, isa, opt_level)
        if key not in self._traces:
            clone = self.clone(workload, input_name)
            result = compile_program(clone.source, isa, opt_level)
            self._traces[key] = run_binary(result.binary)
        return self._traces[key]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Plain-text table renderer shared by the figures."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
