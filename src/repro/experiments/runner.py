"""Shared experiment pipeline, backed by :class:`repro.engine.Engine`.

The pipeline mirrors the paper's flow (Fig. 1): compile the original at
-O0 on the reference ISA, profile it, synthesize the clone, then compile
and measure both sides under whatever (ISA, optimization level) the
figure calls for.

Every step delegates to the engine, which layers an in-process memo
(same-object returns, as the old per-runner dicts did) over a persistent
content-addressed artifact store, and can fan a whole experiment grid
out over any execution backend via :meth:`ExperimentRunner.warm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.api import DEFAULT_TARGET_INSTRUCTIONS, Engine
from repro.engine.store import StoreStats
from repro.profiling.profile import StatisticalProfile
from repro.sim.trace import ExecutionTrace
from repro.synthesis.synthesizer import SyntheticBenchmark
from repro.tables import format_table
from repro.workloads import all_pairs

# Synthetic size target (see DESIGN.md §5: the paper's 10M scaled ~1e3).
SYNTHETIC_TARGET = DEFAULT_TARGET_INSTRUCTIONS

# Fast subset used by default in the pytest-benchmark harness.
QUICK_PAIRS: tuple[tuple[str, str], ...] = (
    ("adpcm", "small"),
    ("bitcount", "small"),
    ("crc32", "small"),
    ("dijkstra", "small"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
)

FULL_PAIRS: tuple[tuple[str, str], ...] = tuple(all_pairs())


@dataclass
class ExperimentRunner:
    """Cached compile/run/profile/synthesize pipeline (engine facade).

    ``engine=None`` builds a default engine: serial execution with the
    persistent store at ``REPRO_CACHE_DIR`` / ``~/.cache/repro``.  Pass
    ``Engine(workers=N)`` (or ``use_cache=False``) to change either.
    """

    target_instructions: int | None = None
    engine: Engine | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = Engine(
                target_instructions=self.target_instructions
                if self.target_instructions is not None else SYNTHETIC_TARGET
            )
        elif self.target_instructions is not None:
            self.engine.target_instructions = self.target_instructions
        # Present one number to callers: the engine's is authoritative.
        self.target_instructions = self.engine.target_instructions

    # -- originals ---------------------------------------------------------

    def source(self, workload: str, input_name: str) -> str:
        return self.engine.source(workload, input_name)

    def original_trace(
        self, workload: str, input_name: str, isa: str = "x86", opt_level: int = 0
    ) -> ExecutionTrace:
        return self.engine.original_trace(workload, input_name, isa, opt_level)

    # -- profiles & clones -------------------------------------------------

    def profile(self, workload: str, input_name: str) -> StatisticalProfile:
        return self.engine.profile(workload, input_name)

    def clone(self, workload: str, input_name: str) -> SyntheticBenchmark:
        return self.engine.clone(workload, input_name)

    def synthetic_trace(
        self, workload: str, input_name: str, isa: str = "x86", opt_level: int = 0
    ) -> ExecutionTrace:
        return self.engine.synthetic_trace(workload, input_name, isa, opt_level)

    # -- timing replays ----------------------------------------------------

    def replay_timing(self, workload: str, input_name: str, machine_spec,
                      opt_level: int = 0, side: str = "org"):
        """Time one side's trace on *machine_spec* through the engine's
        cached, content-addressed replay stage."""
        return self.engine.replay_timing(workload, input_name, machine_spec,
                                         opt_level, side=side)

    # -- bulk / observability ----------------------------------------------

    def warm(self, pairs, coords=(("x86", 0),), workers: int | None = None,
             sides: tuple[str, ...] = ("org", "syn"), backend=None,
             machine_points=()) -> int:
        """Materialize the pipeline grid for *pairs* × *coords* up front."""
        return self.engine.warm(pairs, coords, workers=workers, sides=sides,
                                backend=backend,
                                machine_points=machine_points)

    @property
    def cache_stats(self) -> StoreStats:
        return self.engine.stats


__all__ = [
    "ExperimentRunner",
    "FULL_PAIRS",
    "QUICK_PAIRS",
    "SYNTHETIC_TARGET",
    "format_table",
]
