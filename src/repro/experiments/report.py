"""Full-evaluation report generator.

``python -m repro.experiments`` regenerates every table and figure of
the paper's evaluation section and writes a markdown report (used to
produce EXPERIMENTS.md).  Figure scope mirrors the benchmark harness.
"""

from __future__ import annotations

import time

from repro.experiments.ablation import run_ablation
from repro.experiments.fig04_reduction import run_fig04
from repro.experiments.fig05_optlevels import run_fig05
from repro.experiments.fig06_instmix import run_fig06
from repro.experiments.fig07_cache import run_cache_figure
from repro.experiments.fig09_branch import run_fig09
from repro.experiments.fig10_cpi import run_fig10
from repro.experiments.fig11_machines import run_fig11
from repro.experiments.obfuscation import run_obfuscation
from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS

CACHE_PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("dijkstra", "large"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
    ("susan", "small"),
)
CPI_PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("dijkstra", "large"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
)
MACHINE_PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("fft", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
)


def generate_report(runner: ExperimentRunner | None = None) -> str:
    """Run the full evaluation; returns the markdown report text."""
    runner = runner or ExperimentRunner()
    sections: list[str] = []

    def section(title: str, body: str) -> None:
        sections.append(f"## {title}\n\n```\n{body}\n```\n")

    start = time.time()
    fig04 = run_fig04(runner, QUICK_PAIRS)
    section("Fig. 4 — dynamic instruction count reduction",
            fig04.format_table())
    fig05 = run_fig05(runner, QUICK_PAIRS)
    section("Fig. 5 — normalized instruction count across -O0..-O3",
            fig05.format_table())
    fig06 = run_fig06(runner, QUICK_PAIRS)
    section("Fig. 6 — instruction mix at -O0 and -O2", fig06.format_table())
    fig07 = run_cache_figure(runner, CACHE_PAIRS, opt_level=0)
    section("Fig. 7 — D-cache hit rates at -O0", fig07.format_table())
    fig08 = run_cache_figure(runner, QUICK_PAIRS, opt_level=2)
    section("Fig. 8 — D-cache hit rates at -O2", fig08.format_table())
    fig09 = run_fig09(runner, QUICK_PAIRS)
    section("Fig. 9 — hybrid branch predictor accuracy", fig09.format_table())
    fig10 = run_fig10(runner, CPI_PAIRS)
    section("Fig. 10 — CPI on a 2-wide OoO core", fig10.format_table())
    fig11 = run_fig11(runner, MACHINE_PAIRS)
    section("Fig. 11 — normalized time across machines/compilers",
            fig11.format_table())
    obf = run_obfuscation(runner, QUICK_PAIRS)
    section("Obfuscation (§V-E) — Moss/JPlag similarity", obf.format_table())
    ablation = run_ablation(runner, QUICK_PAIRS)
    section("Ablation — SFGL vs linear-sequence baseline",
            ablation.format_table())
    elapsed = time.time() - start

    header = (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Regenerated with `python -m repro.experiments` "
        f"(full evaluation, {elapsed:.0f}s wall clock).\n"
    )
    return header + "\n" + "\n".join(sections)


def main() -> None:  # pragma: no cover - exercised via __main__
    print(generate_report())


if __name__ == "__main__":  # pragma: no cover
    main()
