"""Full-evaluation report generator.

``python -m repro.experiments`` regenerates the tables and figures of
the paper's evaluation section and writes a markdown report (used to
produce EXPERIMENTS.md).  Figure scope mirrors the benchmark harness.

Each figure is registered in :data:`FIGURES` together with the
(pairs, ISA, opt-level) grid it reads, so the engine can materialize the
whole grid up front — in parallel when ``workers > 1``, and from the
persistent artifact store on warm runs.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.experiments.ablation import run_ablation
from repro.experiments.fig04_reduction import run_fig04
from repro.experiments.fig05_optlevels import run_fig05
from repro.experiments.fig06_instmix import run_fig06
from repro.experiments.fig07_cache import run_cache_figure
from repro.experiments.fig09_branch import run_fig09
from repro.experiments.fig10_cpi import run_fig10
from repro.experiments.fig11_machines import run_fig11
from repro.engine.store import toolchain_fingerprint
from repro.experiments.obfuscation import run_obfuscation
from repro.experiments.runner import ExperimentRunner, FULL_PAIRS, QUICK_PAIRS
from repro.explore.db import RESULTS_DB_ENV, ResultsDB
from repro.explore.space import (
    EXPLORE_PAIRS,
    ISA_OPT_SPACE,
    format_point,
    get_preset,
)
from repro.explore.sweep import run_sweep
from repro.tables import format_table

CACHE_PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("dijkstra", "large"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
    ("susan", "small"),
)
CPI_PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("dijkstra", "large"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
)
MACHINE_PAIRS = EXPLORE_PAIRS

_X86 = "x86"


def _report_db_path(runner: ExperimentRunner):
    """The results DB the report reads/writes, or ``None`` when caching
    is off: it lives next to the artifact store (``$REPRO_RESULTS_DB``
    wins), so a relocated store carries its sweep history along."""
    store = runner.engine.store
    if store is None:
        return None
    return os.environ.get(RESULTS_DB_ENV) or \
        Path(store.root) / "explore.sqlite3"


def run_explore_sweep(runner: ExperimentRunner, pairs=None):
    """The wider default grid: the explorer's isa-opt preset (all three
    ISAs at O0..O3) over the **full** workload suite — every
    (workload, input) pair, not the quick subset; warm replay makes
    this free, and on a warm store/DB the section costs zero compiles
    and zero runs.

    The DB follows the engine's cache settings (see
    :func:`_report_db_path`); a cache-disabled engine gets a throwaway
    DB so ``--no-cache`` reports measure pure compute instead of
    replaying stale disk state.
    """
    preset = get_preset("isa-opt")
    pairs = tuple(pairs) if pairs else FULL_PAIRS
    db_path = _report_db_path(runner)
    if db_path is None:
        with tempfile.TemporaryDirectory(prefix="repro-explore-") as tmp:
            with ResultsDB(Path(tmp) / "explore.sqlite3") as db:
                return run_sweep(preset, engine=runner.engine, db=db,
                                 pairs=pairs)
    with ResultsDB(db_path) as db:
        return run_sweep(preset, engine=runner.engine, db=db,
                         pairs=pairs)


@dataclass(frozen=True)
class ExploreHistory:
    """Sweep history read from the results DB (no compiles, no runs)."""

    rows: list
    db_path: str

    def format_table(self) -> str:
        title = (
            f"Sweep history — per-toolchain best score across sweep "
            f"labels ({self.db_path})"
        )
        if not self.rows:
            return f"{title}\n(no stored sweep results yet)"
        return format_table(
            ["toolchain", "sweep", "points", "best score", "mean score",
             "best point", "latest"],
            self.rows, title=title,
        )


def run_explore_history(runner: ExperimentRunner) -> ExploreHistory:
    """Render sweep history from ``explore.sqlite3``: one row per
    (toolchain, sweep label) with its best/mean score — the cross-run
    trend of clone fidelity as the toolchain evolves.  The live
    toolchain is marked ``*`` and sorts first; within a toolchain, rows
    follow recording order, so consecutive rows read as a trend line.
    """
    db_path = _report_db_path(runner)
    if db_path is None:
        return ExploreHistory(rows=[], db_path="cache disabled")
    live = toolchain_fingerprint()
    with ResultsDB(db_path) as db:
        records = db.query()
    groups: dict[tuple[str, str], list] = {}
    for record in records:
        groups.setdefault((record.toolchain, record.sweep),
                          []).append(record)
    ordered = sorted(
        groups.items(),
        key=lambda item: (item[0][0] != live, item[0][0],
                          max(r.created_at for r in item[1])),
    )
    rows = []
    for (toolchain, sweep), members in ordered:
        best = min(members, key=lambda r: (r.score, r.key))
        latest = max(r.created_at for r in members)
        label = (toolchain[:12] or "?") + ("*" if toolchain == live else "")
        rows.append([
            label, sweep, len(members), best.score,
            sum(r.score for r in members) / len(members),
            format_point(best.point),
            time.strftime("%Y-%m-%d %H:%M", time.localtime(latest)),
        ])
    return ExploreHistory(rows=rows, db_path=str(db_path))


@dataclass(frozen=True)
class SearchTrace:
    """Adaptive-search round trail read from the results DB."""

    rows: list
    db_path: str

    def format_table(self) -> str:
        title = (
            f"Search trace — best score per adaptive-search round "
            f"({self.db_path})"
        )
        if not self.rows:
            return f"{title}\n(no stored search rounds yet)"
        return format_table(
            ["search", "round", "points", "pairs", "round best",
             "best so far", "latest"],
            self.rows, title=title,
        )


def run_search_trace(runner: ExperimentRunner) -> SearchTrace:
    """Render the best-score-per-round trend of every stored adaptive
    search (``<search>/round-<k>`` sweep labels) — pure DB read, zero
    compiles and zero runs, like the sweep-history section.

    ``best so far`` is the running minimum across the search's
    **full-scope** rounds only: a reduced-pair cohort round (successive
    halving screens on one pair) shows its own best but is not
    score-comparable, so it never pins the trend — mirroring
    ``SearchResult.format_table``.
    """
    db_path = _report_db_path(runner)
    if db_path is None:
        return SearchTrace(rows=[], db_path="cache disabled")
    with ResultsDB(db_path) as db:
        rows = []
        for search in db.searches():
            rounds = db.rounds(search)
            full_scope = max((pairs for *_, pairs in rounds
                              if pairs is not None), default=None)
            best_so_far = None
            for index, _, count, best, latest, pairs in rounds:
                comparable = pairs is None or pairs == full_scope
                if comparable and (best_so_far is None
                                   or best < best_so_far):
                    best_so_far = best
                rows.append([
                    search, index, count,
                    pairs if pairs is not None else "?",
                    best,
                    best_so_far if best_so_far is not None
                    else float("nan"),
                    time.strftime("%Y-%m-%d %H:%M",
                                  time.localtime(latest)),
                ])
    return SearchTrace(rows=rows, db_path=str(db_path))


@dataclass(frozen=True)
class FigureSpec:
    """One report section: how to run it and what grid it reads.

    ``run`` receives the runner and the *effective* pair set — the
    spec's default ``pairs`` unless the caller overrides it (the CLI's
    ``--pairs``).  Sections with ``pairs=()`` are pure DB reads; they
    receive and ignore an empty tuple regardless of any override.
    """

    title: str
    run: Callable[[ExperimentRunner, tuple], object]
    pairs: tuple[tuple[str, str], ...]
    #: (isa, opt_level) coordinates the figure measures both sides at —
    #: what Engine.warm prefetches before the figure executes.
    coords: tuple[tuple[str, int], ...]

    def effective_pairs(self, override=None) -> tuple:
        """The pair grid this figure reads under an optional override."""
        if override and self.pairs:
            return tuple(override)
        return self.pairs


FIGURES: dict[str, FigureSpec] = {
    "fig04": FigureSpec(
        "Fig. 4 — dynamic instruction count reduction",
        lambda r, pairs: run_fig04(r, pairs),
        QUICK_PAIRS, ((_X86, 0),),
    ),
    "fig05": FigureSpec(
        "Fig. 5 — normalized instruction count across -O0..-O3",
        lambda r, pairs: run_fig05(r, pairs),
        QUICK_PAIRS, tuple((_X86, level) for level in (0, 1, 2, 3)),
    ),
    "fig06": FigureSpec(
        "Fig. 6 — instruction mix at -O0 and -O2",
        lambda r, pairs: run_fig06(r, pairs),
        QUICK_PAIRS, ((_X86, 0), (_X86, 2)),
    ),
    "fig07": FigureSpec(
        "Fig. 7 — D-cache hit rates at -O0",
        lambda r, pairs: run_cache_figure(r, pairs, opt_level=0),
        CACHE_PAIRS, ((_X86, 0),),
    ),
    "fig08": FigureSpec(
        "Fig. 8 — D-cache hit rates at -O2",
        lambda r, pairs: run_cache_figure(r, pairs, opt_level=2),
        QUICK_PAIRS, ((_X86, 2),),
    ),
    "fig09": FigureSpec(
        "Fig. 9 — hybrid branch predictor accuracy",
        lambda r, pairs: run_fig09(r, pairs),
        QUICK_PAIRS, ((_X86, 0), (_X86, 2)),
    ),
    "fig10": FigureSpec(
        "Fig. 10 — CPI on a 2-wide OoO core",
        lambda r, pairs: run_fig10(r, pairs),
        CPI_PAIRS, ((_X86, 0),),
    ),
    "fig11": FigureSpec(
        "Fig. 11 — normalized time across machines/compilers",
        lambda r, pairs: run_fig11(r, pairs),
        # fig11 drives its own per-machine compiles; through the runner
        # it only needs the reference profiles.
        MACHINE_PAIRS, ((_X86, 0),),
    ),
    "explore": FigureSpec(
        "Design-space sweep — ISA × opt grid over the full suite "
        "(repro.explore, isa-opt preset)",
        lambda r, pairs: run_explore_sweep(r, pairs),
        FULL_PAIRS,
        # Derived from the preset's space so the warmed grid can never
        # drift from what run_sweep actually measures.
        tuple(sorted({(p["isa"], p["opt_level"])
                      for p in ISA_OPT_SPACE.points()})),
    ),
    "history": FigureSpec(
        "Sweep history — cross-run results DB (repro.explore)",
        lambda r, pairs: run_explore_history(r),
        # Pure DB read: nothing to warm.
        (), (),
    ),
    "search": FigureSpec(
        "Search trace — adaptive-search rounds from the results DB "
        "(repro.explore.search)",
        lambda r, pairs: run_search_trace(r),
        # Pure DB read: nothing to warm.
        (), (),
    ),
    "obfuscation": FigureSpec(
        "Obfuscation (§V-E) — Moss/JPlag similarity",
        lambda r, pairs: run_obfuscation(r, pairs),
        QUICK_PAIRS, ((_X86, 0),),
    ),
    "ablation": FigureSpec(
        "Ablation — SFGL vs linear-sequence baseline",
        lambda r, pairs: run_ablation(r, pairs),
        QUICK_PAIRS, ((_X86, 0),),
    ),
}

#: Report order (dict order is insertion order, but be explicit).
DEFAULT_FIGURES = tuple(FIGURES)


def resolve_figures(names) -> tuple[str, ...]:
    """Validate and order a figure-name selection (None → everything)."""
    if not names:
        return DEFAULT_FIGURES
    unknown = sorted(set(names) - set(FIGURES))
    if unknown:
        raise KeyError(
            f"unknown figures: {', '.join(unknown)} "
            f"(available: {', '.join(FIGURES)})"
        )
    return tuple(name for name in DEFAULT_FIGURES if name in set(names))


def warm_figures(runner: ExperimentRunner, figures=None,
                 workers: int | None = None, pairs=None) -> int:
    """Prefetch every (pair, ISA, opt) the selected figures will read.

    Grouped per pairs-set so one DAG covers all coordinates that share
    the reference chain; returns the total number of graph nodes.
    *pairs* overrides every pair-reading figure's grid (the CLI's
    ``--pairs``); pure-DB sections are unaffected.
    """
    demands: dict[tuple, set] = {}
    for name in resolve_figures(figures):
        spec = FIGURES[name]
        demands.setdefault(spec.effective_pairs(pairs),
                           set()).update(spec.coords)
    nodes = 0
    for pair_set, coords in demands.items():
        nodes += runner.warm(pair_set, sorted(coords), workers=workers)
    return nodes


def generate_report(
    runner: ExperimentRunner | None = None,
    figures=None,
    workers: int | None = None,
    pairs=None,
) -> str:
    """Run the selected figures (default: all); returns markdown text.

    *pairs* — optional (workload, input) tuple override applied to
    every pair-reading figure, e.g. to point the report at synthetic
    ``synth:`` workloads instead of the builtin suite.
    """
    runner = runner or ExperimentRunner()
    selection = resolve_figures(figures)
    sections: list[str] = []

    start = time.time()
    warm_figures(runner, selection, workers=workers, pairs=pairs)
    for name in selection:
        spec = FIGURES[name]
        result = spec.run(runner, spec.effective_pairs(pairs))
        sections.append(f"## {spec.title}\n\n```\n{result.format_table()}\n```\n")
    elapsed = time.time() - start

    scope = "full evaluation" if selection == DEFAULT_FIGURES else \
        f"figures: {', '.join(selection)}"
    stats = runner.cache_stats
    header = (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Regenerated with `python -m repro.experiments` "
        f"({scope}, {elapsed:.0f}s wall clock; "
        f"artifact cache: {stats.hits} hits / {stats.misses} misses).\n"
    )
    return header + "\n" + "\n".join(sections)
