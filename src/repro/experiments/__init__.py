"""Experiment harness regenerating every table and figure (§V).

One module per figure; each ``run_*`` function returns a result object
with ``rows`` (machine-readable) and ``format_table()`` (the same series
the paper plots).  The shared :class:`ExperimentRunner` memoizes
compilations, traces and profiles so the figures reuse work.
"""

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, FULL_PAIRS
from repro.experiments.report import FIGURES, generate_report, warm_figures
from repro.experiments.fig04_reduction import run_fig04
from repro.experiments.fig05_optlevels import run_fig05
from repro.experiments.fig06_instmix import run_fig06
from repro.experiments.fig07_cache import run_cache_figure
from repro.experiments.fig09_branch import run_fig09
from repro.experiments.fig10_cpi import run_fig10
from repro.experiments.fig11_machines import run_fig11
from repro.experiments.obfuscation import run_obfuscation
from repro.experiments.ablation import run_ablation

__all__ = [
    "ExperimentRunner",
    "FIGURES",
    "FULL_PAIRS",
    "QUICK_PAIRS",
    "generate_report",
    "run_ablation",
    "run_cache_figure",
    "run_fig04",
    "run_fig05",
    "run_fig06",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_obfuscation",
    "warm_figures",
]
