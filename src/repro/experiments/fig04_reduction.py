"""Fig. 4 — reduction in dynamic instruction count.

Per (workload, input): dynamic instructions of the original divided by
the synthetic clone's, both compiled at -O0 on x86.  The paper reports
reduction factors from ~1 to ~250 with an average around 30x (the target
synthetic size is fixed, so long workloads reduce more).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, QUICK_PAIRS, format_table


@dataclass
class Fig04Result:
    rows: list[dict] = field(default_factory=list)

    @property
    def average_reduction(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row["reduction"] for row in self.rows) / len(self.rows)

    def format_table(self) -> str:
        table_rows = [
            [
                f"{row['workload']}/{row['input']}",
                row["original_instructions"],
                row["synthetic_instructions"],
                row["reduction"],
                row["reduction_factor_R"],
            ]
            for row in self.rows
        ]
        table_rows.append(
            ["AVERAGE", "", "", self.average_reduction, ""]
        )
        return format_table(
            ["benchmark", "orig dyn.instr", "syn dyn.instr", "reduction", "R"],
            table_rows,
            title="Fig. 4: dynamic instruction count, original relative to synthetic",
        )


def run_fig04(runner: ExperimentRunner, pairs=QUICK_PAIRS) -> Fig04Result:
    result = Fig04Result()
    for workload, input_name in pairs:
        original = runner.original_trace(workload, input_name, "x86", 0)
        synthetic = runner.synthetic_trace(workload, input_name, "x86", 0)
        clone = runner.clone(workload, input_name)
        result.rows.append(
            {
                "workload": workload,
                "input": input_name,
                "original_instructions": original.instructions,
                "synthetic_instructions": synthetic.instructions,
                "reduction": original.instructions / max(1, synthetic.instructions),
                "reduction_factor_R": clone.reduction_factor,
            }
        )
    return result
