"""Plain-text table rendering shared by the experiment figures and the
design-space explorer.  (Historically lived in ``experiments.runner``,
which still re-exports it.)"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render *rows* under *headers* as an aligned monospace table."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
