"""Sweep orchestrator: design points → engine task chains → scored rows.

Each design point lowers **entirely** into the engine: the original
workloads and their synthetic clones are compiled and traced at the
point's ISA and optimization level, and the timing replays themselves
run as engine ``replay`` nodes content-addressed by the machine's
:meth:`~repro.sim.machines.MachineSpec.fingerprint`.  One
:meth:`Engine.warm` call batches every missing point's whole graph
(compile → run → replay×machines), so replays fan out over whichever
execution backend is selected and a re-issued sweep performs zero
compiles, zero runs, *and zero replays* — scoring a warm point costs a
handful of small :class:`~repro.sim.timing_common.TimingResult` reads,
never a trace load.

Scored points land in the persistent :class:`~repro.explore.db.ResultsDB`
keyed by the same content-address recipe the store uses, which makes
sweeps resumable: a re-issued (or interrupted and restarted) sweep
skips every already-scored point.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.api import DEFAULT_TARGET_INSTRUCTIONS, Engine
from repro.engine.store import toolchain_fingerprint
from repro.engine.tasks import pair_fingerprint
from repro.explore.db import (
    ResultRecord,
    ResultsDB,
    pareto_front,
    result_key,
)
from repro.explore.space import DesignPoint, Preset, format_point, get_preset
from repro.obs.metrics import hist_distance, merge_hist_data
from repro.sim.machines import Machine
from repro.tables import format_table

#: Fidelity metrics averaged into the score (lower is better).  The
#: ``*_div`` components are distribution divergences (total-variation
#: distance, 0..1) between the clone's and the original's simulator
#: exp-histograms — memory-access latencies and correct-prediction run
#: lengths — so two sides can't score as twins on matching scalar
#: CPI/miss rates while their latency *shapes* disagree.
SCORE_COMPONENTS = ("cpi_err", "miss_rate_err", "branch_acc_err",
                    "mem_lat_div", "branch_run_div")

#: ``progress(index, total, record, status)`` after each planned point.
#: *status* is ``"run"`` (freshly scored), ``"resumed"`` (answered from
#: the DB), or ``"failed"`` (scoring raised and the point was skipped —
#: *record* is ``None`` in that case).
ProgressFn = Callable[[int, int, "ResultRecord | None", str], None]


def _rel_err(reference: float, measured: float) -> float | None:
    """Relative error, or ``None`` when it is undefined.

    A zero reference with a nonzero measurement has no meaningful
    relative error; returning ``inf`` (the old behavior) poisoned the
    averaged score and broke ``rank``, so the component is dropped from
    the average instead, with a warning.
    """
    if reference == 0:
        if measured == 0:
            return 0.0
        warnings.warn(
            f"relative error undefined (reference=0, measured={measured!r});"
            " dropping the component from the score",
            RuntimeWarning, stacklevel=2,
        )
        return None
    return abs(measured - reference) / abs(reference)


def _score(metrics: dict) -> float:
    """Average the defined, finite score components (lower is better).

    Components that are missing (undefined relative error) or
    non-finite are excluded so one degenerate metric can't poison the
    ranking; a point with no usable component scores ``inf`` and sorts
    last.
    """
    components = [
        metrics[name] for name in SCORE_COMPONENTS
        if name in metrics and math.isfinite(metrics[name])
    ]
    if not components:
        return float("inf")
    return sum(components) / len(components)


def score_point(point: DesignPoint, pairs, engine: Engine) -> dict:
    """Score one design point's clone fidelity over *pairs*.

    Both sides are aggregated suite-wide (total cycles over total
    instructions, pooled cache/branch events) before the deltas are
    taken, mirroring the paper's consolidated-measurement methodology.
    Timing comes from engine ``replay`` nodes — content-addressed,
    cached, backend-parallel — not from simulating traces in-process.
    """
    spec = point.machine_spec()
    machine: Machine = spec.build()
    opt_level = point.opt_level

    totals = {side: {"cycles": 0, "instructions": 0, "l1_hits": 0,
                     "l1_misses": 0, "branch_hits": 0, "branch_misses": 0}
              for side in ("org", "syn")}
    hists = {side: {"mem": None, "branch": None} for side in ("org", "syn")}
    for workload, input_name in pairs:
        for side in ("org", "syn"):
            result = engine.replay_timing(workload, input_name, spec,
                                          opt_level, side=side)
            bucket = totals[side]
            bucket["cycles"] += result.cycles
            bucket["instructions"] += result.instructions
            bucket["l1_hits"] += result.l1_hits
            bucket["l1_misses"] += result.l1_misses
            bucket["branch_hits"] += result.branch_hits
            bucket["branch_misses"] += result.branch_misses
            # Pool the latency/run-length distributions suite-wide, like
            # the scalar counters above.  getattr guards results replayed
            # from pre-histogram artifacts.
            side_hists = hists[side]
            side_hists["mem"] = merge_hist_data(
                side_hists["mem"], getattr(result, "mem_lat_hist", None))
            side_hists["branch"] = merge_hist_data(
                side_hists["branch"], getattr(result, "branch_run_hist", None))

    def derived(bucket: dict) -> tuple[float, float, float, float]:
        instructions = bucket["instructions"] or 1
        cpi = bucket["cycles"] / instructions
        mem = bucket["l1_hits"] + bucket["l1_misses"]
        miss_rate = bucket["l1_misses"] / mem if mem else 0.0
        branches = bucket["branch_hits"] + bucket["branch_misses"]
        acc = bucket["branch_hits"] / branches if branches else 1.0
        runtime = bucket["cycles"] / (machine.frequency_ghz * 1e9)
        return cpi, miss_rate, acc, runtime

    org_cpi, org_miss, org_acc, org_runtime = derived(totals["org"])
    syn_cpi, syn_miss, syn_acc, syn_runtime = derived(totals["syn"])

    metrics = {
        "org_cpi": org_cpi,
        "syn_cpi": syn_cpi,
        "org_l1_miss_rate": org_miss,
        "syn_l1_miss_rate": syn_miss,
        "miss_rate_err": abs(syn_miss - org_miss),
        "org_branch_acc": org_acc,
        "syn_branch_acc": syn_acc,
        "branch_acc_err": abs(syn_acc - org_acc),
        # Absolute runtimes per side; no runtime-delta metric — the
        # clone is deliberately much shorter than the original, and the
        # rate-normalized comparison is exactly cpi_err (frequency
        # cancels when both sides run on the point's machine).
        "org_runtime_s": org_runtime,
        "syn_runtime_s": syn_runtime,
        "org_instructions": totals["org"]["instructions"],
        "syn_instructions": totals["syn"]["instructions"],
    }
    cpi_err = _rel_err(org_cpi, syn_cpi)
    if cpi_err is not None:
        metrics["cpi_err"] = cpi_err
    mem_div = hist_distance(hists["org"]["mem"], hists["syn"]["mem"])
    if mem_div is not None:
        metrics["mem_lat_div"] = mem_div
    branch_div = hist_distance(hists["org"]["branch"],
                               hists["syn"]["branch"])
    if branch_div is not None:
        metrics["branch_run_div"] = branch_div
    metrics["score"] = _score(metrics)
    return metrics


@dataclass
class SweepResult:
    """Everything one ``run_sweep`` produced (or resumed)."""

    sweep: str
    records: list[ResultRecord] = field(default_factory=list)
    resumed_keys: set = field(default_factory=set)
    points: list[DesignPoint] = field(default_factory=list)
    #: Points whose scoring raised and were skipped, with the error.
    failed: list[tuple[DesignPoint, Exception]] = field(default_factory=list)

    @property
    def computed(self) -> int:
        return len(self.records) - self.resumed

    @property
    def resumed(self) -> int:
        return sum(1 for r in self.records if r.key in self.resumed_keys)

    def pareto(self, metrics=("org_runtime_s", "score")):
        return pareto_front(self.records, metrics)

    def format_table(self, top: int | None = None) -> str:
        labels = {}
        for point, record in zip(self.points, self.records):
            labels[record.key] = point.label()
        records = sorted(self.records, key=lambda r: (r.score, r.key))
        if top is not None:
            records = records[:top]
        pareto_keys = {r.key for r in self.pareto()}
        rows = []
        for record in records:
            m = record.metrics
            rows.append([
                labels.get(record.key) or format_point(record.point),
                m["org_cpi"], m["syn_cpi"],
                m.get("cpi_err", float("nan")),
                m["miss_rate_err"], m["branch_acc_err"],
                record.score,
                "*" if record.key in pareto_keys else "",
                "resumed" if record.key in self.resumed_keys else "run",
            ])
        failed = f", {len(self.failed)} failed" if self.failed else ""
        title = (
            f"Explore sweep '{self.sweep}': {len(self.records)} points "
            f"({self.computed} scored, {self.resumed} resumed from DB"
            f"{failed}; * = Pareto runtime/fidelity front)"
        )
        return format_table(
            ["point", "org_cpi", "syn_cpi", "cpi_err", "miss_err",
             "branch_err", "score", "pareto", "origin"],
            rows, title=title,
        )


def run_sweep(
    preset: Preset | str,
    engine: Engine | None = None,
    db: ResultsDB | None = None,
    workers: int | None = None,
    sample_mode: str = "grid",
    n: int | None = None,
    seed: int | None = None,
    stride: int | None = None,
    pairs=None,
    sweep_name: str | None = None,
    force: bool = False,
    progress: ProgressFn | None = None,
    backend=None,
    points: list[DesignPoint] | None = None,
) -> SweepResult:
    """Sweep a preset's design space through the engine into the DB.

    Already-scored points (matching content key) are resumed from *db*
    without touching the engine; the remaining points are warmed as one
    task graph (fanned out over ``workers`` on the selected execution
    *backend* — a name, an instance, or ``None`` for the engine's
    default) and scored in enumeration order, each persisted as soon as
    it is scored so an interrupted sweep resumes at the first unscored
    point.  ``force=True`` rescores everything.

    An explicit *points* list bypasses sampling entirely — the hook the
    adaptive search rounds (:mod:`repro.explore.search`) are built on:
    each round batches its candidate points through one ``run_sweep``
    call under its own sweep label.

    A point whose scoring raises is skipped (recorded on
    ``SweepResult.failed``, reported to *progress* with status
    ``"failed"``) instead of aborting the sweep; ``KeyboardInterrupt``
    still propagates so an interrupted sweep stays interruptible.
    """
    if isinstance(preset, str):
        preset = get_preset(preset)
    if points is None:
        points = preset.space.sample(mode=sample_mode, n=n, seed=seed,
                                     stride=stride)
    default_pairs = tuple(pairs) if pairs else preset.pairs
    sweep = sweep_name or preset.name
    owns_db = db is None
    db = db or ResultsDB()
    try:
        toolchain = toolchain_fingerprint()
        target = engine.target_instructions if engine is not None else \
            DEFAULT_TARGET_INSTRUCTIONS
        plan: list[tuple[DesignPoint, tuple, str]] = []
        for point in points:
            point_pairs = (point.pair,) if point.pair else default_pairs
            fingerprints = tuple(
                pair_fingerprint(w, i) for w, i in point_pairs
            )
            key = result_key(point.as_dict(), fingerprints, target,
                             toolchain, sweep=sweep)
            plan.append((point, point_pairs, key))

        result = SweepResult(sweep=sweep)
        missing = []
        cached: dict[str, ResultRecord] = {}
        for point, point_pairs, key in plan:
            record = None if force else db.get(key)
            if record is not None:
                cached[key] = record
                result.resumed_keys.add(key)
            else:
                missing.append((point, point_pairs, key))

        if missing:
            engine = engine or Engine(backend=backend)
            warm_pairs: set = set()
            machine_points: dict = {}
            for point, point_pairs, _ in missing:
                warm_pairs.update(point_pairs)
                spec = point.machine_spec()
                machine_points[(spec.fingerprint(), spec.isa,
                                point.opt_level)] = (spec, point.opt_level)
            # One graph for every missing point: compile → run →
            # replay×machines, deduplicated across points and fanned out
            # over the selected backend.  Scoring below then reads the
            # replay results straight from the engine's memo.
            engine.warm(
                sorted(warm_pairs), coords=(),
                machine_points=[machine_points[key]
                                for key in sorted(machine_points)],
                workers=workers, backend=backend,
            )

        for index, (point, point_pairs, key) in enumerate(plan):
            if key in cached:
                record = cached[key]
                status = "resumed"
            else:
                try:
                    metrics = score_point(point, point_pairs, engine)
                except Exception as exc:
                    warnings.warn(
                        f"scoring point {point.label() or '(base)'} "
                        f"failed ({exc}); skipping it",
                        RuntimeWarning, stacklevel=2,
                    )
                    result.failed.append((point, exc))
                    if progress is not None:
                        progress(index + 1, len(plan), None, "failed")
                    continue
                stored = {k: v for k, v in metrics.items() if k != "score"}
                # Scoring scope: how many pairs the aggregates cover.
                # Scores over different scopes are not comparable — the
                # search-trace report uses this to keep reduced-budget
                # cohort rounds out of the best-so-far trend.
                stored["pairs_scored"] = len(point_pairs)
                record = ResultRecord(
                    key=key,
                    sweep=sweep,
                    created_at=time.time(),
                    point=point.as_dict(),
                    metrics=stored,
                    score=metrics["score"],
                    toolchain=toolchain,
                )
                db.put(record)
                status = "run"
            result.records.append(record)
            result.points.append(point)
            if progress is not None:
                progress(index + 1, len(plan), record, status)
        return result
    finally:
        if owns_db:
            db.close()
