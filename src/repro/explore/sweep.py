"""Sweep orchestrator: design points → engine task chains → scored rows.

Each design point lowers to the engine pipeline at its machine's ISA and
its optimization level: the original workloads and their synthetic
clones are compiled and traced through :class:`repro.engine.Engine`
(content-addressed store, parallel fan-out over any execution backend
via ``warm``), then both traces are replayed on the point's parametric
:class:`~repro.sim.machines.Machine` and the clone's fidelity is scored
as CPI / cache-miss-rate / branch-accuracy deltas (absolute runtimes
per side ride along for Pareto ranking).

Scored points land in the persistent :class:`~repro.explore.db.ResultsDB`
keyed by the same content-address recipe the store uses, which makes
sweeps resumable: a re-issued (or interrupted and restarted) sweep
skips every already-scored point, and a fully scored sweep performs
zero compiles and zero runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.api import DEFAULT_TARGET_INSTRUCTIONS, Engine
from repro.engine.store import toolchain_fingerprint
from repro.engine.tasks import pair_fingerprint
from repro.explore.db import (
    ResultRecord,
    ResultsDB,
    pareto_front,
    result_key,
)
from repro.explore.space import DesignPoint, Preset, format_point, get_preset
from repro.sim.machines import Machine
from repro.tables import format_table

#: Fidelity metrics averaged into the score (lower is better).
SCORE_COMPONENTS = ("cpi_err", "miss_rate_err", "branch_acc_err")

ProgressFn = Callable[[int, int, ResultRecord, bool], None]


def _rel_err(reference: float, measured: float) -> float:
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - reference) / abs(reference)


def score_point(point: DesignPoint, pairs, engine: Engine) -> dict:
    """Score one design point's clone fidelity over *pairs*.

    Both sides are aggregated suite-wide (total cycles over total
    instructions, pooled cache/branch events) before the deltas are
    taken, mirroring the paper's consolidated-measurement methodology.
    """
    machine: Machine = point.machine()
    isa = machine.isa.name
    opt_level = point.opt_level

    totals = {side: {"cycles": 0, "instructions": 0, "l1_hits": 0,
                     "l1_misses": 0, "branch_hits": 0, "branch_misses": 0}
              for side in ("org", "syn")}
    for workload, input_name in pairs:
        org_trace = engine.original_trace(workload, input_name, isa,
                                          opt_level)
        syn_trace = engine.synthetic_trace(workload, input_name, isa,
                                           opt_level)
        for side, trace in (("org", org_trace), ("syn", syn_trace)):
            result = machine.simulate(trace)
            bucket = totals[side]
            bucket["cycles"] += result.cycles
            bucket["instructions"] += result.instructions
            bucket["l1_hits"] += result.l1_hits
            bucket["l1_misses"] += result.l1_misses
            bucket["branch_hits"] += result.branch_hits
            bucket["branch_misses"] += result.branch_misses

    def derived(bucket: dict) -> tuple[float, float, float, float]:
        instructions = bucket["instructions"] or 1
        cpi = bucket["cycles"] / instructions
        mem = bucket["l1_hits"] + bucket["l1_misses"]
        miss_rate = bucket["l1_misses"] / mem if mem else 0.0
        branches = bucket["branch_hits"] + bucket["branch_misses"]
        acc = bucket["branch_hits"] / branches if branches else 1.0
        runtime = bucket["cycles"] / (machine.frequency_ghz * 1e9)
        return cpi, miss_rate, acc, runtime

    org_cpi, org_miss, org_acc, org_runtime = derived(totals["org"])
    syn_cpi, syn_miss, syn_acc, syn_runtime = derived(totals["syn"])

    metrics = {
        "org_cpi": org_cpi,
        "syn_cpi": syn_cpi,
        "cpi_err": _rel_err(org_cpi, syn_cpi),
        "org_l1_miss_rate": org_miss,
        "syn_l1_miss_rate": syn_miss,
        "miss_rate_err": abs(syn_miss - org_miss),
        "org_branch_acc": org_acc,
        "syn_branch_acc": syn_acc,
        "branch_acc_err": abs(syn_acc - org_acc),
        # Absolute runtimes per side; no runtime-delta metric — the
        # clone is deliberately much shorter than the original, and the
        # rate-normalized comparison is exactly cpi_err (frequency
        # cancels when both sides run on the point's machine).
        "org_runtime_s": org_runtime,
        "syn_runtime_s": syn_runtime,
        "org_instructions": totals["org"]["instructions"],
        "syn_instructions": totals["syn"]["instructions"],
    }
    metrics["score"] = sum(metrics[c] for c in SCORE_COMPONENTS) / \
        len(SCORE_COMPONENTS)
    return metrics


@dataclass
class SweepResult:
    """Everything one ``run_sweep`` produced (or resumed)."""

    sweep: str
    records: list[ResultRecord] = field(default_factory=list)
    resumed_keys: set = field(default_factory=set)
    points: list[DesignPoint] = field(default_factory=list)

    @property
    def computed(self) -> int:
        return len(self.records) - self.resumed

    @property
    def resumed(self) -> int:
        return sum(1 for r in self.records if r.key in self.resumed_keys)

    def pareto(self, metrics=("org_runtime_s", "score")):
        return pareto_front(self.records, metrics)

    def format_table(self, top: int | None = None) -> str:
        labels = {}
        for point, record in zip(self.points, self.records):
            labels[record.key] = point.label()
        records = sorted(self.records, key=lambda r: (r.score, r.key))
        if top is not None:
            records = records[:top]
        pareto_keys = {r.key for r in self.pareto()}
        rows = []
        for record in records:
            m = record.metrics
            rows.append([
                labels.get(record.key) or format_point(record.point),
                m["org_cpi"], m["syn_cpi"], m["cpi_err"],
                m["miss_rate_err"], m["branch_acc_err"],
                record.score,
                "*" if record.key in pareto_keys else "",
                "resumed" if record.key in self.resumed_keys else "run",
            ])
        title = (
            f"Explore sweep '{self.sweep}': {len(self.records)} points "
            f"({self.computed} scored, {self.resumed} resumed from DB; "
            f"* = Pareto runtime/fidelity front)"
        )
        return format_table(
            ["point", "org_cpi", "syn_cpi", "cpi_err", "miss_err",
             "branch_err", "score", "pareto", "origin"],
            rows, title=title,
        )


def run_sweep(
    preset: Preset | str,
    engine: Engine | None = None,
    db: ResultsDB | None = None,
    workers: int | None = None,
    sample_mode: str = "grid",
    n: int | None = None,
    seed: int = 0,
    stride: int = 1,
    pairs=None,
    sweep_name: str | None = None,
    force: bool = False,
    progress: ProgressFn | None = None,
    backend=None,
) -> SweepResult:
    """Sweep a preset's design space through the engine into the DB.

    Already-scored points (matching content key) are resumed from *db*
    without touching the engine; the remaining points are warmed as one
    task graph (fanned out over ``workers`` on the selected execution
    *backend* — a name, an instance, or ``None`` for the engine's
    default) and scored in enumeration order, each persisted as soon as
    it is scored so an interrupted sweep resumes at the first unscored
    point.  ``force=True`` rescores everything.
    """
    if isinstance(preset, str):
        preset = get_preset(preset)
    points = preset.space.sample(mode=sample_mode, n=n, seed=seed,
                                 stride=stride)
    default_pairs = tuple(pairs) if pairs else preset.pairs
    sweep = sweep_name or preset.name
    owns_db = db is None
    db = db or ResultsDB()
    try:
        toolchain = toolchain_fingerprint()
        target = engine.target_instructions if engine is not None else \
            DEFAULT_TARGET_INSTRUCTIONS
        plan: list[tuple[DesignPoint, tuple, str]] = []
        for point in points:
            point_pairs = (point.pair,) if point.pair else default_pairs
            fingerprints = tuple(
                pair_fingerprint(w, i) for w, i in point_pairs
            )
            key = result_key(point.as_dict(), fingerprints, target,
                             toolchain, sweep=sweep)
            plan.append((point, point_pairs, key))

        result = SweepResult(sweep=sweep)
        missing = []
        cached: dict[str, ResultRecord] = {}
        for point, point_pairs, key in plan:
            record = None if force else db.get(key)
            if record is not None:
                cached[key] = record
                result.resumed_keys.add(key)
            else:
                missing.append((point, point_pairs, key))

        if missing:
            engine = engine or Engine(backend=backend)
            warm_pairs: set = set()
            warm_coords: set = set()
            for point, point_pairs, _ in missing:
                warm_pairs.update(point_pairs)
                spec = point.machine_spec()
                warm_coords.add((spec.isa, point.opt_level))
            engine.warm(sorted(warm_pairs), sorted(warm_coords),
                        workers=workers, backend=backend)

        computed: dict[str, ResultRecord] = {}
        missing_keys = {key for _, _, key in missing}
        for index, (point, point_pairs, key) in enumerate(plan):
            if key in cached:
                record = cached[key]
            else:
                metrics = score_point(point, point_pairs, engine)
                record = ResultRecord(
                    key=key,
                    sweep=sweep,
                    created_at=time.time(),
                    point=point.as_dict(),
                    metrics={k: v for k, v in metrics.items()
                             if k != "score"},
                    score=metrics["score"],
                    toolchain=toolchain,
                )
                db.put(record)
                computed[key] = record
            result.records.append(record)
            result.points.append(point)
            if progress is not None:
                progress(index + 1, len(plan), record,
                         key not in missing_keys)
        return result
    finally:
        if owns_db:
            db.close()
