"""``python -m repro.explore`` — sweep, search, query, rank.

Examples::

    # Multi-point sweep through the engine, persisted to the results DB:
    python -m repro.explore run --preset smoke --workers 2

    # Adaptive search: spend a fixed evaluation budget instead of
    # enumerating the grid; every round lands in the DB as
    # <search>/round-<k> and a re-issued search resumes for free:
    python -m repro.explore search smoke --strategy hill --budget 8 --seed 0
    python -m repro.explore search microarch --strategy halving --budget 12

    # Answered entirely from the DB — zero compiles, zero runs:
    python -m repro.explore query --sweep smoke
    python -m repro.explore rank --sweep isa-opt --metric cpi_err --top 5
    python -m repro.explore compare smoke smoke-tuned

    # What can be swept:
    python -m repro.explore presets
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.engine.api import DEFAULT_TARGET_INSTRUCTIONS, Engine
from repro.engine.backends import BACKEND_ENV, backend_names
from repro.engine.store import CACHE_DIR_ENV
from repro.explore.db import RESULTS_DB_ENV, ResultsDB, pareto_front
from repro.explore.search import DEFAULT_BUDGET, STRATEGIES, run_search
from repro.explore.space import PRESETS, format_point, get_preset
from repro.explore.sweep import run_sweep
from repro.sim.fastexec import EXEC_CHOICES
from repro.sim.kernels import KERNEL_CHOICES
from repro.workloads import UnknownWorkloadError
from repro.tables import format_table

_RANK_COLUMNS = ("org_cpi", "syn_cpi", "cpi_err", "miss_rate_err",
                 "branch_acc_err")


def _record_rows(records, metric: str | None = None,
                 pareto_keys: set | None = None) -> tuple[list[str], list]:
    headers = ["sweep", "point"] + list(_RANK_COLUMNS) + ["score"]
    if metric and metric not in headers:
        headers.append(metric)
    if pareto_keys is not None:
        headers.append("pareto")
    rows = []
    for record in records:
        row = [record.sweep, format_point(record.point)]
        row += [record.metrics.get(col, float("nan"))
                for col in _RANK_COLUMNS]
        row.append(record.score)
        if metric and metric not in ("score", *_RANK_COLUMNS):
            row.append(record.metrics.get(metric, float("nan")))
        if pareto_keys is not None:
            row.append("*" if record.key in pareto_keys else "")
        rows.append(row)
    return headers, rows


def _parse_where(items) -> dict:
    where = {}
    for item in items or ():
        axis, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--where expects axis=value, got {item!r}")
        where[axis] = value
    return where


def _parse_pairs(text: str | None):
    # Registry-validated so typos fail here with suggestions
    # (UnknownWorkloadError), not deep in the pipeline.
    from repro.workloads import parse_pairs

    return parse_pairs(text)


def _build_engine(args) -> Engine:
    if getattr(args, "sim_kernel", None):
        # The env var is the kernels' own selection channel and reaches
        # worker subprocesses (process/shard backends) for free.
        os.environ["REPRO_SIM_KERNEL"] = args.sim_kernel
    if getattr(args, "sim_exec", None):
        os.environ["REPRO_SIM_EXEC"] = args.sim_exec
    metrics = tracer = None
    if getattr(args, "trace", None):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        metrics = MetricsRegistry()
        tracer = Tracer()
    engine = Engine(
        target_instructions=args.target_instructions,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        backend=args.backend,
        metrics=metrics,
        tracer=tracer,
    )
    if engine.store is not None and \
            getattr(args, "max_cache_bytes", None) is not None:
        engine.store.max_bytes = args.max_cache_bytes
    return engine


def _save_trace(args, engine: Engine) -> None:
    if engine.tracer is None:
        return
    snapshot = engine.metrics.snapshot() if engine.metrics is not None \
        else None
    engine.tracer.save(args.trace, metrics=snapshot)
    print(f"[repro.obs] trace: {len(engine.tracer.spans())} span(s) -> "
          f"{args.trace}", file=sys.stderr)


def _resolve_db_path(args):
    """Keep both halves of a sweep together: a relocated artifact store
    carries its results DB along unless ``--db`` says otherwise, and
    ``--no-cache`` gets a throwaway DB so it measures pure compute
    instead of resuming stale persisted points.  Returns the path plus
    the tempdir keeping a throwaway DB alive (or ``None``)."""
    db_path = args.db
    throwaway: tempfile.TemporaryDirectory | None = None
    if db_path is None:
        if args.no_cache:
            throwaway = tempfile.TemporaryDirectory(prefix="repro-explore-")
            db_path = Path(throwaway.name) / "explore.sqlite3"
        elif args.cache_dir is not None:
            db_path = Path(args.cache_dir).expanduser() / "explore.sqlite3"
    return db_path, throwaway


def _print_engine_stats(engine: Engine) -> None:
    stats = engine.stats
    print(
        f"[repro.engine] cache: {stats.hits} hits, "
        f"{stats.misses} misses, {stats.puts} puts, "
        f"{stats.evictions} evictions",
        file=sys.stderr,
    )


def _cmd_run(args) -> int:
    engine = _build_engine(args)
    db_path, throwaway = _resolve_db_path(args)
    start = time.time()
    with ResultsDB(db_path) as db:
        result = run_sweep(
            get_preset(args.preset),
            engine=engine,
            db=db,
            workers=args.workers,
            sample_mode=args.sample,
            n=args.n,
            seed=args.seed,
            stride=args.stride,
            pairs=_parse_pairs(args.pairs),
            sweep_name=args.sweep_name,
            force=args.force,
            backend=args.backend,
        )
    elapsed = time.time() - start
    print(result.format_table(top=args.top))
    print(
        f"\n{result.computed} point(s) scored, {result.resumed} resumed "
        f"from {db.path} in {elapsed:.1f}s"
    )
    if throwaway is not None:
        throwaway.cleanup()
    if args.stats:
        _print_engine_stats(engine)
    _save_trace(args, engine)
    return 0


def _cmd_search(args) -> int:
    engine = _build_engine(args)
    db_path, throwaway = _resolve_db_path(args)
    start = time.time()
    with ResultsDB(db_path) as db:
        result = run_search(
            get_preset(args.preset),
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            engine=engine,
            db=db,
            workers=args.workers,
            pairs=_parse_pairs(args.pairs),
            search_name=args.search_name,
            backend=args.backend,
        )
    elapsed = time.time() - start
    print(result.format_table())
    best = result.best
    if best is not None:
        print(f"\nbest score {best.score:.6g} at "
              f"{format_point(best.point)} (sweep label {best.sweep})")
    print(
        f"{result.evaluated} evaluation(s) ({result.computed} scored, "
        f"{result.resumed} resumed) over {len(result.rounds)} round(s) "
        f"from {db.path} in {elapsed:.1f}s"
    )
    if throwaway is not None:
        throwaway.cleanup()
    if args.stats:
        _print_engine_stats(engine)
    _save_trace(args, engine)
    return 0 if best is not None else 1


def _cmd_presets(args) -> int:
    rows = []
    for name, preset in PRESETS.items():
        axes = " x ".join(
            f"{axis.name}[{len(axis.values)}]" for axis in preset.space.axes
        )
        rows.append([name, preset.space.size, axes, len(preset.pairs),
                     preset.description])
    print(format_table(
        ["preset", "points", "axes", "pairs", "description"], rows,
        title="Design-space presets",
    ))
    return 0


def _cmd_query(args) -> int:
    with ResultsDB(args.db) as db:
        records = db.query(sweep=args.sweep, where=_parse_where(args.where))
        if args.limit is not None:
            records = records[:args.limit]
        if not records:
            sweeps = db.sweeps()
            print("no matching rows", end="")
            if sweeps:
                names = ", ".join(
                    f"{name} ({count})" for name, count, _ in sweeps
                )
                print(f"; stored sweeps: {names}")
            else:
                print(f"; results DB at {db.path} is empty")
            return 1
    headers, rows = _record_rows(records)
    print(format_table(headers, rows,
                       title=f"{len(records)} stored result(s)"))
    return 0


def _cmd_rank(args) -> int:
    with ResultsDB(args.db) as db:
        records = db.rank(metric=args.metric, sweep=args.sweep,
                          limit=None, ascending=not args.descending)
    if not records:
        print("no matching rows")
        return 1
    pareto_keys = None
    if args.pareto:
        pareto_keys = {r.key for r in pareto_front(records)}
    records = records[:args.top] if args.top is not None else records
    headers, rows = _record_rows(records, metric=args.metric,
                                 pareto_keys=pareto_keys)
    direction = "desc" if args.descending else "asc"
    print(format_table(
        headers, rows,
        title=f"Top {len(records)} by {args.metric} ({direction})",
    ))
    return 0


def _cmd_compare(args) -> int:
    with ResultsDB(args.db) as db:
        matched = db.compare(args.sweep_a, args.sweep_b, metric=args.metric)
    if not matched:
        print(f"no common points between {args.sweep_a!r} and "
              f"{args.sweep_b!r}")
        return 1
    rows = []
    for point, value_a, value_b in matched:
        rows.append([format_point(point), value_a, value_b,
                     value_b - value_a])
    print(format_table(
        ["point", args.sweep_a, args.sweep_b, "delta"], rows,
        title=f"{len(matched)} matched point(s) on {args.metric}",
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description="Design-space exploration with a persistent cross-run "
                    "results database.",
    )
    parser.add_argument(
        "--db", default=None,
        help=f"results DB path (default: ${RESULTS_DB_ENV} or "
             "<cache-root>/explore.sqlite3)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flags(cmd) -> None:
        cmd.add_argument("--workers", type=int, default=1,
                         help="fan engine stages out over N workers")
        cmd.add_argument("--backend", default=None, choices=backend_names(),
                         help=f"execution backend (default: ${BACKEND_ENV}, "
                              "else inline for --workers 1, process "
                              "otherwise; 'auto' cost-routes cheap replays "
                              "to threads and heavy compiles to processes)")
        cmd.add_argument("--target-instructions", type=int,
                         default=DEFAULT_TARGET_INSTRUCTIONS)
        cmd.add_argument("--cache-dir", default=None,
                         help=f"artifact store root (default: "
                              f"${CACHE_DIR_ENV} or ~/.cache/repro)")
        cmd.add_argument("--max-cache-bytes", type=int, default=None,
                         help="size-cap the artifact store (LRU-evict on "
                              "put)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="skip the persistent artifact store")
        cmd.add_argument("--stats", action="store_true",
                         help="print engine cache counters to stderr")
        cmd.add_argument("--trace", default=None, metavar="PATH",
                         help="record per-stage spans and a metrics "
                              "snapshot to PATH (inspect with repro-trace "
                              "summary/export)")
        cmd.add_argument("--sim-kernel", default=None,
                         choices=KERNEL_CHOICES,
                         help="replay kernel for the timing models "
                              "(default: $REPRO_SIM_KERNEL, else auto; "
                              "results are byte-identical either way)")
        cmd.add_argument("--sim-exec", default=None,
                         choices=EXEC_CHOICES,
                         help="functional execution engine "
                              "(default: $REPRO_SIM_EXEC, else auto = "
                              "the block-compiling fast engine; traces "
                              "are byte-identical either way)")

    run = sub.add_parser("run", help="sweep a preset through the engine")
    run.add_argument("--preset", default="smoke",
                     help=f"design-space preset ({', '.join(PRESETS)})")
    run.add_argument("--sample", default="grid",
                     choices=("grid", "random", "frontier"),
                     help="point selection over the space (default: grid)")
    run.add_argument("--n", type=int, default=None,
                     help="cap the number of sampled points (applied after "
                          "--stride for grid sampling)")
    run.add_argument("--seed", type=int, default=None,
                     help="random-sampling seed (--sample random only; "
                          "default: 0)")
    run.add_argument("--stride", type=int, default=None,
                     help="grid-sampling stride (--sample grid only; "
                          "default: 1)")
    run.add_argument("--pairs", default=None,
                     help="override workload pairs, e.g. "
                          "adpcm/small,crc32/small")
    run.add_argument("--sweep-name", default=None,
                     help="DB sweep label (default: the preset name)")
    run.add_argument("--force", action="store_true",
                     help="rescore points already present in the DB")
    run.add_argument("--top", type=int, default=None,
                     help="print only the N best-scoring points")
    add_engine_flags(run)
    run.set_defaults(func=_cmd_run)

    search = sub.add_parser(
        "search",
        help="adaptively search a preset's space within a budget",
    )
    search.add_argument("preset",
                        help=f"design-space preset ({', '.join(PRESETS)})")
    search.add_argument("--strategy", default="hill",
                        choices=sorted(STRATEGIES),
                        help="hill = hill-climbing with random restarts; "
                             "halving = successive halving (broad cohort "
                             "on the first pair, best half promoted to "
                             "the full pair set)")
    search.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="total point evaluations across all rounds "
                             f"(default: {DEFAULT_BUDGET})")
    search.add_argument("--seed", type=int, default=0,
                        help="search-trajectory seed (default: 0)")
    search.add_argument("--pairs", default=None,
                        help="override workload pairs, e.g. "
                             "adpcm/small,crc32/small")
    search.add_argument("--search-name", default=None,
                        help="DB label prefix for the round sweeps "
                             "(default: <preset>-<strategy>-s<seed>)")
    add_engine_flags(search)
    search.set_defaults(func=_cmd_search)

    presets = sub.add_parser("presets", help="list design-space presets")
    presets.set_defaults(func=_cmd_presets)

    query = sub.add_parser("query", help="read stored results (no runs)")
    query.add_argument("--sweep", default=None)
    query.add_argument("--where", action="append", default=[],
                       metavar="AXIS=VALUE",
                       help="filter by axis value (repeatable)")
    query.add_argument("--limit", type=int, default=None)
    query.set_defaults(func=_cmd_query)

    rank = sub.add_parser("rank", help="order stored results by a metric")
    rank.add_argument("--sweep", default=None)
    rank.add_argument("--metric", default="score")
    rank.add_argument("--top", type=int, default=10)
    rank.add_argument("--descending", action="store_true",
                      help="higher is better")
    rank.add_argument("--pareto", action="store_true",
                      help="mark the runtime/fidelity Pareto front")
    rank.set_defaults(func=_cmd_rank)

    compare = sub.add_parser("compare",
                             help="diff two sweeps on matching points")
    compare.add_argument("sweep_a")
    compare.add_argument("sweep_b")
    compare.add_argument("--metric", default="score")
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    if args.command in ("run", "search"):
        # Validate up front so a bad --preset is a usage error; KeyErrors
        # from the sweep itself keep their tracebacks.
        try:
            get_preset(args.preset)
        except KeyError as exc:
            parser.error(str(exc.args[0]) if exc.args else str(exc))
        # Same for --pairs: unknown workload/input names are usage
        # errors (exit 2 with suggestions), not pipeline tracebacks.
        try:
            _parse_pairs(args.pairs)
        except UnknownWorkloadError as exc:
            parser.error(str(exc))
    if args.command == "run":
        # Mirror DesignSpace.sample's uniform validation as usage errors.
        if args.seed is not None and args.sample != "random":
            parser.error("--seed only applies to --sample random")
        if args.stride is not None:
            if args.sample != "grid":
                parser.error("--stride only applies to --sample grid")
            if args.stride < 1:
                parser.error(f"--stride must be >= 1, got {args.stride}")
    if args.command == "search" and args.budget < 1:
        parser.error(f"--budget must be >= 1, got {args.budget}")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
