"""Persistent cross-run results database (SQLite).

Every scored design point is one row keyed by the same canonical
content-address recipe the artifact store uses: SHA-256 over the DB
schema version, the toolchain fingerprint, the point's axis values, the
workload pair fingerprints, and the synthetic size target.  Equal
configurations therefore map to the same row across processes and
machines — a sweep that was already scored answers ``query``/``rank``/
``compare`` without a single compile or run, and a re-issued ``run``
resumes exactly at the first unscored point.

The database lives next to the artifact store by default
(``<cache-root>/explore.sqlite3``); relocate it with the
``REPRO_RESULTS_DB`` environment variable or an explicit path.
Connections run in WAL mode with a generous busy timeout, so the serve
daemon and the CLI can share the file without ``database is locked``
failures.

Besides scored points, the file carries the ``stage_costs`` table:
append-only measured per-stage wall-clock observations (written by the
serve daemon's timing hook) that the
:class:`~repro.serve.costs.CostModel` learns dispatch and admission
costs from.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.engine.store import canonical_key, default_cache_root
from repro.explore.space import format_point

#: Bump when the row layout or the key recipe changes; old rows then
#: stop matching instead of being silently misread.
DB_SCHEMA_VERSION = 1

RESULTS_DB_ENV = "REPRO_RESULTS_DB"

#: Sweep-label convention for adaptive searches: round *k* of search
#: ``name`` is persisted under the sweep label ``name/round-k``, so a
#: search's trail is queryable (and resumable) with the ordinary sweep
#: tooling.
ROUND_SEP = "/round-"


def round_label(search: str, index: int) -> str:
    """The DB sweep label of one search round (``<search>/round-<k>``)."""
    return f"{search}{ROUND_SEP}{index}"


def parse_round_label(sweep: str) -> tuple[str, int] | None:
    """``(search, round)`` if *sweep* is a search-round label, else
    ``None`` (it is an ordinary sweep)."""
    name, sep, suffix = sweep.rpartition(ROUND_SEP)
    if not sep or not name or not suffix.isdigit():
        return None
    return name, int(suffix)

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    sweep TEXT NOT NULL,
    created_at REAL NOT NULL,
    point_json TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    score REAL NOT NULL,
    schema_version INTEGER NOT NULL,
    toolchain TEXT NOT NULL
);
"""
_INDEX_SQL = "CREATE INDEX IF NOT EXISTS idx_results_sweep ON results(sweep);"

#: Append-only measured stage wall-clock observations — the history
#: the serve layer's :class:`~repro.serve.costs.CostModel` learns
#: dispatch/admission costs from.  One row per executed stage.
_STAGE_COSTS_SQL = """
CREATE TABLE IF NOT EXISTS stage_costs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    stage TEXT NOT NULL,
    seconds REAL NOT NULL,
    created_at REAL NOT NULL,
    toolchain TEXT NOT NULL DEFAULT ''
);
"""
_STAGE_COSTS_INDEX_SQL = (
    "CREATE INDEX IF NOT EXISTS idx_stage_costs_stage "
    "ON stage_costs(stage);"
)

#: How long a connection waits on a writer's lock before erroring —
#: generous, because the serve daemon and CLI share one file.
BUSY_TIMEOUT_MS = 10_000


def default_db_path() -> Path:
    env = os.environ.get(RESULTS_DB_ENV)
    if env:
        return Path(env).expanduser()
    return default_cache_root() / "explore.sqlite3"


def result_key(point: dict, pair_fingerprints: tuple[str, ...],
               target_instructions: int, toolchain: str,
               sweep: str = "") -> str:
    """Content address of one scored design point.

    The sweep label is part of the identity: each named sweep is a
    complete, independently diffable row collection (``compare`` matches
    them by axis values), while within a sweep equal content always maps
    to the same row — that is what makes re-runs resume for free.
    """
    return canonical_key({
        "db_schema": DB_SCHEMA_VERSION,
        "sweep": sweep,
        "toolchain": toolchain,
        "point": {k: point[k] for k in sorted(point)},
        "pairs": list(pair_fingerprints),
        "target_instructions": target_instructions,
    })


@dataclass(frozen=True)
class ResultRecord:
    """One scored design point as stored in (and read from) the DB."""

    key: str
    sweep: str
    created_at: float
    point: dict
    metrics: dict
    score: float
    schema_version: int = DB_SCHEMA_VERSION
    toolchain: str = ""

    def metric(self, name: str) -> float:
        if name == "score":
            return self.score
        try:
            return float(self.metrics[name])
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r} "
                f"(available: score, {', '.join(sorted(self.metrics))})"
            ) from None


def _row_to_record(row: sqlite3.Row) -> ResultRecord:
    return ResultRecord(
        key=row["key"],
        sweep=row["sweep"],
        created_at=row["created_at"],
        point=json.loads(row["point_json"]),
        metrics=json.loads(row["metrics_json"]),
        score=row["score"],
        schema_version=row["schema_version"],
        toolchain=row["toolchain"],
    )


class ResultsDB:
    """SQLite handle over the cross-run results table."""

    def __init__(self, path: Path | str | None = None) -> None:
        self.path = Path(path).expanduser() if path else default_db_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        # WAL lets readers proceed while a writer commits, and the busy
        # timeout makes racing writers queue instead of failing with
        # "database is locked" — required now that the serve daemon and
        # the CLI share one explore.sqlite3.  WAL needs a real file; on
        # filesystems that refuse it (or :memory:) SQLite reports the
        # old mode and the timeout still applies.
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.execute(_TABLE_SQL)
            self._conn.execute(_INDEX_SQL)
            self._conn.execute(_STAGE_COSTS_SQL)
            self._conn.execute(_STAGE_COSTS_INDEX_SQL)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writes ------------------------------------------------------------

    def put(self, record: ResultRecord) -> None:
        """Insert or replace one scored point (idempotent per key)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, sweep, created_at, point_json, metrics_json, score, "
                " schema_version, toolchain) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.key,
                    record.sweep,
                    record.created_at or time.time(),
                    json.dumps(record.point, sort_keys=True),
                    json.dumps(record.metrics, sort_keys=True),
                    record.score,
                    record.schema_version,
                    record.toolchain,
                ),
            )

    def record_stage_cost(self, stage: str, seconds: float,
                          toolchain: str = "",
                          created_at: float | None = None) -> None:
        """Append one measured stage wall-clock observation."""
        with self._conn:
            self._conn.execute(
                "INSERT INTO stage_costs (stage, seconds, created_at, "
                "toolchain) VALUES (?, ?, ?, ?)",
                (stage, float(seconds),
                 created_at if created_at is not None else time.time(),
                 toolchain),
            )

    def record_stage_costs(self, observations, toolchain: str = "") -> int:
        """Append many ``(stage, seconds)`` observations in one
        transaction; returns the number recorded."""
        rows = [(stage, float(seconds), time.time(), toolchain)
                for stage, seconds in observations]
        if rows:
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO stage_costs (stage, seconds, created_at, "
                    "toolchain) VALUES (?, ?, ?, ?)", rows,
                )
        return len(rows)

    def stage_cost_history(self, stage: str | None = None,
                           limit: int | None = None
                           ) -> list[tuple[str, float, float]]:
        """``(stage, seconds, created_at)`` observations, oldest first.

        *limit* keeps only the most recent N (still returned oldest
        first) so a long-lived deployment's warm-up replays bounded
        history.
        """
        where = "WHERE stage = ?" if stage is not None else ""
        args: tuple = (stage,) if stage is not None else ()
        sql = (f"SELECT stage, seconds, created_at FROM stage_costs "
               f"{where} ORDER BY id DESC")
        if limit is not None:
            sql += " LIMIT ?"
            args = args + (int(limit),)
        rows = self._conn.execute(sql, args).fetchall()
        return [(row["stage"], row["seconds"], row["created_at"])
                for row in reversed(rows)]

    def stage_cost_stats(self) -> dict[str, dict]:
        """Per-stage ``{"n", "mean_seconds", "last_seconds"}`` over the
        recorded history."""
        rows = self._conn.execute(
            "SELECT stage, COUNT(*) AS n, AVG(seconds) AS mean, "
            "(SELECT seconds FROM stage_costs AS inner_sc "
            " WHERE inner_sc.stage = stage_costs.stage "
            " ORDER BY inner_sc.id DESC LIMIT 1) AS last "
            "FROM stage_costs GROUP BY stage ORDER BY stage"
        ).fetchall()
        return {
            row["stage"]: {
                "n": row["n"],
                "mean_seconds": row["mean"],
                "last_seconds": row["last"],
            }
            for row in rows
        }

    def delete_sweep(self, sweep: str) -> int:
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE sweep = ?", (sweep,)
            )
        return cursor.rowcount

    # -- reads -------------------------------------------------------------

    def get(self, key: str) -> ResultRecord | None:
        row = self._conn.execute(
            "SELECT * FROM results WHERE key = ?", (key,)
        ).fetchone()
        return _row_to_record(row) if row else None

    def query(self, sweep: str | None = None,
              where: dict | None = None) -> list[ResultRecord]:
        """Rows for *sweep* (or all), filtered by axis-value equality.

        ``where`` values compare against the stored point dict; numbers
        given as strings (CLI input) are coerced before comparison.
        """
        if sweep is None:
            rows = self._conn.execute(
                "SELECT * FROM results ORDER BY sweep, created_at, key"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM results WHERE sweep = ? "
                "ORDER BY created_at, key",
                (sweep,),
            ).fetchall()
        records = [_row_to_record(row) for row in rows]
        if not where:
            return records

        def matches(record: ResultRecord) -> bool:
            for axis, wanted in where.items():
                if axis not in record.point:
                    return False
                have = record.point[axis]
                if have == wanted or str(have) == str(wanted):
                    continue
                # Sequence-valued axes (the 'pair' axis round-trips
                # through JSON as a list) match the CLI's own
                # workload/input rendering.
                if isinstance(have, (list, tuple)) and \
                        "/".join(str(v) for v in have) == str(wanted):
                    continue
                return False
            return True

        return [record for record in records if matches(record)]

    def rank(self, metric: str = "score", sweep: str | None = None,
             limit: int | None = 10,
             ascending: bool = True) -> list[ResultRecord]:
        """Rows ordered by *metric* (lower is better by default).

        Records that don't carry the metric — e.g. a degenerate point
        whose relative error was undefined and dropped — rank after
        every record that does, in either direction; a metric no stored
        record carries still raises (typo protection).
        """
        records = self.query(sweep)
        have = [r for r in records
                if metric == "score" or metric in r.metrics]
        if records and not have:
            records[0].metric(metric)  # raises the "unknown metric" error
        have.sort(key=lambda r: (r.metric(metric), r.key),
                  reverse=not ascending)
        ranked = have + sorted(
            (r for r in records
             if metric != "score" and metric not in r.metrics),
            key=lambda r: r.key,
        )
        return ranked[:limit] if limit is not None else ranked

    def sweeps(self) -> list[tuple[str, int, float]]:
        """``(sweep, row count, latest created_at)`` per stored sweep."""
        rows = self._conn.execute(
            "SELECT sweep, COUNT(*) AS n, MAX(created_at) AS latest "
            "FROM results GROUP BY sweep ORDER BY sweep"
        ).fetchall()
        return [(row["sweep"], row["n"], row["latest"]) for row in rows]

    def searches(self) -> list[str]:
        """Sorted names of stored adaptive searches — every distinct
        prefix of a ``<search>/round-<k>`` sweep label."""
        names = {parsed[0] for sweep, _, _ in self.sweeps()
                 if (parsed := parse_round_label(sweep)) is not None}
        return sorted(names)

    def rounds(self, search: str
               ) -> list[tuple[int, str, int, float, float, int | None]]:
        """Per-round aggregates for *search*, in round order:
        ``(round, label, points, best score, latest created_at, pairs)``.

        *pairs* is the round's scoring scope (the ``pairs_scored``
        metric the sweep records) — reduced-scope rounds, e.g. a
        successive-halving cohort screened on one pair, are not
        score-comparable to full rounds.  ``None`` when the stored
        records predate the field.
        """
        out = []
        for sweep, count, latest in self.sweeps():
            parsed = parse_round_label(sweep)
            if parsed is None or parsed[0] != search:
                continue
            records = self.query(sweep=sweep)
            best = min(r.score for r in records)
            scopes = [int(r.metrics["pairs_scored"]) for r in records
                      if "pairs_scored" in r.metrics]
            out.append((parsed[1], sweep, count, best, latest,
                        max(scopes) if scopes else None))
        out.sort()
        return out

    def compare(self, sweep_a: str, sweep_b: str, metric: str = "score"
                ) -> list[tuple[dict, float, float]]:
        """Match points of two sweeps by axis values; returns
        ``(point, metric_a, metric_b)`` for every coordinate present in
        both (e.g. the same grid scored under two toolchain versions)."""
        def keyed(records: list[ResultRecord]) -> dict[str, ResultRecord]:
            return {
                json.dumps(r.point, sort_keys=True): r for r in records
            }

        left = keyed(self.query(sweep_a))
        right = keyed(self.query(sweep_b))
        matched = []
        for point_json in sorted(set(left) & set(right)):
            record_a = left[point_json]
            record_b = right[point_json]
            if metric != "score" and (metric not in record_a.metrics
                                      or metric not in record_b.metrics):
                # A side that never recorded the metric (undefined
                # relative error) can't be diffed on it; skip the point
                # rather than abort the whole comparison.
                continue
            matched.append((
                record_a.point,
                record_a.metric(metric),
                record_b.metric(metric),
            ))
        return matched


def pareto_front(records: list[ResultRecord],
                 metrics: tuple[str, str] = ("org_runtime_s", "score"),
                 ) -> list[ResultRecord]:
    """Non-dominated subset, minimizing both *metrics* — by default the
    classic explorer trade-off of machine performance (original-side
    runtime) against clone fidelity (score).

    A record missing either metric — possible since undefined
    relative-error components are dropped at scoring time — is skipped
    with a warning instead of aborting the whole front, consistent with
    how ``rank`` and ``compare`` treat such records.
    """
    usable: list[tuple[ResultRecord, tuple[float, float]]] = []
    for record in records:
        missing = [m for m in metrics
                   if m != "score" and m not in record.metrics]
        if missing:
            warnings.warn(
                f"dropping point {format_point(record.point)} from the "
                f"Pareto front: missing metric(s) {', '.join(missing)}",
                RuntimeWarning, stacklevel=2,
            )
            continue
        usable.append((record, tuple(record.metric(m) for m in metrics)))
    front: list[ResultRecord] = []
    for candidate, (cx, cy) in usable:
        dominated = False
        for other, (ox, oy) in usable:
            if other is candidate:
                continue
            if ox <= cx and oy <= cy and (ox < cx or oy < cy):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda r: r.metric(metrics[0]))
    return front
