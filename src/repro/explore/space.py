"""Declarative parametric design spaces.

A :class:`DesignSpace` is an ordered set of named axes — machine axes
(``isa``, ``width``, ``rob``, ``l1_kb``, ``l2_kb``, ``frequency_ghz``,
``predictor_entries``, …, any :class:`repro.sim.machines.MachineSpec`
field), the whole-machine axis ``machine`` (a Table III spec name), and
software axes (``opt_level``, ``pair``) — over a ``base`` of fixed
axis values.  Enumeration is the deterministic Cartesian product in
axis order, so a space always yields the same points in the same order;
grid/random/frontier sampling select deterministic subsets of it.

Named presets (:data:`PRESETS`) bundle a space with the workload pairs
it scores fidelity over; ``python -m repro.explore presets`` lists them.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.sim.machines import (
    Machine,
    MachineSpec,
    SPEC_BY_NAME,
    spec_from_axes,
)
from repro.workloads.synth import SynthRecipe

#: Axes that parameterize the software side rather than the machine.
#: ``workload`` (plus optional ``input``) sweeps workload identity as a
#: first-class axis — values are any registry-resolvable name, including
#: generated ``synth:<fingerprint>`` recipes; ``pair`` pins a full
#: workload/input pair and wins over the split axes when both appear.
SOFTWARE_AXES = ("opt_level", "pair", "workload", "input")

#: The whole-machine axis: values are Table III spec names.
MACHINE_AXIS = "machine"

_MACHINE_FIELDS = frozenset(MachineSpec(name="probe").axes())


def format_point(values: dict) -> str:
    """Canonical ``axis=value`` rendering of point coordinates, shared
    by sweep tables, the CLI, and :meth:`DesignPoint.label`."""
    parts = []
    for axis, value in sorted(values.items()):
        if axis == "pair" and not isinstance(value, str):
            value = "/".join(value)
        parts.append(f"{axis}={value}")
    return " ".join(parts)


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a name and its ordered candidate values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate values")


@dataclass(frozen=True)
class DesignPoint:
    """One coordinate of a space: swept axis values over the fixed base.

    ``values`` holds only the swept coordinates (what distinguishes the
    point within its space); ``base`` the space-wide constants.  Both
    are stored as sorted item tuples so points hash and compare by
    value.
    """

    values: tuple[tuple[str, object], ...]
    base: tuple[tuple[str, object], ...] = ()

    @classmethod
    def from_dicts(cls, values: dict, base: dict | None = None
                   ) -> "DesignPoint":
        return cls(
            values=tuple(sorted(values.items())),
            base=tuple(sorted((base or {}).items())),
        )

    def as_dict(self) -> dict:
        """Base overlaid with the swept values (swept wins)."""
        merged = dict(self.base)
        merged.update(self.values)
        return merged

    def swept(self) -> dict:
        return dict(self.values)

    def __getitem__(self, axis: str):
        return self.as_dict()[axis]

    def get(self, axis: str, default=None):
        return self.as_dict().get(axis, default)

    # -- lowering ----------------------------------------------------------

    def machine_spec(self) -> MachineSpec:
        """Resolve the point's machine axes to a :class:`MachineSpec`.

        A ``machine`` axis names a Table III spec, which the point's
        other machine axes may then override; without one the spec is
        assembled purely from axis values (defaults for the rest).
        """
        merged = self.as_dict()
        unknown = [
            k for k in merged
            if k not in _MACHINE_FIELDS and k not in SOFTWARE_AXES
            and k != MACHINE_AXIS
        ]
        if unknown:
            raise KeyError(
                f"unknown axes {', '.join(sorted(unknown))!s} "
                f"(machine axes: {', '.join(sorted(_MACHINE_FIELDS))}; "
                f"software axes: {', '.join(SOFTWARE_AXES)}; "
                f"whole-machine axis: {MACHINE_AXIS})"
            )
        overrides = {
            k: v for k, v in merged.items() if k in _MACHINE_FIELDS
        }
        machine_name = merged.get(MACHINE_AXIS)
        if machine_name is not None:
            try:
                spec = SPEC_BY_NAME[machine_name]
            except KeyError:
                raise KeyError(
                    f"unknown machine {machine_name!r} "
                    f"(available: {', '.join(sorted(SPEC_BY_NAME))})"
                ) from None
            if overrides:
                spec = MachineSpec(name=spec.name, **{**spec.axes(),
                                                      **overrides})
            return spec
        return spec_from_axes(**overrides)

    def machine(self) -> Machine:
        return self.machine_spec().build()

    @property
    def opt_level(self) -> int:
        return int(self.get("opt_level", 0))

    @property
    def pair(self) -> tuple[str, str] | None:
        """The point's pinned (workload, input) pair, if the space sweeps
        one; ``None`` means "score over the sweep's whole pair set"."""
        value = self.get("pair")
        if value is None:
            workload = self.get("workload")
            if workload is None:
                return None
            return (str(workload), str(self.get("input", "small")))
        if isinstance(value, str):
            workload, _, input_name = value.partition("/")
            return (workload, input_name or "small")
        return tuple(value)  # type: ignore[return-value]

    def label(self) -> str:
        """Compact human-readable coordinate of the swept axes only,
        e.g. ``opt_level=2 width=4``."""
        return format_point(dict(self.values))


@dataclass(frozen=True)
class DesignSpace:
    """Named, ordered axes over a base of fixed axis values."""

    name: str
    axes: tuple[Axis, ...]
    base: dict = field(default_factory=dict, hash=False)
    description: str = ""

    def __post_init__(self) -> None:
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"space {self.name!r} has duplicate axes")

    @property
    def size(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def axis_names(self) -> tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def points(self) -> list[DesignPoint]:
        """Deterministic full enumeration (Cartesian product, axis order)."""
        combos = itertools.product(*(axis.values for axis in self.axes))
        return [
            DesignPoint.from_dicts(
                dict(zip(self.axis_names(), combo)), self.base
            )
            for combo in combos
        ]

    # -- sampling ----------------------------------------------------------

    def sample(self, mode: str = "grid", n: int | None = None,
               seed: int | None = None,
               stride: int | None = None) -> list[DesignPoint]:
        """Deterministic subset selection over the full enumeration.

        * ``grid`` — every *stride*-th point (default 1), then capped at
          *n*: the cap applies **after** striding, so ``stride=2, n=3``
          is the first three of the strided sequence, not a stride over
          the first three points;
        * ``random`` — *n* points drawn without replacement from
          ``random.Random(seed)`` (order-stable for equal arguments;
          ``seed=None`` means seed 0);
        * ``frontier`` — the space's corners: every combination of each
          axis's first and last value, the classic bounding sweep.

        Arguments are validated uniformly: ``n <= 0`` selects nothing
        (an empty list, never an opaque error), *seed* is rejected for
        modes that would silently ignore it (anything but ``random``),
        and *stride* is rejected outside ``grid`` or below 1.
        """
        if mode not in ("grid", "random", "frontier"):
            raise ValueError(f"unknown sampling mode {mode!r} "
                             "(grid, random, frontier)")
        if seed is not None and mode != "random":
            raise ValueError(
                f"seed only applies to 'random' sampling; {mode!r} "
                "enumeration is already deterministic"
            )
        if stride is not None:
            if mode != "grid":
                raise ValueError(
                    f"stride only applies to 'grid' sampling, not {mode!r}"
                )
            if stride < 1:
                raise ValueError(f"stride must be >= 1, got {stride}")
        if n is not None and n <= 0:
            return []
        if mode == "grid":
            selected = self.points()[::(stride or 1)]
            return selected[:n] if n is not None else selected
        if mode == "random":
            points = self.points()
            if n is None or n >= len(points):
                return points
            rng = random.Random(seed or 0)
            picked = sorted(rng.sample(range(len(points)), n))
            return [points[i] for i in picked]
        extremes = [
            (axis.values[0], axis.values[-1]) if len(axis.values) > 1
            else (axis.values[0],)
            for axis in self.axes
        ]
        seen: set[DesignPoint] = set()
        corners: list[DesignPoint] = []
        for combo in itertools.product(*extremes):
            point = DesignPoint.from_dicts(
                dict(zip(self.axis_names(), combo)), self.base
            )
            if point not in seen:
                seen.add(point)
                corners.append(point)
        return corners[:n] if n is not None else corners


# -- presets -----------------------------------------------------------------


@dataclass(frozen=True)
class Preset:
    """A space plus the workload pairs its sweeps score fidelity over."""

    space: DesignSpace
    pairs: tuple[tuple[str, str], ...]

    @property
    def name(self) -> str:
        return self.space.name

    @property
    def description(self) -> str:
        return self.space.description


_SMOKE_PAIRS = (("adpcm", "small"), ("crc32", "small"))

#: Tiny seeded recipes for the synth-mix preset: one per instruction
#: mix, sized for a cold CI run (the names are self-describing — any
#: worker regenerates the programs from these strings alone).
_SYNTH_MIX_WORKLOADS = tuple(
    SynthRecipe(seed=2026, mix=mix, footprint=256, depth=2, trip=6,
                entropy=60, calls=2).name
    for mix in ("int", "mem", "branchy")
)

#: Pair set shared with the report's machine figures — big enough for a
#: meaningful suite average, small enough for a cold CI run.
EXPLORE_PAIRS = (
    ("adpcm", "small"),
    ("crc32", "small"),
    ("fft", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
)

#: The wider default grid (ROADMAP "wider grids"): all three ISAs at
#: every optimization level on a mid-range out-of-order core.
ISA_OPT_SPACE = DesignSpace(
    name="isa-opt",
    axes=(
        Axis("isa", ("x86", "x86_64", "ia64")),
        Axis("opt_level", (0, 1, 2, 3)),
    ),
    base={"width": 3, "rob": 96, "l1_kb": 32, "l2_kb": 2048,
          "frequency_ghz": 2.2, "l1_hit_cycles": 3, "memory_cycles": 130},
    description="ISA x opt-level sweep (x86 / x86_64 / ia64 at O0..O3) "
                "on a Core 2-class core",
)

PRESETS: dict[str, Preset] = {
    "smoke": Preset(
        DesignSpace(
            name="smoke",
            axes=(Axis("width", (2, 4)), Axis("opt_level", (0, 2))),
            base={"isa": "x86", "rob": 64, "l1_kb": 16, "l2_kb": 1024},
            description="2x2 width x opt grid over two pairs — CI-sized",
        ),
        _SMOKE_PAIRS,
    ),
    "isa-opt": Preset(ISA_OPT_SPACE, EXPLORE_PAIRS),
    "table3": Preset(
        DesignSpace(
            name="table3",
            axes=(
                Axis(MACHINE_AXIS, tuple(sorted(SPEC_BY_NAME))),
                Axis("opt_level", (0, 1, 2, 3)),
            ),
            description="the paper's five Table III machines at O0..O3 "
                        "(Fig. 11 as a sweep)",
        ),
        EXPLORE_PAIRS,
    ),
    "microarch": Preset(
        DesignSpace(
            name="microarch",
            axes=(
                Axis("width", (2, 3, 4)),
                Axis("rob", (32, 64, 128)),
                Axis("l1_kb", (8, 32)),
            ),
            base={"isa": "x86_64", "opt_level": 2, "l2_kb": 2048},
            description="18-point width x ROB x L1 microarchitecture grid "
                        "at -O2",
        ),
        _SMOKE_PAIRS,
    ),
    "synth-mix": Preset(
        DesignSpace(
            name="synth-mix",
            axes=(
                Axis("workload", _SYNTH_MIX_WORKLOADS),
                Axis("opt_level", (0, 2)),
            ),
            base={"isa": "x86", "width": 2, "rob": 64, "l1_kb": 16,
                  "l2_kb": 1024},
            description="generated recipes (one per instruction mix) x "
                        "opt-level — the workload axis over synthetic "
                        "programs, CI-sized",
        ),
        tuple((name, "small") for name in _SYNTH_MIX_WORKLOADS),
    ),
}


def get_preset(name: str) -> Preset:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r} (available: {', '.join(PRESETS)})"
        ) from None
