"""repro.explore — design-space exploration on top of the engine.

Four pieces:

* :mod:`repro.explore.space` — declarative parametric design spaces
  (machine axes + software axes) with deterministic enumeration, named
  presets, and grid/random/frontier sampling;
* :mod:`repro.explore.sweep` — the orchestrator that lowers each design
  point to engine task chains, fans out via the scheduler, and scores
  clone-vs-original fidelity per point;
* :mod:`repro.explore.search` — adaptive search (hill-climbing with
  random restarts, successive halving) spending a fixed evaluation
  budget in sweep-backed rounds instead of enumerating grids;
* :mod:`repro.explore.db` — the persistent SQLite cross-run results
  database (content-addressed rows; ``query``/``rank``/``compare``
  without re-running; search rounds stored as ``<search>/round-<k>``
  sweeps).

CLI: ``python -m repro.explore run|search|query|rank|compare|presets``
(also installed as ``repro-explore``).
"""

from repro.explore.db import (
    DB_SCHEMA_VERSION,
    RESULTS_DB_ENV,
    ResultRecord,
    ResultsDB,
    default_db_path,
    pareto_front,
    parse_round_label,
    result_key,
    round_label,
)
from repro.explore.search import (
    DEFAULT_BUDGET,
    HillClimbStrategy,
    STRATEGIES,
    SearchResult,
    SearchRound,
    SearchStrategy,
    SuccessiveHalvingStrategy,
    get_strategy,
    register_strategy,
    run_search,
)
from repro.explore.space import (
    Axis,
    DesignPoint,
    DesignSpace,
    EXPLORE_PAIRS,
    ISA_OPT_SPACE,
    PRESETS,
    Preset,
    get_preset,
)
from repro.explore.sweep import SweepResult, run_sweep, score_point

__all__ = [
    "Axis",
    "DB_SCHEMA_VERSION",
    "DEFAULT_BUDGET",
    "DesignPoint",
    "DesignSpace",
    "EXPLORE_PAIRS",
    "HillClimbStrategy",
    "ISA_OPT_SPACE",
    "PRESETS",
    "Preset",
    "RESULTS_DB_ENV",
    "ResultRecord",
    "ResultsDB",
    "STRATEGIES",
    "SearchResult",
    "SearchRound",
    "SearchStrategy",
    "SuccessiveHalvingStrategy",
    "SweepResult",
    "default_db_path",
    "get_preset",
    "get_strategy",
    "pareto_front",
    "parse_round_label",
    "register_strategy",
    "result_key",
    "round_label",
    "run_search",
    "run_sweep",
    "score_point",
]
