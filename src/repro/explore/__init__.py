"""repro.explore — design-space exploration on top of the engine.

Three pieces:

* :mod:`repro.explore.space` — declarative parametric design spaces
  (machine axes + software axes) with deterministic enumeration, named
  presets, and grid/random/frontier sampling;
* :mod:`repro.explore.sweep` — the orchestrator that lowers each design
  point to engine task chains, fans out via the scheduler, and scores
  clone-vs-original fidelity per point;
* :mod:`repro.explore.db` — the persistent SQLite cross-run results
  database (content-addressed rows; ``query``/``rank``/``compare``
  without re-running).

CLI: ``python -m repro.explore run|query|rank|compare|presets`` (also
installed as ``repro-explore``).
"""

from repro.explore.db import (
    DB_SCHEMA_VERSION,
    RESULTS_DB_ENV,
    ResultRecord,
    ResultsDB,
    default_db_path,
    pareto_front,
    result_key,
)
from repro.explore.space import (
    Axis,
    DesignPoint,
    DesignSpace,
    EXPLORE_PAIRS,
    ISA_OPT_SPACE,
    PRESETS,
    Preset,
    get_preset,
)
from repro.explore.sweep import SweepResult, run_sweep, score_point

__all__ = [
    "Axis",
    "DB_SCHEMA_VERSION",
    "DesignPoint",
    "DesignSpace",
    "EXPLORE_PAIRS",
    "ISA_OPT_SPACE",
    "PRESETS",
    "Preset",
    "RESULTS_DB_ENV",
    "ResultRecord",
    "ResultsDB",
    "SweepResult",
    "default_db_path",
    "get_preset",
    "pareto_front",
    "result_key",
    "run_sweep",
    "score_point",
]
