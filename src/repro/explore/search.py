"""Adaptive design-space search: budgeted strategies over sweep rounds.

Exhaustive grids stop scaling once a space grows past a few axes — the
microarch and isa-opt spaces are already the practical ceiling.  This
module spends a fixed **evaluation budget** adaptively instead.  Two
strategies ship behind one :class:`SearchStrategy` interface:

* ``hill`` — hill-climbing with random restarts: evaluate a random
  start, batch-evaluate its one-axis-step neighbors, move to the best
  improving neighbor, and restart from a fresh random point at local
  optima.  Deterministic under ``seed``.
* ``halving`` — successive halving: score a broad random cohort on a
  small budget (the first workload pair only), promote the best
  fraction to the full pair set, and repeat with fresh cohorts while
  budget remains.

Every round is lowered through :func:`repro.explore.sweep.run_sweep`,
so each evaluation is engine-cached, backend-parallel, and persisted to
the results DB under one sweep label per round
(``<search>/round-<k>``, see :func:`repro.explore.db.round_label`).
That makes searches **resumable and auditable exactly like sweeps**: a
re-issued search replays every already-scored round from the DB with
zero engine work, and the round trail answers ``query``/``rank`` (and
the report's search-trace section) without re-running anything.

CLI: ``python -m repro.explore search <preset> --strategy hill|halving
--budget N [--seed S]``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.engine.api import Engine
from repro.explore.db import ResultRecord, ResultsDB, round_label
from repro.explore.space import DesignPoint, Preset, format_point, get_preset
from repro.explore.sweep import SweepResult, run_sweep
from repro.tables import format_table

#: Default evaluation budget (total points scored across all rounds).
DEFAULT_BUDGET = 16


@dataclass(frozen=True)
class SearchRound:
    """One evaluated batch: a sweep persisted under its round label."""

    index: int
    label: str
    #: Why the strategy issued the round: ``start``/``restart``/
    #: ``neighbors`` (hill), ``cohort``/``promote`` (halving).
    purpose: str
    #: The workload pairs the round scored over (halving cohorts use a
    #: reduced set, so their scores are not comparable to full rounds).
    pairs: tuple[tuple[str, str], ...]
    sweep: SweepResult

    @property
    def best(self) -> ResultRecord | None:
        if not self.sweep.records:
            return None
        return min(self.sweep.records, key=lambda r: (r.score, r.key))


@dataclass
class SearchResult:
    """Everything one :func:`run_search` produced (or resumed)."""

    search: str
    strategy: str
    budget: int
    seed: int
    pairs: tuple[tuple[str, str], ...]
    rounds: list[SearchRound] = field(default_factory=list)

    @property
    def evaluated(self) -> int:
        """Budget spent: points scored or resumed, plus failed attempts."""
        return sum(len(r.sweep.records) + len(r.sweep.failed)
                   for r in self.rounds)

    @property
    def computed(self) -> int:
        return sum(r.sweep.computed for r in self.rounds)

    @property
    def resumed(self) -> int:
        return sum(r.sweep.resumed for r in self.rounds)

    def full_rounds(self) -> list[SearchRound]:
        """Rounds scored on the full pair set — the comparable ones."""
        return [r for r in self.rounds if tuple(r.pairs) == tuple(self.pairs)]

    @property
    def best(self) -> ResultRecord | None:
        """Best record among full-pair rounds (falling back to any round
        when the budget ran out before a full-pair evaluation)."""
        candidates = [r.best for r in self.full_rounds()
                      if r.best is not None]
        if not candidates:
            candidates = [r.best for r in self.rounds if r.best is not None]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.score, r.key))

    def format_table(self) -> str:
        """The search trace: per-round batch sizes and best scores."""
        rows = []
        best_so_far = math.inf
        for rnd in self.rounds:
            best = rnd.best
            full = tuple(rnd.pairs) == tuple(self.pairs)
            if best is not None and full:
                best_so_far = min(best_so_far, best.score)
            rows.append([
                rnd.index,
                rnd.purpose,
                len(rnd.sweep.records),
                rnd.sweep.resumed,
                len(rnd.pairs),
                best.score if best is not None else float("nan"),
                best_so_far if math.isfinite(best_so_far) else float("nan"),
                format_point(dict(best.point)) if best is not None else "",
            ])
        title = (
            f"Adaptive search '{self.search}' ({self.strategy}, budget "
            f"{self.budget}, seed {self.seed}): {self.evaluated} "
            f"evaluation(s) over {len(self.rounds)} round(s), "
            f"{self.resumed} resumed from DB"
        )
        return format_table(
            ["round", "purpose", "points", "resumed", "pairs",
             "round best", "best so far", "round best point"],
            rows, title=title,
        )


class SearchContext:
    """One in-flight search: budget accounting, per-round evaluation
    through ``run_sweep``, and the score memory strategies decide from.

    Strategies consume the budget exclusively via :meth:`evaluate`;
    everything else is read-only state.  All randomness goes through
    ``self.rng`` (seeded once), and decisions must depend only on
    scores — that is what makes a re-issued search retrace the same
    rounds and resume each one from the DB.
    """

    def __init__(self, preset: Preset, search: str, budget: int, seed: int,
                 engine: Engine, db: ResultsDB, pairs=None,
                 workers: int | None = None, backend=None) -> None:
        self.preset = preset
        self.space = preset.space
        self.search = search
        self.budget = budget
        self.rng = random.Random(seed)
        self.engine = engine
        self.db = db
        self.pairs = tuple(pairs) if pairs else preset.pairs
        self.workers = workers
        self.backend = backend
        self.result = SearchResult(search=search, strategy="", budget=budget,
                                   seed=seed, pairs=self.pairs)
        #: Full-pair scores, the strategies' decision state.
        self.scores: dict[DesignPoint, float] = {}
        #: Every point that has cost budget (any pair scope, incl. failed).
        self.attempted: set[DesignPoint] = set()
        self._spent = 0
        # Enumerate once: candidates() is called every restart/cohort
        # and must not rebuild the Cartesian product each time.
        self._points = self.space.points()

    def remaining(self) -> int:
        return max(0, self.budget - self._spent)

    def candidates(self) -> list[DesignPoint]:
        """Unattempted points in deterministic enumeration order."""
        return [p for p in self._points if p not in self.attempted]

    def pair_pinned(self) -> bool:
        """Whether the space's points pin their own workload pair (a
        ``pair`` axis or base entry) — ``run_sweep`` then scores each
        point on its pinned pair regardless of the sweep's pair set."""
        return "pair" in self.space.axis_names() or "pair" in self.space.base

    def neighbors(self, point: DesignPoint) -> list[DesignPoint]:
        """One-axis steps: each swept axis moved one position up or down
        its ordered value tuple, all other axes held."""
        swept = point.swept()
        out = []
        for axis in self.space.axes:
            values = axis.values
            index = values.index(swept[axis.name])
            for step in (index - 1, index + 1):
                if 0 <= step < len(values):
                    moved = dict(swept)
                    moved[axis.name] = values[step]
                    out.append(DesignPoint.from_dicts(moved, self.space.base))
        return out

    def evaluate(self, points: list[DesignPoint], purpose: str,
                 pairs=None) -> SearchRound | None:
        """Score one batch as the next round (``<search>/round-<k>``).

        The batch is truncated to the remaining budget; every submitted
        point costs one unit whether it is freshly scored, resumed from
        the DB, or fails.  Returns ``None`` when no budget is left.
        """
        pairs = tuple(pairs) if pairs else self.pairs
        batch = list(points[:self.remaining()])
        if not batch:
            return None
        label = round_label(self.search, len(self.result.rounds))
        sweep = run_sweep(
            self.preset, engine=self.engine, db=self.db,
            workers=self.workers, backend=self.backend,
            points=batch, pairs=pairs, sweep_name=label,
        )
        self._spent += len(batch)
        self.attempted.update(batch)
        if pairs == self.pairs:
            for point, record in zip(sweep.points, sweep.records):
                self.scores[point] = record.score
        rnd = SearchRound(index=len(self.result.rounds), label=label,
                          purpose=purpose, pairs=pairs, sweep=sweep)
        self.result.rounds.append(rnd)
        return rnd


class SearchStrategy:
    """Interface: spend ``ctx``'s budget via ``ctx.evaluate`` batches.

    Subclasses set :attr:`name` and implement :meth:`run`; registering
    with :func:`register_strategy` makes them addressable from the CLI
    (``--strategy <name>``) and :func:`run_search`.
    """

    name: str = ""

    def run(self, ctx: SearchContext) -> None:
        raise NotImplementedError


STRATEGIES: dict[str, type[SearchStrategy]] = {}


def register_strategy(cls: type[SearchStrategy]) -> type[SearchStrategy]:
    STRATEGIES[cls.name] = cls
    return cls


def get_strategy(name: str) -> SearchStrategy:
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown search strategy {name!r} "
            f"(available: {', '.join(sorted(STRATEGIES))})"
        ) from None


@register_strategy
class HillClimbStrategy(SearchStrategy):
    """Hill-climbing with random restarts (score is lower-is-better).

    Each climb evaluates the current point's unattempted one-axis
    neighbors as one round and moves to the best strictly-improving
    one; a local optimum (or exhausted neighborhood) triggers a restart
    from a random unattempted point.  Ties break on the canonical point
    label so the trajectory is deterministic under the seed.
    """

    name = "hill"

    def run(self, ctx: SearchContext) -> None:
        first = True
        while ctx.remaining() > 0:
            fresh = ctx.candidates()
            if not fresh:
                break  # the whole space has been attempted
            current = ctx.rng.choice(fresh)
            ctx.evaluate([current], "start" if first else "restart")
            first = False
            current_score = ctx.scores.get(current, math.inf)
            while ctx.remaining() > 0:
                steps = [p for p in ctx.neighbors(current)
                         if p not in ctx.attempted]
                if not steps:
                    break
                ctx.evaluate(steps, "neighbors")
                scored = [(ctx.scores[p], p.label(), p) for p in steps
                          if p in ctx.scores]
                if not scored:
                    break
                best_score, _, best = min(scored)
                if best_score >= current_score:
                    break  # local optimum -> restart
                current, current_score = best, best_score


@register_strategy
class SuccessiveHalvingStrategy(SearchStrategy):
    """Successive halving over the pair dimension.

    A broad random cohort is scored on the *small* budget — the
    preset's first workload pair only — and the best :attr:`keep`
    fraction is promoted to a full-pair-set round.  While budget
    remains, fresh cohorts repeat the rung pair, so the budget is
    always spent ~2:1 between broad screening and accurate promotion.
    With a single-pair preset — or a space whose points pin their own
    ``pair`` axis, where ``run_sweep`` scores each point on its pinned
    pair and the reduced rung would just duplicate evaluations — the
    two rungs coincide and the strategy degenerates to budgeted random
    screening.
    """

    name = "halving"

    #: Fraction of each cohort promoted to the full pair set.
    keep = 0.5

    def run(self, ctx: SearchContext) -> None:
        small_pairs = ctx.pairs[:1]
        two_rung = len(small_pairs) < len(ctx.pairs) and \
            not ctx.pair_pinned()
        while ctx.remaining() > 0:
            fresh = ctx.candidates()
            if not fresh:
                break
            # Reserve ~1/3 of the remaining budget for the promotion
            # rung; the cohort takes the rest.
            cohort_n = max(1, (2 * ctx.remaining()) // 3) if two_rung \
                else ctx.remaining()
            cohort_n = min(cohort_n, len(fresh))
            cohort = ctx.rng.sample(fresh, cohort_n)
            if not two_rung:
                ctx.evaluate(cohort, "cohort")
                continue
            rnd = ctx.evaluate(cohort, "cohort", pairs=small_pairs)
            if rnd is None or not rnd.sweep.records:
                break
            ranked = sorted(
                zip(rnd.sweep.points, rnd.sweep.records),
                key=lambda pr: (pr[1].score, pr[1].key),
            )
            promote_n = max(1, math.ceil(len(ranked) * self.keep))
            survivors = [point for point, _ in ranked[:promote_n]]
            if ctx.remaining() == 0:
                break
            ctx.evaluate(survivors, "promote")


def run_search(
    preset: Preset | str,
    strategy: SearchStrategy | str = "hill",
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    engine: Engine | None = None,
    db: ResultsDB | None = None,
    workers: int | None = None,
    pairs=None,
    search_name: str | None = None,
    backend=None,
) -> SearchResult:
    """Adaptively search a preset's space within an evaluation budget.

    Each strategy round is persisted to *db* as its own sweep
    (``<search>/round-<k>``) and lowered through the engine, so every
    evaluation is cached and a re-issued search — same preset,
    strategy, budget, and seed — resumes each round from the DB without
    a single compile, run, or replay.  The default search name encodes
    strategy and seed (``smoke-hill-s0``) so differently-seeded
    searches never share a round trail.
    """
    if isinstance(preset, str):
        preset = get_preset(preset)
    if budget < 1:
        raise ValueError(f"search budget must be >= 1, got {budget}")
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    engine = engine or Engine(backend=backend)
    owns_db = db is None
    db = db or ResultsDB()
    try:
        ctx = SearchContext(
            preset=preset,
            search=search_name or f"{preset.name}-{strategy.name}-s{seed}",
            budget=budget, seed=seed, engine=engine, db=db, pairs=pairs,
            workers=workers, backend=backend,
        )
        ctx.result.strategy = strategy.name
        strategy.run(ctx)
        return ctx.result
    finally:
        if owns_db:
            db.close()
