"""stringsearch — Boyer-Moore-Horspool search (MiBench office/stringsearch).

Searches pseudo-text for a set of patterns using the Horspool bad-
character rule, counting (possibly overlapping) matches.  The oracle
replays the identical algorithm in Python.
"""

from __future__ import annotations

from repro.workloads.data import int_array_literal, text_bytes

NAME = "stringsearch"

_SIZES = {"small": 4000, "large": 20000}
_PATTERNS = ("the", "ing", "qzx", "abab", "search", "ne")


def _text(input_name: str) -> list[int]:
    text = text_bytes(_SIZES[input_name], seed=67)
    # Plant some pattern occurrences so matches exist deterministically.
    for i, pattern in enumerate(_PATTERNS):
        step = 97 + 13 * i
        pos = 11 * (i + 3)
        while pos + len(pattern) < len(text):
            for k, ch in enumerate(pattern):
                text[pos + k] = ord(ch)
            pos += step
    return text


def _patterns_flat() -> tuple[list[int], list[int]]:
    flat: list[int] = []
    offsets: list[int] = []
    for pattern in _PATTERNS:
        offsets.append(len(flat))
        flat.extend(ord(ch) for ch in pattern)
    offsets.append(len(flat))
    return flat, offsets


_TEMPLATE = """\
{text_decl}
{pat_decl}
{off_decl}
int shift[128];

int horspool(int pat_off, int pat_len, int text_len) {{
  int i;
  for (i = 0; i < 128; i++) {{
    shift[i] = pat_len;
  }}
  for (i = 0; i < pat_len - 1; i++) {{
    shift[pats[pat_off + i] & 127] = pat_len - 1 - i;
  }}
  int matches = 0;
  int pos = 0;
  while (pos + pat_len <= text_len) {{
    int k = pat_len - 1;
    while (k >= 0 && text[pos + k] == pats[pat_off + k]) {{
      k--;
    }}
    if (k < 0) {{
      matches++;
    }}
    pos = pos + shift[text[pos + pat_len - 1] & 127];
  }}
  return matches;
}}

int main() {{
  int total = 0;
  int p;
  for (p = 0; p < {num_patterns}; p++) {{
    int off = offsets[p];
    int len = offsets[p + 1] - off;
    total = total + horspool(off, len, {text_len});
  }}
  printf("stringsearch %d\\n", total);
  return 0;
}}
"""


def get_source(input_name: str) -> str:
    text = _text(input_name)
    flat, offsets = _patterns_flat()
    return _TEMPLATE.format(
        text_decl=int_array_literal("text", text),
        pat_decl=int_array_literal("pats", flat),
        off_decl=int_array_literal("offsets", offsets),
        num_patterns=len(_PATTERNS),
        text_len=len(text),
    )


def reference_output(input_name: str) -> str:
    text = _text(input_name)
    total = 0
    for pattern in _PATTERNS:
        pat = [ord(ch) for ch in pattern]
        pat_len = len(pat)
        shift = [pat_len] * 128
        for i in range(pat_len - 1):
            shift[pat[i] & 127] = pat_len - 1 - i
        pos = 0
        while pos + pat_len <= len(text):
            k = pat_len - 1
            while k >= 0 and text[pos + k] == pat[k]:
                k -= 1
            if k < 0:
                total += 1
            pos += shift[text[pos + pat_len - 1] & 127]
    return f"stringsearch {total}\n"
