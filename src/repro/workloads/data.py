"""Deterministic input-data generators shared by workloads and oracles.

A fixed linear congruential generator produces identical sequences in the
embedded C arrays and the Python reference implementations, so checksums
can be verified independently of the compiler/simulator under test.
"""

from __future__ import annotations

_LCG_A = 1103515245
_LCG_C = 12345
_MASK = 0x7FFFFFFF


def lcg_stream(seed: int, count: int, modulo: int | None = None) -> list[int]:
    """Deterministic pseudo-random non-negative ints."""
    values: list[int] = []
    state = seed & _MASK
    for _ in range(count):
        state = (_LCG_A * state + _LCG_C) & _MASK
        values.append(state % modulo if modulo else state)
    return values


def audio_samples(count: int, seed: int = 7) -> list[int]:
    """Synthetic 16-bit audio: a rough waveform with noise."""
    noise = lcg_stream(seed, count, 1200)
    samples: list[int] = []
    phase = 0
    for i in range(count):
        phase = (phase + 13) % 400
        wave = (phase - 200) * 80
        samples.append(max(-32768, min(32767, wave + noise[i] - 600)))
    return samples


def int_array_literal(name: str, values: list[int], ctype: str = "int") -> str:
    """C global array declaration with an initializer list."""
    items = ", ".join(str(v) for v in values)
    return f"{ctype} {name}[{len(values)}] = {{{items}}};"


def text_bytes(count: int, seed: int = 31) -> list[int]:
    """Printable pseudo-text (codes 32..126) with word structure."""
    raw = lcg_stream(seed, count, 96)
    out: list[int] = []
    for i, value in enumerate(raw):
        if i % 6 == 5:
            out.append(32)  # spaces create word boundaries
        else:
            out.append(97 + value % 26)
    return out


def image_pixels(width: int, height: int, seed: int = 11) -> list[int]:
    """Synthetic 8-bit image: gradient + blobs + noise."""
    noise = lcg_stream(seed, width * height, 40)
    pixels: list[int] = []
    for y in range(height):
        for x in range(width):
            value = (x * 3 + y * 2) % 200
            if (x // 8 + y // 8) % 2 == 0:
                value += 30
            value += noise[y * width + x]
            pixels.append(min(255, value))
    return pixels
