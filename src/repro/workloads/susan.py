"""susan — SUSAN-style image smoothing and corner response
(MiBench auto/susan, simplified to its two hot kernels).

Pass 1 smooths with a brightness-similarity-weighted 3x3 window (the
USAN principle: only pixels within a brightness threshold contribute);
pass 2 computes a corner-strength count per pixel.  The oracle replays
the integer arithmetic exactly.
"""

from __future__ import annotations

from repro.workloads.data import image_pixels, int_array_literal

NAME = "susan"

_DIMS = {"small": (40, 30), "large": (72, 56)}
_THRESHOLD = 27

_TEMPLATE = """\
{image_decl}
int smoothed[{pixels}];

int main() {{
  int x;
  int y;
  int checksum = 0;
  for (y = 1; y < {height} - 1; y++) {{
    for (x = 1; x < {width} - 1; x++) {{
      int center = image[y * {width} + x];
      int total = 0;
      int weight = 0;
      int dy;
      for (dy = -1; dy <= 1; dy++) {{
        int dx;
        for (dx = -1; dx <= 1; dx++) {{
          int value = image[(y + dy) * {width} + x + dx];
          int diff = value - center;
          if (diff < 0) {{ diff = -diff; }}
          if (diff < {threshold}) {{
            total = total + value;
            weight++;
          }}
        }}
      }}
      smoothed[y * {width} + x] = total / weight;
    }}
  }}
  int corners = 0;
  for (y = 2; y < {height} - 2; y++) {{
    for (x = 2; x < {width} - 2; x++) {{
      int center = smoothed[y * {width} + x];
      int usan = 0;
      int dy;
      for (dy = -2; dy <= 2; dy++) {{
        int dx;
        for (dx = -2; dx <= 2; dx++) {{
          int value = smoothed[(y + dy) * {width} + x + dx];
          int diff = value - center;
          if (diff < 0) {{ diff = -diff; }}
          if (diff < {threshold}) {{
            usan++;
          }}
        }}
      }}
      if (usan < 13) {{
        corners++;
        checksum = checksum + usan * (x + y);
      }}
    }}
  }}
  int sum = 0;
  for (y = 1; y < {height} - 1; y++) {{
    for (x = 1; x < {width} - 1; x++) {{
      sum = sum + smoothed[y * {width} + x];
    }}
  }}
  printf("susan %d %d %d\\n", sum, corners, checksum);
  return 0;
}}
"""


def _image(input_name: str) -> tuple[list[int], int, int]:
    width, height = _DIMS[input_name]
    return image_pixels(width, height, seed=37), width, height


def get_source(input_name: str) -> str:
    pixels, width, height = _image(input_name)
    return _TEMPLATE.format(
        image_decl=int_array_literal("image", pixels),
        pixels=width * height,
        width=width,
        height=height,
        threshold=_THRESHOLD,
    )


def reference_output(input_name: str) -> str:
    pixels, width, height = _image(input_name)
    smoothed = [0] * (width * height)
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            center = pixels[y * width + x]
            total = 0
            weight = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    value = pixels[(y + dy) * width + x + dx]
                    if abs(value - center) < _THRESHOLD:
                        total += value
                        weight += 1
            smoothed[y * width + x] = total // weight
    corners = 0
    checksum = 0
    for y in range(2, height - 2):
        for x in range(2, width - 2):
            center = smoothed[y * width + x]
            usan = 0
            for dy in range(-2, 3):
                for dx in range(-2, 3):
                    if abs(smoothed[(y + dy) * width + x + dx] - center) < _THRESHOLD:
                        usan += 1
            if usan < 13:
                corners += 1
                checksum += usan * (x + y)
    total = 0
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            total += smoothed[y * width + x]
    return f"susan {total} {corners} {checksum}\n"
