"""gsm — LPC short-term analysis (MiBench telecomm/gsm, simplified).

The GSM 06.10 front end: per-frame autocorrelation over 160-sample
windows followed by Schur recursion for eight reflection coefficients,
in floating point; checksum aggregates quantized coefficients.  The
oracle replays the identical arithmetic.
"""

from __future__ import annotations

from repro.workloads.data import audio_samples, int_array_literal

NAME = "gsm"

_FRAMES = {"small": 10, "large": 45}
_FRAME_SIZE = 160
_ORDER = 8

_TEMPLATE = """\
{samples_decl}
float acf[{order_plus}];
float refl[{order}];
float pp[{order_plus}];
float kk[{order_plus}];

void autocorrelation(int frame) {{
  int lag;
  int i;
  int base = frame * {frame_size};
  for (lag = 0; lag <= {order}; lag++) {{
    float sum = 0.0;
    for (i = lag; i < {frame_size}; i++) {{
      sum = sum + (float)samples[base + i] * (float)samples[base + i - lag];
    }}
    acf[lag] = sum;
  }}
}}

void schur() {{
  int i;
  int m;
  if (acf[0] == 0.0) {{
    for (i = 0; i < {order}; i++) {{
      refl[i] = 0.0;
    }}
    return;
  }}
  for (i = 0; i <= {order}; i++) {{
    pp[i] = acf[i];
    kk[i] = acf[i];
  }}
  for (m = 0; m < {order}; m++) {{
    if (pp[0] == 0.0) {{
      refl[m] = 0.0;
      continue;
    }}
    float k = -kk[1] / pp[0];
    refl[m] = k;
    pp[0] = pp[0] + k * kk[1];
    for (i = 1; i < {order} - m; i++) {{
      pp[i] = pp[i + 1] + k * kk[i + 1];
      kk[i] = kk[i] + k * pp[i + 1];
    }}
  }}
}}

int main() {{
  int checksum = 0;
  int frame;
  int i;
  for (frame = 0; frame < {frames}; frame++) {{
    autocorrelation(frame);
    schur();
    for (i = 0; i < {order}; i++) {{
      float r = refl[i];
      if (r > 0.999) {{ r = 0.999; }}
      if (r < -0.999) {{ r = -0.999; }}
      checksum = checksum + (int)(r * 1000.0) + 1000;
    }}
  }}
  printf("gsm %d\\n", checksum);
  return 0;
}}
"""


def _samples(input_name: str) -> list[int]:
    return audio_samples(_FRAMES[input_name] * _FRAME_SIZE, seed=29)


def get_source(input_name: str) -> str:
    samples = _samples(input_name)
    return _TEMPLATE.format(
        samples_decl=int_array_literal("samples", samples),
        frames=_FRAMES[input_name],
        frame_size=_FRAME_SIZE,
        order=_ORDER,
        order_plus=_ORDER + 1,
    )


def reference_output(input_name: str) -> str:
    samples = _samples(input_name)
    frames = _FRAMES[input_name]
    checksum = 0
    for frame in range(frames):
        base = frame * _FRAME_SIZE
        acf = []
        for lag in range(_ORDER + 1):
            total = 0.0
            for i in range(lag, _FRAME_SIZE):
                total = total + float(samples[base + i]) * float(
                    samples[base + i - lag]
                )
            acf.append(total)
        refl = [0.0] * _ORDER
        if acf[0] != 0.0:
            pp = list(acf)
            kk = list(acf)
            for m in range(_ORDER):
                if pp[0] == 0.0:
                    refl[m] = 0.0
                    continue
                k = -kk[1] / pp[0]
                refl[m] = k
                pp[0] = pp[0] + k * kk[1]
                for i in range(1, _ORDER - m):
                    pp[i] = pp[i + 1] + k * kk[i + 1]
                    kk[i] = kk[i] + k * pp[i + 1]
        for r in refl:
            r = min(0.999, max(-0.999, r))
            checksum += int(r * 1000.0) + 1000
    return f"gsm {checksum}\n"
