"""Pluggable, prefix-routed workload registry.

Workload identity used to be "key into a hard-coded dict".  This module
makes it an open namespace: a :class:`WorkloadProvider` owns every name
under one prefix (the part before ``:``; the empty prefix owns bare
names), and :func:`get_workload` routes a name to its provider.  The
builtin provider wraps the hand-ported kernel modules unchanged; the
synthetic provider (:mod:`repro.workloads.synth`) resolves
``synth:<recipe-fingerprint>`` names by *regenerating* the program from
the fingerprint alone — no in-process state, so engine payloads,
process/shard workers, and daemon job bodies keep working with zero
protocol changes.

Every resolution failure raises :class:`UnknownWorkloadError` (a
``KeyError`` subclass, so legacy ``except KeyError`` call sites keep
working) carrying close-match suggestions for clean CLI/daemon errors.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Iterable


class UnknownWorkloadError(KeyError):
    """A workload (or input) name no provider can resolve.

    Subclasses ``KeyError`` so existing ``except KeyError`` handlers and
    tests keep working; ``str()`` is a human-readable one-liner with
    did-you-mean suggestions, suitable for CLI usage errors and HTTP 400
    bodies.
    """

    def __init__(self, name: str, suggestions: Iterable[str] = (),
                 detail: str = ""):
        self.name = name
        self.suggestions = tuple(suggestions)
        self.detail = detail
        super().__init__(name)

    def __str__(self) -> str:
        msg = f"unknown workload {self.name!r}"
        if self.detail:
            msg += f": {self.detail}"
        if self.suggestions:
            msg += f" (did you mean: {', '.join(self.suggestions)}?)"
        return msg


@dataclass(frozen=True)
class Workload:
    """One benchmark: source generator plus reference oracle."""

    name: str
    source: Callable[[str], str]
    reference: Callable[[str], str]
    inputs: tuple[str, ...] = ("small", "large")

    def source_for(self, input_name: str) -> str:
        if input_name not in self.inputs:
            raise UnknownWorkloadError(
                f"{self.name}/{input_name}",
                suggestions=tuple(f"{self.name}/{i}" for i in self.inputs),
                detail=f"workload {self.name!r} has no input {input_name!r}",
            )
        return self.source(input_name)

    def expected_output(self, input_name: str) -> str:
        return self.reference(input_name)


class WorkloadProvider:
    """Resolves every workload name under one prefix.

    ``prefix`` is the namespace before ``:`` (empty string for bare
    names).  ``resolve`` must be a pure function of the name — shard and
    process workers re-resolve from the name alone in fresh interpreters,
    so anything a provider needs must be encoded in the name itself.
    ``names`` enumerates the provider's *finite* name set (suite
    enumeration); generative providers with unbounded namespaces return
    an empty tuple.
    """

    prefix: str = ""

    def resolve(self, name: str) -> Workload:
        raise NotImplementedError

    def names(self) -> tuple[str, ...]:
        return ()


_PROVIDERS: dict[str, WorkloadProvider] = {}


def register_provider(provider: WorkloadProvider,
                      replace: bool = False) -> None:
    """Register *provider* for its prefix (``replace=False`` guards
    against accidental shadowing)."""
    prefix = provider.prefix
    if not replace and prefix in _PROVIDERS:
        raise ValueError(f"workload provider prefix {prefix!r} already "
                         f"registered ({type(_PROVIDERS[prefix]).__name__})")
    _PROVIDERS[prefix] = provider


def providers() -> dict[str, WorkloadProvider]:
    """Registered providers by prefix (a copy)."""
    return dict(_PROVIDERS)


def _suggestions(name: str) -> tuple[str, ...]:
    known = workload_names()
    return tuple(difflib.get_close_matches(name, known, n=3, cutoff=0.5))


def get_workload(name: str) -> Workload:
    """Route *name* to its provider; raises :class:`UnknownWorkloadError`."""
    prefix = name.split(":", 1)[0] if ":" in name else ""
    provider = _PROVIDERS.get(prefix)
    if provider is None:
        detail = (f"no provider registered for prefix {prefix!r}"
                  if prefix else "")
        raise UnknownWorkloadError(name, _suggestions(name), detail)
    return provider.resolve(name)


def workload_names() -> list[str]:
    """Every enumerable workload name, across all providers, sorted."""
    names: list[str] = []
    for provider in _PROVIDERS.values():
        names.extend(provider.names())
    return sorted(names)


def parse_pairs(text: str | None):
    """Parse CLI ``workload/input,...`` text into validated pairs.

    The shared ``--pairs`` grammar of the explore and experiments CLIs:
    comma-separated ``workload`` or ``workload/input`` items (input
    defaults to ``small``).  Every workload resolves through the
    registry, so typos and malformed ``synth:`` fingerprints fail here
    with suggestions (:class:`UnknownWorkloadError` → usage error)
    instead of deep in the pipeline.  Returns ``None`` for empty input
    so callers fall back to their default pair set.
    """
    if not text:
        return None
    pairs = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        workload, _, input_name = item.partition("/")
        input_name = input_name or "small"
        spec = get_workload(workload)
        if input_name not in spec.inputs:
            raise UnknownWorkloadError(
                f"{workload}/{input_name}",
                suggestions=tuple(f"{workload}/{i}" for i in spec.inputs),
                detail=f"workload {workload!r} has no input {input_name!r}",
            )
        pairs.append((workload, input_name))
    return tuple(pairs) or None


def all_pairs() -> list[tuple[str, str]]:
    """Every enumerable (workload, input) combination, like the paper's
    Fig. 4 axis — derived from the registry so provider additions can
    never desync the suite enumeration."""
    pairs: list[tuple[str, str]] = []
    for name in workload_names():
        workload = get_workload(name)
        for input_name in workload.inputs:
            pairs.append((name, input_name))
    return pairs
