"""sha — SHA-1 digest of a synthetic message (MiBench security/sha).

A full SHA-1 (padding, 80-round schedule) over pseudo-text; the oracle is
``hashlib.sha1`` on the identical byte stream.
"""

from __future__ import annotations

import hashlib

from repro.workloads.data import int_array_literal, text_bytes

NAME = "sha"

_SIZES = {"small": 2048, "large": 10240}

_TEMPLATE = """\
{msg_decl}
unsigned H0;
unsigned H1;
unsigned H2;
unsigned H3;
unsigned H4;
unsigned W[80];
unsigned block[16];

unsigned rotl(unsigned x, int n) {{
  return (x << n) | (x >> (32 - n));
}}

void process_block() {{
  int t;
  for (t = 0; t < 16; t++) {{
    W[t] = block[t];
  }}
  for (t = 16; t < 80; t++) {{
    W[t] = rotl(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1);
  }}
  unsigned a = H0;
  unsigned b = H1;
  unsigned c = H2;
  unsigned d = H3;
  unsigned e = H4;
  unsigned f;
  unsigned k;
  for (t = 0; t < 80; t++) {{
    if (t < 20) {{
      f = (b & c) | ((~b) & d);
      k = 1518500249u;
    }} else if (t < 40) {{
      f = b ^ c ^ d;
      k = 1859775393u;
    }} else if (t < 60) {{
      f = (b & c) | (b & d) | (c & d);
      k = 2400959708u;
    }} else {{
      f = b ^ c ^ d;
      k = 3395469782u;
    }}
    unsigned temp = rotl(a, 5) + f + e + k + W[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }}
  H0 = H0 + a;
  H1 = H1 + b;
  H2 = H2 + c;
  H3 = H3 + d;
  H4 = H4 + e;
}}

int main() {{
  H0 = 1732584193u;
  H1 = 4023233417u;
  H2 = 2562383102u;
  H3 = 271733878u;
  H4 = 3285377520u;
  int msg_len = {n};
  int total = {padded};
  int i;
  int j;
  for (i = 0; i < total; i = i + 64) {{
    for (j = 0; j < 16; j++) {{
      int base = i + j * 4;
      unsigned w = 0u;
      int k2;
      for (k2 = 0; k2 < 4; k2++) {{
        int pos = base + k2;
        unsigned byte = 0u;
        if (pos < msg_len) {{
          byte = (unsigned)message[pos];
        }} else if (pos == msg_len) {{
          byte = 128u;
        }}
        w = (w << 8) | byte;
      }}
      block[j] = w;
    }}
    if (i + 64 >= total) {{
      block[14] = (unsigned)({n} >> 29);
      block[15] = (unsigned)({n} * 8);
    }}
    process_block();
  }}
  printf("sha %u %u %u %u %u\\n", H0, H1, H2, H3, H4);
  return 0;
}}
"""


def _message(input_name: str) -> list[int]:
    return text_bytes(_SIZES[input_name], seed=53)


def _padded_length(n: int) -> int:
    # Message + 0x80 + zero pad + 8-byte length, rounded to 64.
    return ((n + 1 + 8 + 63) // 64) * 64


def get_source(input_name: str) -> str:
    message = _message(input_name)
    n = len(message)
    return _TEMPLATE.format(
        msg_decl=int_array_literal("message", message),
        n=n,
        padded=_padded_length(n),
    )


def reference_output(input_name: str) -> str:
    digest = hashlib.sha1(bytes(_message(input_name))).digest()
    words = [
        int.from_bytes(digest[i : i + 4], "big") for i in range(0, 20, 4)
    ]
    return "sha " + " ".join(str(w) for w in words) + "\n"
