"""Seeded synthetic workload generation over the ``repro.lang`` AST.

The paper's point is *generating* benchmarks; this module turns our own
workload suite into an open, parameterized family.  A
:class:`SynthRecipe` — seed, instruction-mix weights, memory footprint,
loop depth/trip counts, branch entropy, call-graph size — deterministically
expands into a mini-C program built directly as :mod:`repro.lang.ast_nodes`
and rendered through :mod:`repro.lang.printer`, so every generated
program round-trips through the front end by construction.

Generated workloads are **self-describing**: the canonical name
``synth:<fingerprint>`` encodes the full recipe (see
:meth:`SynthRecipe.fingerprint` / :meth:`SynthRecipe.parse`), so a name
alone is enough for a process/shard worker or the serve daemon to
regenerate byte-identical source in a fresh interpreter — exactly like
a content address, but invertible.  Recipes are additionally persisted
to the artifact store (:func:`persist_recipe`) for provenance.

Every generated program has a checksum oracle, like the hand-ported
kernels: :func:`reference_output` runs a pure-Python tree-walking
evaluator over the same AST, sharing the operator semantics tables
(:mod:`repro.ir.ops_eval`) and opcode-selection rules with the
IR builder, so compiler/simulator and oracle can never disagree about
C arithmetic.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from functools import lru_cache
from random import Random

from repro.ir import ops_eval
from repro.ir.builder import _FLOAT_OPS, _int_opcode
from repro.lang import ast_nodes as ast
from repro.lang.printer import format_program
from repro.lang.semantics import MATH_BUILTINS, analyze
from repro.lang.types import FLOAT, INT, UNSIGNED, Type
from repro.workloads.registry import (
    UnknownWorkloadError,
    Workload,
    WorkloadProvider,
)

#: Name-prefix the registry routes to the synthetic provider.
PREFIX = "synth"

#: Provenance stage name for recipes persisted to the artifact store.
RECIPE_STAGE = "synth-recipe"

#: Named instruction-mix weight tables: relative draw weights for the
#: statement kinds the generator emits inside loop bodies.
MIX_PRESETS: dict[str, dict[str, int]] = {
    "balanced": {"int": 4, "float": 2, "mem": 3, "branch": 2, "call": 1},
    "int": {"int": 8, "float": 0, "mem": 2, "branch": 2, "call": 1},
    "float": {"int": 2, "float": 6, "mem": 2, "branch": 1, "call": 1},
    "mem": {"int": 2, "float": 0, "mem": 7, "branch": 2, "call": 1},
    "branchy": {"int": 3, "float": 0, "mem": 2, "branch": 6, "call": 1},
}

#: ``large`` scales each worker's outermost trip count.
INPUT_SCALES = {"small": 1, "large": 4}

_FINGERPRINT_RE = re.compile(
    r"^s(\d+)-([a-z]+)-f(\d+)-d(\d+)-t(\d+)-e(\d+)-c(\d+)$"
)

_GRAMMAR = ("synth names look like synth:s<seed>-<mix>-f<footprint>-"
            "d<depth>-t<trip>-e<entropy>-c<calls>, e.g. "
            "synth:s7-balanced-f256-d2-t8-e60-c2; mixes: "
            + ", ".join(MIX_PRESETS))


@dataclass(frozen=True)
class SynthRecipe:
    """The complete, canonical parameterization of one generated program.

    The fingerprint is *invertible* — not a hash — because shard/process
    workers resolve workloads from the name alone against private, empty
    stores; every field must therefore be recoverable from the name.
    """

    seed: int = 1
    mix: str = "balanced"
    footprint: int = 256  # words in the global data array (power of two)
    depth: int = 2        # loop-nest depth per worker function
    trip: int = 8         # base trip count per loop level
    entropy: int = 50     # branch-taken entropy, percent (0 = predictable)
    calls: int = 2        # worker functions in the call graph

    def __post_init__(self) -> None:
        if not 0 <= self.seed <= 10**9:
            raise ValueError(f"seed must be in 0..1e9, got {self.seed}")
        if self.mix not in MIX_PRESETS:
            raise ValueError(f"unknown mix {self.mix!r} "
                             f"(available: {', '.join(MIX_PRESETS)})")
        if not (16 <= self.footprint <= 65536
                and self.footprint & (self.footprint - 1) == 0):
            raise ValueError("footprint must be a power of two in "
                             f"16..65536, got {self.footprint}")
        if not 1 <= self.depth <= 3:
            raise ValueError(f"depth must be in 1..3, got {self.depth}")
        if not 2 <= self.trip <= 256:
            raise ValueError(f"trip must be in 2..256, got {self.trip}")
        if not 0 <= self.entropy <= 100:
            raise ValueError(f"entropy must be in 0..100, got {self.entropy}")
        if not 1 <= self.calls <= 8:
            raise ValueError(f"calls must be in 1..8, got {self.calls}")

    def fingerprint(self) -> str:
        """Compact canonical encoding — the registry name minus prefix."""
        return (f"s{self.seed}-{self.mix}-f{self.footprint}-d{self.depth}"
                f"-t{self.trip}-e{self.entropy}-c{self.calls}")

    @property
    def name(self) -> str:
        """The canonical registry name, ``synth:<fingerprint>``."""
        return f"{PREFIX}:{self.fingerprint()}"

    def params(self) -> dict:
        return {
            "seed": self.seed, "mix": self.mix,
            "footprint": self.footprint, "depth": self.depth,
            "trip": self.trip, "entropy": self.entropy, "calls": self.calls,
        }

    @classmethod
    def from_params(cls, params: dict) -> "SynthRecipe":
        """Build from an untrusted params mapping (JSON-shaped values);
        raises ``ValueError`` on anything off-recipe."""
        if not isinstance(params, dict):
            raise ValueError("synth recipe must be a params object")
        fields = dict(cls().params())
        for key, value in params.items():
            if key not in fields:
                raise ValueError(f"unknown recipe field {key!r} "
                                 f"(available: {', '.join(fields)})")
            fields[key] = str(value) if key == "mix" else int(value)
        return cls(**fields)

    @classmethod
    def parse(cls, name: str) -> "SynthRecipe":
        """Invert a ``synth:<fingerprint>`` name (or bare fingerprint);
        raises :class:`UnknownWorkloadError` on malformed names."""
        text = name
        if text.startswith(f"{PREFIX}:"):
            text = text[len(PREFIX) + 1:]
        match = _FINGERPRINT_RE.match(text)
        if match is None:
            raise UnknownWorkloadError(name, detail=_GRAMMAR)
        seed, mix, footprint, depth, trip, entropy, calls = match.groups()
        try:
            return cls(seed=int(seed), mix=mix, footprint=int(footprint),
                       depth=int(depth), trip=int(trip), entropy=int(entropy),
                       calls=int(calls))
        except ValueError as exc:
            raise UnknownWorkloadError(name, detail=str(exc)) from None


# -- program generation ------------------------------------------------------


def _u(value: int) -> ast.IntLit:
    return ast.IntLit(value=value & 0xFFFFFFFF, unsigned=True)


def _i(value: int) -> ast.IntLit:
    return ast.IntLit(value=value)


def _ident(name: str) -> ast.Ident:
    return ast.Ident(name=name)


def _bin(op: str, left: ast.Expr, right: ast.Expr) -> ast.BinOp:
    return ast.BinOp(op=op, left=left, right=right)


def _assign(target: ast.Expr, value: ast.Expr, op: str = "=") -> ast.ExprStmt:
    return ast.ExprStmt(expr=ast.Assign(op=op, target=target, value=value))


class _Generator:
    """Expands one (recipe, input) into an :class:`ast.Program`.

    All randomness flows from one :class:`random.Random` seeded by the
    recipe fingerprint (not just the seed field, so recipes differing in
    any axis also differ in their drawn structure), making generation
    byte-identical across processes and platforms.
    """

    def __init__(self, recipe: SynthRecipe, input_name: str):
        if input_name not in INPUT_SCALES:
            raise UnknownWorkloadError(
                f"{recipe.name}/{input_name}",
                suggestions=tuple(f"{recipe.name}/{i}" for i in INPUT_SCALES),
            )
        self.recipe = recipe
        self.scale = INPUT_SCALES[input_name]
        digest = hashlib.sha256(recipe.fingerprint().encode()).digest()
        self.rng = Random(int.from_bytes(digest[:8], "big"))
        self.mask = recipe.footprint - 1
        self.weights = MIX_PRESETS[recipe.mix]
        self.uvars = ("acc", "v0", "v1", "v2")
        self.use_floats = self.weights["float"] > 0

    # -- expression material ---------------------------------------------

    def _uvar(self) -> ast.Ident:
        return _ident(self.rng.choice(self.uvars))

    def _uatom(self, counters: tuple[str, ...]) -> ast.Expr:
        roll = self.rng.randrange(10)
        if roll < 5:
            return self._uvar()
        if roll < 8 and counters:
            return _ident(self.rng.choice(counters))
        return _u(self.rng.randrange(1, 0xFFFF) | 1)

    def _uexpr(self, counters: tuple[str, ...], depth: int = 2) -> ast.Expr:
        """A random unsigned-arithmetic expression (wrap-safe by type)."""
        if depth <= 0:
            return self._uatom(counters)
        op = self.rng.choice(("+", "-", "*", "^", "|", "&", "<<", ">>",
                              "+", "^", "*"))
        left = self._uexpr(counters, depth - 1)
        if op in ("<<", ">>"):
            right: ast.Expr = _u(self.rng.randrange(1, 16))
        elif op == "*":
            right = _u(self.rng.randrange(3, 0x7FFF) | 1)
        else:
            right = self._uexpr(counters, depth - 1)
        return _bin(op, left, right)

    def _index(self, counters: tuple[str, ...]) -> ast.Expr:
        """An in-bounds data index: ``(expr) & (footprint-1)u``."""
        return _bin("&", self._uexpr(counters, depth=1), _u(self.mask))

    def _data_ref(self, counters: tuple[str, ...]) -> ast.ArrayRef:
        return ast.ArrayRef(base="data", index=self._index(counters))

    # -- statement kinds -------------------------------------------------

    def _int_stmt(self, counters: tuple[str, ...]) -> ast.Stmt:
        target = self._uvar()
        roll = self.rng.randrange(10)
        if roll < 2:
            divisor = _u(self.rng.randrange(3, 1021))
            op = self.rng.choice(("/", "%"))
            return _assign(target,
                           _bin("+", _bin(op, self._uexpr(counters, 1),
                                          divisor),
                                self._uexpr(counters, 1)))
        assign_op = self.rng.choice(("=", "^=", "+=", "-="))
        return _assign(target, self._uexpr(counters), op=assign_op)

    def _mem_stmt(self, counters: tuple[str, ...]) -> ast.Stmt:
        if self.rng.randrange(2):
            return _assign(self._uvar(), self._data_ref(counters),
                           op=self.rng.choice(("^=", "+=")))
        return _assign(self._data_ref(counters), self._uexpr(counters, 1))

    def _float_stmt(self, counters: tuple[str, ...]) -> ast.Stmt:
        target = _ident(self.rng.choice(("f0", "f1")))
        other = _ident("f1" if target.name == "f0" else "f0")
        roll = self.rng.randrange(4)
        if roll == 0:
            # Decaying affine update keeps magnitudes bounded.
            value: ast.Expr = _bin(
                "+",
                _bin("*", ast.Ident(name=target.name),
                     ast.FloatLit(value=round(self.rng.uniform(0.3, 0.9), 3))),
                _bin("*",
                     ast.Cast(target=FLOAT,
                              operand=_bin("&", self._uvar(), _u(1023))),
                     ast.FloatLit(value=round(self.rng.uniform(0.001, 0.01),
                                              4))),
            )
        elif roll == 1:
            value = ast.Call(name="sqrt", args=[
                _bin("+", ast.Call(name="fabs", args=[other]),
                     ast.FloatLit(value=1.0))])
        elif roll == 2:
            fn = self.rng.choice(("sin", "cos"))
            value = _bin("+", ast.Call(name=fn, args=[other]),
                         ast.Call(name="floor", args=[target]))
        else:
            value = ast.Call(name="log", args=[
                _bin("+", ast.Call(name="fabs", args=[target]),
                     ast.FloatLit(value=1.5))])
        return _assign(target, value)

    def _float_fold(self) -> ast.Stmt:
        """Fold float state back into the unsigned checksum path."""
        if self.rng.randrange(2):
            cond = _bin(self.rng.choice((">", "<=")), _ident("f0"),
                        _ident("f1"))
            return ast.If(cond=cond,
                          then=_assign(self._uvar(),
                                       _u(self.rng.randrange(3, 255)),
                                       op="^="),
                          other=_assign(self._uvar(), _u(1), op="+="))
        scaled = _bin("*", ast.Call(name="fabs", args=[_ident("f0")]),
                      ast.FloatLit(value=255.0))
        return _assign(self._uvar(),
                       _bin("&", ast.Cast(target=UNSIGNED, operand=scaled),
                            _u(1023)),
                       op="^=")

    def _branch_stmt(self, counters: tuple[str, ...],
                     in_for: bool) -> ast.Stmt:
        # Taken-probability tracks the entropy axis: threshold/256 of
        # a uniformly mixed byte, from ~never (entropy 0) to coin-flip.
        threshold = max(1, (128 * self.recipe.entropy) // 100)
        cond = _bin("<",
                    _bin("&", self._uexpr(counters, 1), _u(255)),
                    _u(threshold))
        if in_for and self.rng.randrange(8) == 0:
            escape = ast.Break() if self.rng.randrange(2) else ast.Continue()
            rare = _bin("==", _bin("&", self._uexpr(counters, 1), _u(2047)),
                        _u(self.rng.randrange(2048)))
            return ast.If(cond=rare, then=ast.Block(stmts=[escape]))
        if self.rng.randrange(4) == 0:
            value = ast.Ternary(cond=cond, then=self._uexpr(counters, 1),
                                other=self._uexpr(counters, 1))
            return _assign(self._uvar(), value)
        then = ast.Block(stmts=[self._simple_stmt(counters)])
        other = (ast.Block(stmts=[self._simple_stmt(counters)])
                 if self.rng.randrange(2) else None)
        return ast.If(cond=cond, then=then, other=other)

    def _call_stmt(self, counters: tuple[str, ...]) -> ast.Stmt:
        return _assign(self._uvar(),
                       ast.Call(name="mixbits",
                                args=[self._uvar(), self._uexpr(counters, 1)]))

    def _simple_stmt(self, counters: tuple[str, ...]) -> ast.Stmt:
        if self.rng.randrange(3) == 0:
            return self._mem_stmt(counters)
        return self._int_stmt(counters)

    def _body_stmt(self, counters: tuple[str, ...], in_for: bool) -> ast.Stmt:
        kinds, weights = zip(*[(k, w) for k, w in self.weights.items()
                               if w > 0])
        kind = self.rng.choices(kinds, weights=weights)[0]
        if kind == "int":
            return self._int_stmt(counters)
        if kind == "float":
            if self.rng.randrange(3) == 0:
                return self._float_fold()
            return self._float_stmt(counters)
        if kind == "mem":
            return self._mem_stmt(counters)
        if kind == "branch":
            return self._branch_stmt(counters, in_for)
        return self._call_stmt(counters)

    # -- functions -------------------------------------------------------

    def _helper(self) -> ast.FuncDecl:
        rot = self.rng.randrange(1, 15)
        mult = _u(self.rng.randrange(0x10001, 0xFFFFFFFF) | 1)
        body = _bin("+",
                    _bin("*", _bin("^", _ident("a"),
                                   _bin(">>", _ident("b"), _u(rot))),
                         mult),
                    _bin("^", _bin("<<", _ident("b"), _u(7)), _ident("a")))
        return ast.FuncDecl(
            name="mixbits", return_type=UNSIGNED,
            params=[ast.Param(name="a", base_type=UNSIGNED),
                    ast.Param(name="b", base_type=UNSIGNED)],
            body=ast.Block(stmts=[ast.Return(value=body)]),
        )

    def _loop_nest(self, level: int, counters: tuple[str, ...]) -> ast.Stmt:
        recipe = self.recipe
        counter = f"i{level}"
        counters = counters + (counter,)
        if level == 0:
            trip = max(2, recipe.trip) * self.scale
        else:
            trip = max(2, self.rng.randint(max(2, recipe.trip // 2),
                                           recipe.trip) >> level)
        if level + 1 < recipe.depth:
            inner: list[ast.Stmt] = [
                self._body_stmt(counters, in_for=True)
                for _ in range(self.rng.randint(0, 1))
            ]
            inner.append(self._loop_nest(level + 1, counters))
            inner.append(self._simple_stmt(counters))
        else:
            inner = [self._body_stmt(counters, in_for=True)
                     for _ in range(self.rng.randint(4, 7))]
        loop_kind = self.rng.randrange(4)
        if loop_kind == 3 and level > 0:
            # Occasional while-form for front-end coverage; the counter
            # still advances every iteration so termination is manifest.
            decl = ast.Decl(name=counter, base_type=INT, init=_i(0))
            cond = _bin("<", _ident(counter), _i(trip))
            bump = ast.ExprStmt(expr=ast.IncDec(
                op="++", target=_ident(counter), prefix=False))
            return ast.Block(stmts=[
                decl,
                ast.While(cond=cond, body=ast.Block(stmts=inner + [bump])),
            ])
        init = ast.Decl(name=counter, base_type=INT, init=_i(0))
        cond = _bin("<", _ident(counter), _i(trip))
        step = ast.IncDec(op="++", target=_ident(counter), prefix=False)
        return ast.For(init=init, cond=cond, step=step,
                       body=ast.Block(stmts=inner))

    def _worker(self, index: int) -> ast.FuncDecl:
        stmts: list[ast.Stmt] = [
            ast.Decl(name="acc", base_type=UNSIGNED, init=_ident("seed0")),
            ast.Decl(name="v0", base_type=UNSIGNED,
                     init=_u(self.rng.randrange(1, 0xFFFFFFFF))),
            ast.Decl(name="v1", base_type=UNSIGNED,
                     init=_u(self.rng.randrange(1, 0xFFFFFFFF))),
            ast.Decl(name="v2", base_type=UNSIGNED,
                     init=_u(self.rng.randrange(1, 0xFFFFFFFF))),
        ]
        if self.use_floats:
            stmts.append(ast.Decl(
                name="f0", base_type=FLOAT,
                init=ast.FloatLit(value=round(self.rng.uniform(0.5, 2.0), 3))))
            stmts.append(ast.Decl(
                name="f1", base_type=FLOAT,
                init=ast.FloatLit(value=round(self.rng.uniform(0.5, 2.0), 3))))
        stmts.append(self._loop_nest(0, ()))
        if self.use_floats:
            stmts.append(self._float_fold())
        ret = _bin("+", ast.Call(name="mixbits",
                                 args=[_ident("acc"),
                                       _bin("^", _ident("v0"), _ident("v1"))]),
                   _bin("<<", _ident("v2"), _u(1)))
        stmts.append(ast.Return(value=ret))
        return ast.FuncDecl(
            name=f"work{index}", return_type=UNSIGNED,
            params=[ast.Param(name="seed0", base_type=UNSIGNED)],
            body=ast.Block(stmts=stmts),
        )

    def _main(self) -> ast.FuncDecl:
        recipe = self.recipe
        f = recipe.footprint
        stmts: list[ast.Stmt] = [
            ast.Decl(name="x", base_type=UNSIGNED,
                     init=_u(self.rng.randrange(1, 0x7FFFFFFF))),
        ]
        fill = ast.For(
            init=ast.Decl(name="i", base_type=INT, init=_i(0)),
            cond=_bin("<", _ident("i"), _i(f)),
            step=ast.IncDec(op="++", target=_ident("i"), prefix=False),
            body=ast.Block(stmts=[
                _assign(_ident("x"),
                        _bin("+", _bin("*", _ident("x"), _u(1103515245)),
                             _u(12345))),
                _assign(ast.ArrayRef(base="data", index=_ident("i")),
                        _ident("x")),
            ]),
        )
        stmts.append(fill)
        stmts.append(ast.Decl(name="acc", base_type=UNSIGNED,
                              init=_u(self.rng.randrange(1, 0xFFFFFFFF))))
        for index in range(recipe.calls):
            seed_arg = (_bin("^", _ident("acc"),
                             _u(self.rng.randrange(1, 0xFFFFFFFF)))
                        if index else _u(self.rng.randrange(1, 0xFFFFFFFF)))
            stmts.append(_assign(
                _ident("acc"),
                ast.Call(name="mixbits",
                         args=[_ident("acc"),
                               ast.Call(name=f"work{index}",
                                        args=[seed_arg])])))
        stride = max(1, f // 64)
        stmts.append(ast.Decl(name="check", base_type=UNSIGNED, init=_u(0)))
        stmts.append(ast.For(
            init=ast.Decl(name="j", base_type=INT, init=_i(0)),
            cond=_bin("<", _ident("j"), _i(f)),
            step=ast.Assign(op="+=", target=_ident("j"), value=_i(stride)),
            body=ast.Block(stmts=[
                _assign(_ident("check"),
                        _bin("^", _bin("<<", _ident("check"), _u(1)),
                             ast.ArrayRef(base="data", index=_ident("j"))),
                        ),
            ]),
        ))
        stmts.append(ast.ExprStmt(expr=ast.Call(
            name="printf",
            args=[ast.StringLit(value="synth %u %u\n"),
                  _ident("acc"), _ident("check")])))
        stmts.append(ast.Return(value=_i(0)))
        return ast.FuncDecl(name="main", return_type=INT, params=[],
                            body=ast.Block(stmts=stmts))

    def generate(self) -> ast.Program:
        functions = [self._helper()]
        functions.extend(self._worker(index)
                         for index in range(self.recipe.calls))
        functions.append(self._main())
        globals_ = [ast.Decl(name="data", base_type=UNSIGNED,
                             array_length=self.recipe.footprint)]
        return ast.Program(globals=globals_, functions=functions)


def generate_program(recipe: SynthRecipe, input_name: str) -> ast.Program:
    """The (recipe, input) program as a fresh AST."""
    return _Generator(recipe, input_name).generate()


@lru_cache(maxsize=64)
def _source_cached(fingerprint: str, input_name: str) -> str:
    recipe = SynthRecipe.parse(fingerprint)
    return format_program(generate_program(recipe, input_name))


def generate_source(recipe: SynthRecipe, input_name: str) -> str:
    """Deterministic C source text for (recipe, input)."""
    return _source_cached(recipe.fingerprint(), input_name)


# -- reference evaluator -----------------------------------------------------


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _Evaluator:
    """Tree-walking interpreter over the generated AST subset.

    Mirrors the IR builder's lowering rules exactly — opcode selection
    via the builder's own tables, arithmetic via
    :mod:`repro.ir.ops_eval` — so its output is an oracle for the whole
    compile → simulate pipeline, independent of it.  Integer values are
    canonical unsigned 32-bit ints, floats are Python floats, matching
    the simulator's value domain.
    """

    def __init__(self, program: ast.Program, step_budget: int = 50_000_000):
        self.analyzer = analyze(program)
        self.functions = {func.name: func for func in program.functions}
        self.globals: dict[str, object] = {}
        for decl in program.globals:
            kind_zero = 0.0 if decl.base_type.is_float() else 0
            if decl.is_array:
                self.globals[decl.name] = [kind_zero] * decl.array_length
            else:
                self.globals[decl.name] = (
                    self._const(decl.init) if decl.init is not None
                    else kind_zero)
        self.output: list[str] = []
        self.steps = 0
        self.step_budget = step_budget

    def _const(self, expr: ast.Expr):
        value = self.eval_expr(expr, [{}])
        return value

    def run(self) -> str:
        self.call_function("main", [])
        return "".join(self.output)

    # -- helpers ---------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_budget:
            raise RuntimeError("synthetic evaluator exceeded its step budget")

    @staticmethod
    def _coerce(value, src: Type, dst_kind: str, unsigned: bool):
        """Mirror ``_FunctionLowering.coerce``: kind conversion only."""
        src_kind = "f" if src.is_float() else "i"
        if src_kind == dst_kind:
            return value
        if dst_kind == "f":
            op = "utof" if unsigned else "itof"
            return ops_eval.UNOPS[op](value)
        return ops_eval.c_ftoi(value)

    @staticmethod
    def _truthy(value, ctype: Type) -> bool:
        if ctype.is_float():
            return value != 0.0
        return (value & 0xFFFFFFFF) != 0

    def _lookup(self, name: str, env: list[dict]):
        for scope in reversed(env):
            if name in scope:
                return scope
        if name in self.globals:
            return self.globals
        raise KeyError(name)

    # -- expressions -----------------------------------------------------

    def eval_expr(self, expr: ast.Expr, env: list[dict]):
        self._tick()
        if isinstance(expr, ast.IntLit):
            return ops_eval.to_unsigned(expr.value)
        if isinstance(expr, ast.CharLit):
            return ops_eval.to_unsigned(expr.value)
        if isinstance(expr, ast.FloatLit):
            return float(expr.value)
        if isinstance(expr, ast.Ident):
            return self._lookup(expr.name, env)[expr.name]
        if isinstance(expr, ast.ArrayRef):
            array = self._lookup(expr.base, env)[expr.base]
            index = self.eval_expr(expr.index, env)
            return array[index]
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unop(expr, env)
        if isinstance(expr, ast.Cast):
            value = self.eval_expr(expr.operand, env)
            src = expr.operand.ctype
            if expr.target.is_float():
                return self._coerce(value, src, "f", src.is_unsigned())
            if src.is_float():
                return ops_eval.c_ftoi(value)
            return value
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, env)
        if isinstance(expr, ast.IncDec):
            current = self.eval_expr(expr.target, env)
            fn = ops_eval.BINOPS["add" if expr.op == "++" else "sub"]
            updated = fn(current, 1)
            self._write(expr.target, updated, env)
            return updated if expr.prefix else current
        if isinstance(expr, ast.Ternary):
            kind = "f" if expr.ctype.is_float() else "i"
            if self._truthy(self.eval_expr(expr.cond, env), expr.cond.ctype):
                chosen = expr.then
            else:
                chosen = expr.other
            value = self.eval_expr(chosen, env)
            return self._coerce(value, chosen.ctype, kind,
                                chosen.ctype.is_unsigned())
        raise TypeError(f"cannot evaluate expression {expr!r}")

    def _eval_binop(self, expr: ast.BinOp, env: list[dict]):
        op = expr.op
        if op in ("&&", "||"):
            left = self._truthy(self.eval_expr(expr.left, env),
                                expr.left.ctype)
            if op == "&&" and not left:
                return 0
            if op == "||" and left:
                return 1
            right = self._truthy(self.eval_expr(expr.right, env),
                                 expr.right.ctype)
            return 1 if right else 0
        left_type, right_type = expr.left.ctype, expr.right.ctype
        lhs = self.eval_expr(expr.left, env)
        rhs = self.eval_expr(expr.right, env)
        if left_type.is_float() or right_type.is_float():
            lhs = self._coerce(lhs, left_type, "f", left_type.is_unsigned())
            rhs = self._coerce(rhs, right_type, "f", right_type.is_unsigned())
            return ops_eval.BINOPS[_FLOAT_OPS[op]](lhs, rhs)
        opcode = _int_opcode(
            op,
            left_type.is_unsigned() or right_type.is_unsigned(),
            left_type.is_unsigned(),
        )
        return ops_eval.BINOPS[opcode](lhs, rhs)

    def _eval_unop(self, expr: ast.UnaryOp, env: list[dict]):
        value = self.eval_expr(expr.operand, env)
        is_float = expr.operand.ctype.is_float()
        if expr.op == "-":
            return ops_eval.UNOPS["fneg" if is_float else "neg"](value)
        if expr.op == "~":
            return ops_eval.UNOPS["not"](value)
        if expr.op == "!":
            if is_float:
                return 1 if value == 0.0 else 0
            return ops_eval.UNOPS["lognot"](value)
        if expr.op == "+":
            return value
        raise TypeError(f"unknown unary {expr.op!r}")

    def _eval_call(self, expr: ast.Call, env: list[dict]):
        if expr.name == "printf":
            from repro.sim.functional import _format_output

            values = [self.eval_expr(arg, env) for arg in expr.args[1:]]
            self.output.append(_format_output(expr.args[0].value, values))
            return 0
        if expr.name in MATH_BUILTINS:
            arg = expr.args[0]
            value = self._coerce(self.eval_expr(arg, env), arg.ctype, "f",
                                 arg.ctype.is_unsigned())
            return ops_eval.UNOPS[expr.name](value)
        if expr.name == "abs":
            return ops_eval.UNOPS["absi"](self.eval_expr(expr.args[0], env))
        sig = self.analyzer.functions[expr.name]
        args = []
        for arg_ast, param_type in zip(expr.args, sig.param_types):
            value = self.eval_expr(arg_ast, env)
            if not param_type.is_array():
                kind = "f" if param_type.is_float() else "i"
                value = self._coerce(value, arg_ast.ctype, kind,
                                     arg_ast.ctype.is_unsigned())
            args.append(value)
        return self.call_function(expr.name, args)

    def _eval_assign(self, expr: ast.Assign, env: list[dict]):
        target = expr.target
        target_type = target.ctype
        target_kind = "f" if target_type.is_float() else "i"
        if expr.op == "=":
            value = self._coerce(self.eval_expr(expr.value, env),
                                 expr.value.ctype, target_kind,
                                 expr.value.ctype.is_unsigned())
        else:
            current = self.eval_expr(target, env)
            rhs = self.eval_expr(expr.value, env)
            base_op = expr.op[:-1]
            if target_type.is_float() or expr.value.ctype.is_float():
                current = self._coerce(current, target_type, "f",
                                       target_type.is_unsigned())
                rhs = self._coerce(rhs, expr.value.ctype, "f",
                                   expr.value.ctype.is_unsigned())
                value = ops_eval.BINOPS[_FLOAT_OPS[base_op]](current, rhs)
                if target_kind == "i":
                    value = ops_eval.c_ftoi(value)
            else:
                opcode = _int_opcode(
                    base_op,
                    target_type.is_unsigned()
                    or expr.value.ctype.is_unsigned(),
                    target_type.is_unsigned(),
                )
                value = ops_eval.BINOPS[opcode](current, rhs)
        self._write(target, value, env)
        return value

    def _write(self, target: ast.Expr, value, env: list[dict]) -> None:
        if isinstance(target, ast.Ident):
            self._lookup(target.name, env)[target.name] = value
            return
        if isinstance(target, ast.ArrayRef):
            array = self._lookup(target.base, env)[target.base]
            index = self.eval_expr(target.index, env)
            array[index] = value
            return
        raise TypeError("invalid assignment target")

    # -- statements ------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, env: list[dict]) -> None:
        self._tick()
        if isinstance(stmt, ast.Decl):
            kind_zero = 0.0 if stmt.base_type.is_float() else 0
            kind = "f" if stmt.base_type.is_float() else "i"
            if stmt.is_array:
                values = [kind_zero] * stmt.array_length
                if isinstance(stmt.init, list):
                    for i, item in enumerate(stmt.init):
                        values[i] = self._coerce(
                            self.eval_expr(item, env), item.ctype, kind,
                            item.ctype.is_unsigned())
                env[-1][stmt.name] = values
                return
            if stmt.init is not None:
                value = self._coerce(self.eval_expr(stmt.init, env),
                                     stmt.init.ctype, kind,
                                     stmt.init.ctype.is_unsigned())
            else:
                value = kind_zero
            env[-1][stmt.name] = value
            return
        if isinstance(stmt, ast.ExprStmt):
            self.eval_expr(stmt.expr, env)
            return
        if isinstance(stmt, ast.Block):
            env.append({})
            try:
                for inner in stmt.stmts:
                    self.exec_stmt(inner, env)
            finally:
                env.pop()
            return
        if isinstance(stmt, ast.If):
            if self._truthy(self.eval_expr(stmt.cond, env), stmt.cond.ctype):
                self.exec_stmt(stmt.then, env)
            elif stmt.other is not None:
                self.exec_stmt(stmt.other, env)
            return
        if isinstance(stmt, ast.While):
            while self._truthy(self.eval_expr(stmt.cond, env),
                               stmt.cond.ctype):
                try:
                    self.exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    self.exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truthy(self.eval_expr(stmt.cond, env),
                                    stmt.cond.ctype):
                    break
            return
        if isinstance(stmt, ast.For):
            env.append({})
            try:
                if stmt.init is not None:
                    self.exec_stmt(stmt.init, env)
                while stmt.cond is None or self._truthy(
                        self.eval_expr(stmt.cond, env), stmt.cond.ctype):
                    try:
                        self.exec_stmt(stmt.body, env)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        pass
                    if stmt.step is not None:
                        self.eval_expr(stmt.step, env)
            finally:
                env.pop()
            return
        if isinstance(stmt, ast.Break):
            raise _BreakSignal()
        if isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        if isinstance(stmt, ast.Return):
            func_kind = self._current_return_kind
            if stmt.value is None:
                raise _ReturnSignal(None)
            value = self.eval_expr(stmt.value, env)
            if func_kind != "v":
                value = self._coerce(value, stmt.value.ctype, func_kind,
                                     unsigned=False)
            raise _ReturnSignal(value)
        raise TypeError(f"cannot execute statement {stmt!r}")

    def call_function(self, name: str, args: list):
        func = self.functions[name]
        return_kind = ("v" if func.return_type.is_void()
                       else "f" if func.return_type.is_float() else "i")
        scope = {param.name: value
                 for param, value in zip(func.params, args)}
        env = [scope]
        outer_kind = getattr(self, "_current_return_kind", None)
        self._current_return_kind = return_kind
        try:
            for stmt in func.body.stmts:
                self.exec_stmt(stmt, env)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._current_return_kind = outer_kind
        if return_kind == "v":
            return None
        return 0.0 if return_kind == "f" else 0


@lru_cache(maxsize=32)
def _reference_cached(fingerprint: str, input_name: str) -> str:
    recipe = SynthRecipe.parse(fingerprint)
    program = generate_program(recipe, input_name)
    return _Evaluator(program).run()


def reference_output(recipe: SynthRecipe, input_name: str) -> str:
    """The checksum oracle: evaluate the generated program in pure
    Python, independent of the compile → simulate pipeline."""
    return _reference_cached(recipe.fingerprint(), input_name)


# -- registry integration ----------------------------------------------------


def synth_workload(recipe: SynthRecipe) -> Workload:
    """Wrap *recipe* in the uniform :class:`Workload` interface."""
    return Workload(
        name=recipe.name,
        source=lambda input_name: generate_source(recipe, input_name),
        reference=lambda input_name: reference_output(recipe, input_name),
        inputs=tuple(INPUT_SCALES),
    )


class SynthProvider(WorkloadProvider):
    """Resolves ``synth:<fingerprint>`` names by regenerating from the
    fingerprint — stateless, so any worker process can do it."""

    prefix = PREFIX

    def resolve(self, name: str) -> Workload:
        return synth_workload(SynthRecipe.parse(name))

    def names(self) -> tuple[str, ...]:
        return ()


# -- artifact-store provenance ----------------------------------------------


def persist_recipe(store, recipe: SynthRecipe) -> str:
    """Record *recipe* in the artifact store keyed by its fingerprint.

    Belt-and-braces provenance: names are regenerable from params alone,
    but a persisted recipe documents what a store's synth artifacts
    were generated from.  Returns the store key."""
    key = store.key_for(RECIPE_STAGE, fingerprint=recipe.fingerprint())
    if store.get(key, None) is None:
        store.put(key, recipe.params(), stage=RECIPE_STAGE)
    return key


def stored_recipe(store, fingerprint: str) -> SynthRecipe | None:
    """Load a persisted recipe back, if present."""
    key = store.key_for(RECIPE_STAGE, fingerprint=fingerprint)
    params = store.get(key, None)
    return None if params is None else SynthRecipe.from_params(params)
