"""jpeg — 8x8 forward DCT + quantization + zigzag RLE
(MiBench consumer/jpeg's compute core).

Processes an image block by block: separable 2-D DCT, quantization with
the standard JPEG luminance table, zigzag scan and a run-length count.
The oracle replays the same float pipeline.
"""

from __future__ import annotations

from repro.workloads.data import image_pixels, int_array_literal

NAME = "jpeg"

_DIMS = {"small": (32, 32), "large": (64, 64)}

_QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

_ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]

_TEMPLATE = """\
{image_decl}
{quant_decl}
{zigzag_decl}
float block[64];
float temp[64];
int coeffs[64];

void dct_block() {{
  int u;
  int x;
  int i;
  for (i = 0; i < 64; i++) {{
    temp[i] = 0.0;
  }}
  for (u = 0; u < 8; u++) {{
    for (x = 0; x < 8; x++) {{
      float sum = 0.0;
      int v;
      for (v = 0; v < 8; v++) {{
        sum = sum + block[x * 8 + v] * cos((2.0 * (float)v + 1.0) * (float)u * 0.19634954084936207);
      }}
      temp[x * 8 + u] = sum;
    }}
  }}
  for (u = 0; u < 8; u++) {{
    for (x = 0; x < 8; x++) {{
      float sum = 0.0;
      int v;
      for (v = 0; v < 8; v++) {{
        sum = sum + temp[v * 8 + x] * cos((2.0 * (float)v + 1.0) * (float)u * 0.19634954084936207);
      }}
      float scale = 0.25;
      if (u == 0) {{ scale = scale * 0.7071067811865476; }}
      block[u * 8 + x] = sum * scale;
    }}
  }}
}}

int main() {{
  int bx;
  int by;
  int checksum = 0;
  int nonzero = 0;
  for (by = 0; by < {height}; by = by + 8) {{
    for (bx = 0; bx < {width}; bx = bx + 8) {{
      int x;
      int y;
      for (y = 0; y < 8; y++) {{
        for (x = 0; x < 8; x++) {{
          block[y * 8 + x] = (float)image[(by + y) * {width} + bx + x] - 128.0;
        }}
      }}
      dct_block();
      int i;
      for (i = 0; i < 64; i++) {{
        coeffs[i] = (int)(block[i] / (float)quant[i]);
      }}
      int run = 0;
      for (i = 0; i < 64; i++) {{
        int c = coeffs[zigzag[i]];
        if (c == 0) {{
          run++;
        }} else {{
          nonzero++;
          checksum = checksum + c * (i + 1) + run;
          run = 0;
        }}
      }}
    }}
  }}
  printf("jpeg %d %d\\n", checksum, nonzero);
  return 0;
}}
"""


def _image(input_name: str) -> tuple[list[int], int, int]:
    width, height = _DIMS[input_name]
    return image_pixels(width, height, seed=23), width, height


def get_source(input_name: str) -> str:
    pixels, width, height = _image(input_name)
    return _TEMPLATE.format(
        image_decl=int_array_literal("image", pixels),
        quant_decl=int_array_literal("quant", _QUANT),
        zigzag_decl=int_array_literal("zigzag", _ZIGZAG),
        width=width,
        height=height,
    )


def reference_output(input_name: str) -> str:
    import math

    pixels, width, height = _image(input_name)
    checksum = 0
    nonzero = 0
    for by in range(0, height, 8):
        for bx in range(0, width, 8):
            block = [0.0] * 64
            for y in range(8):
                for x in range(8):
                    block[y * 8 + x] = float(pixels[(by + y) * width + bx + x]) - 128.0
            temp = [0.0] * 64
            for u in range(8):
                for x in range(8):
                    total = 0.0
                    for v in range(8):
                        total = total + block[x * 8 + v] * math.cos(
                            (2.0 * float(v) + 1.0) * float(u) * 0.19634954084936207
                        )
                    temp[x * 8 + u] = total
            for u in range(8):
                for x in range(8):
                    total = 0.0
                    for v in range(8):
                        total = total + temp[v * 8 + x] * math.cos(
                            (2.0 * float(v) + 1.0) * float(u) * 0.19634954084936207
                        )
                    scale = 0.25
                    if u == 0:
                        scale = scale * 0.7071067811865476
                    block[u * 8 + x] = total * scale
            coeffs = [int(block[i] / float(_QUANT[i])) for i in range(64)]
            run = 0
            for i in range(64):
                c = coeffs[_ZIGZAG[i]]
                if c == 0:
                    run += 1
                else:
                    nonzero += 1
                    checksum += c * (i + 1) + run
                    run = 0
    return f"jpeg {checksum} {nonzero}\n"
