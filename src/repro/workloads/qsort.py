"""qsort — recursive quicksort (MiBench auto/qsort).

Median-of-three quicksort with an insertion-sort tail over an LCG array,
exercising recursion (the simulator's call stack) and data-dependent
branches.  The oracle sorts in Python.
"""

from __future__ import annotations

from repro.workloads.data import int_array_literal, lcg_stream

NAME = "qsort"

_SIZES = {"small": 900, "large": 4200}

_TEMPLATE = """\
{data_decl}

void swap(int a[], int i, int j) {{
  int t = a[i];
  a[i] = a[j];
  a[j] = t;
}}

void insertion(int a[], int lo, int hi) {{
  int i;
  for (i = lo + 1; i <= hi; i++) {{
    int key = a[i];
    int j = i - 1;
    while (j >= lo && a[j] > key) {{
      a[j + 1] = a[j];
      j--;
    }}
    a[j + 1] = key;
  }}
}}

void quicksort(int a[], int lo, int hi) {{
  if (hi - lo < 12) {{
    insertion(a, lo, hi);
    return;
  }}
  int mid = lo + (hi - lo) / 2;
  if (a[mid] < a[lo]) {{ swap(a, mid, lo); }}
  if (a[hi] < a[lo]) {{ swap(a, hi, lo); }}
  if (a[hi] < a[mid]) {{ swap(a, hi, mid); }}
  int pivot = a[mid];
  int i = lo;
  int j = hi;
  while (i <= j) {{
    while (a[i] < pivot) {{ i++; }}
    while (a[j] > pivot) {{ j--; }}
    if (i <= j) {{
      swap(a, i, j);
      i++;
      j--;
    }}
  }}
  quicksort(a, lo, j);
  quicksort(a, i, hi);
}}

int main() {{
  quicksort(data, 0, {last});
  int checksum = 0;
  int i;
  for (i = 0; i < {n}; i++) {{
    checksum = checksum + ((data[i] & 65535) ^ i);
  }}
  printf("qsort %d %d %d\\n", checksum, data[0] & 65535, data[{last}] & 65535);
  return 0;
}}
"""


def _values(input_name: str) -> list[int]:
    return lcg_stream(59, _SIZES[input_name])


def get_source(input_name: str) -> str:
    data = _values(input_name)
    return _TEMPLATE.format(
        data_decl=int_array_literal("data", data),
        n=len(data),
        last=len(data) - 1,
    )


def reference_output(input_name: str) -> str:
    data = sorted(_values(input_name))
    checksum = sum((v & 65535) ^ i for i, v in enumerate(data))
    # Keep the checksum in signed 32-bit range like the simulator.
    checksum &= 0xFFFFFFFF
    if checksum >= 0x80000000:
        checksum -= 0x100000000
    return (
        f"qsort {checksum} {data[0] & 65535} {data[-1] & 65535}\n"
    )
