"""patricia — PATRICIA trie insert/lookup (MiBench network/patricia).

A binary digital trie over 32-bit keys stored in parallel arrays (mini-C
has no structs), exercising pointer-chasing-style dependent loads and
data-dependent branches.  Lookups are verified against a Python set
(the membership answer is implementation-independent).
"""

from __future__ import annotations

from repro.workloads.data import int_array_literal, lcg_stream

NAME = "patricia"

_PARAMS = {"small": (300, 1800), "large": (1200, 8000)}  # (inserts, lookups)
_KEY_BITS = 16


def _keys(input_name: str) -> tuple[list[int], list[int]]:
    inserts, lookups = _PARAMS[input_name]
    insert_keys = lcg_stream(83, inserts, 1 << _KEY_BITS)
    lookup_keys = lcg_stream(89, lookups, 1 << _KEY_BITS)
    return insert_keys, lookup_keys


_TEMPLATE = """\
{insert_decl}
{lookup_decl}
int node_key[{max_nodes}];
int node_bit[{max_nodes}];
int node_left[{max_nodes}];
int node_right[{max_nodes}];
int node_count;

int bit_of(int key, int bit) {{
  return (key >> bit) & 1;
}}

int trie_find(int key) {{
  if (node_count == 0) {{ return -1; }}
  int current = 0;
  int prev = 0;
  int bit = {key_bits};
  while (node_bit[current] < bit) {{
    prev = current;
    bit = node_bit[current];
    if (bit_of(key, bit)) {{
      current = node_right[current];
    }} else {{
      current = node_left[current];
    }}
  }}
  return current;
}}

void trie_insert(int key) {{
  if (node_count == 0) {{
    node_key[0] = key;
    node_bit[0] = {key_bits};
    node_left[0] = 0;
    node_right[0] = 0;
    node_count = 1;
    return;
  }}
  int found = trie_find(key);
  if (node_key[found] == key) {{ return; }}
  int diff = {key_bits} - 1;
  while (bit_of(key, diff) == bit_of(node_key[found], diff)) {{
    diff--;
  }}
  int current = 0;
  int prev = -1;
  int bit = {key_bits};
  while (node_bit[current] < bit && node_bit[current] > diff) {{
    prev = current;
    bit = node_bit[current];
    if (bit_of(key, bit)) {{
      current = node_right[current];
    }} else {{
      current = node_left[current];
    }}
  }}
  int fresh = node_count;
  node_count = node_count + 1;
  node_key[fresh] = key;
  node_bit[fresh] = diff;
  if (bit_of(key, diff)) {{
    node_left[fresh] = current;
    node_right[fresh] = fresh;
  }} else {{
    node_left[fresh] = fresh;
    node_right[fresh] = current;
  }}
  if (prev < 0) {{
    // New root handling: re-point the search entry.
    if (node_bit[0] < {key_bits}) {{
      // splice before old root by swapping contents
      int k0 = node_key[0];
      int b0 = node_bit[0];
      int l0 = node_left[0];
      int r0 = node_right[0];
      node_key[0] = node_key[fresh];
      node_bit[0] = node_bit[fresh];
      node_left[0] = node_left[fresh];
      node_right[0] = node_right[fresh];
      node_key[fresh] = k0;
      node_bit[fresh] = b0;
      node_left[fresh] = l0;
      node_right[fresh] = r0;
      // fix self links after the swap
      if (node_left[0] == 0) {{ node_left[0] = fresh; }}
      if (node_right[0] == 0) {{ node_right[0] = fresh; }}
      if (node_left[fresh] == fresh) {{ node_left[fresh] = 0; }}
      if (node_right[fresh] == fresh) {{ node_right[fresh] = 0; }}
    }}
  }} else {{
    if (bit_of(key, node_bit[prev])) {{
      node_right[prev] = fresh;
    }} else {{
      node_left[prev] = fresh;
    }}
  }}
}}

int main() {{
  node_count = 0;
  int i;
  for (i = 0; i < {inserts}; i++) {{
    trie_insert(ikeys[i]);
  }}
  int hits = 0;
  for (i = 0; i < {lookups}; i++) {{
    int found = trie_find(lkeys[i]);
    if (found >= 0 && node_key[found] == lkeys[i]) {{
      hits++;
    }}
  }}
  printf("patricia %d %d\\n", node_count, hits);
  return 0;
}}
"""


def get_source(input_name: str) -> str:
    insert_keys, lookup_keys = _keys(input_name)
    return _TEMPLATE.format(
        insert_decl=int_array_literal("ikeys", insert_keys),
        lookup_decl=int_array_literal("lkeys", lookup_keys),
        max_nodes=len(insert_keys) + 2,
        inserts=len(insert_keys),
        lookups=len(lookup_keys),
        key_bits=_KEY_BITS,
    )


class _PyTrie:
    """Python mirror of the mini-C trie (same array algorithm)."""

    def __init__(self, capacity: int):
        self.key = [0] * capacity
        self.bit = [0] * capacity
        self.left = [0] * capacity
        self.right = [0] * capacity
        self.count = 0

    @staticmethod
    def _bit_of(key: int, bit: int) -> int:
        return (key >> bit) & 1

    def find(self, key: int) -> int:
        if self.count == 0:
            return -1
        current = 0
        bit = _KEY_BITS
        while self.bit[current] < bit:
            bit = self.bit[current]
            current = self.right[current] if self._bit_of(key, bit) else self.left[current]
        return current

    def insert(self, key: int) -> None:
        if self.count == 0:
            self.key[0] = key
            self.bit[0] = _KEY_BITS
            self.count = 1
            return
        found = self.find(key)
        if self.key[found] == key:
            return
        diff = _KEY_BITS - 1
        while self._bit_of(key, diff) == self._bit_of(self.key[found], diff):
            diff -= 1
        current = 0
        prev = -1
        bit = _KEY_BITS
        while self.bit[current] < bit and self.bit[current] > diff:
            prev = current
            bit = self.bit[current]
            current = self.right[current] if self._bit_of(key, bit) else self.left[current]
        fresh = self.count
        self.count += 1
        self.key[fresh] = key
        self.bit[fresh] = diff
        if self._bit_of(key, diff):
            self.left[fresh] = current
            self.right[fresh] = fresh
        else:
            self.left[fresh] = fresh
            self.right[fresh] = current
        if prev < 0:
            if self.bit[0] < _KEY_BITS:
                self.key[0], self.key[fresh] = self.key[fresh], self.key[0]
                self.bit[0], self.bit[fresh] = self.bit[fresh], self.bit[0]
                self.left[0], self.left[fresh] = self.left[fresh], self.left[0]
                self.right[0], self.right[fresh] = self.right[fresh], self.right[0]
                if self.left[0] == 0:
                    self.left[0] = fresh
                if self.right[0] == 0:
                    self.right[0] = fresh
                if self.left[fresh] == fresh:
                    self.left[fresh] = 0
                if self.right[fresh] == fresh:
                    self.right[fresh] = 0
        else:
            if self._bit_of(key, self.bit[prev]):
                self.right[prev] = fresh
            else:
                self.left[prev] = fresh


def reference_output(input_name: str) -> str:
    insert_keys, lookup_keys = _keys(input_name)
    trie = _PyTrie(len(insert_keys) + 2)
    for key in insert_keys:
        trie.insert(key)
    hits = 0
    for key in lookup_keys:
        found = trie.find(key)
        if found >= 0 and trie.key[found] == key:
            hits += 1
    return f"patricia {trie.count} {hits}\n"
