"""basicmath — cubic roots, integer square roots, angle conversion
(MiBench auto/basicmath).

Solves batches of cubic equations with the trigonometric Cardano method,
computes integer square roots bit-by-bit, and converts angles, like the
original's three kernels.  The oracle replays the same float ops.
"""

from __future__ import annotations

import math

NAME = "basicmath"

_PARAMS = {"small": (60, 2000, 360), "large": (260, 9000, 1440)}
_PI = 3.141592653589793


_TEMPLATE = """\
float roots[3];

int solve_cubic(float a, float b, float c, float d) {{
  float a1 = b / a;
  float a2 = c / a;
  float a3 = d / a;
  float q = (a1 * a1 - 3.0 * a2) / 9.0;
  float r = (2.0 * a1 * a1 * a1 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0;
  float r2 = r * r;
  float q3 = q * q * q;
  if (r2 < q3) {{
    float ratio = r / sqrt(q3);
    if (ratio > 1.0) {{ ratio = 1.0; }}
    if (ratio < -1.0) {{ ratio = -1.0; }}
    float theta = 0.0;
    float lo = 0.0;
    float hi = {pi};
    int it;
    for (it = 0; it < 30; it++) {{
      theta = (lo + hi) / 2.0;
      if (cos(theta) > ratio) {{ lo = theta; }} else {{ hi = theta; }}
    }}
    float sq = -2.0 * sqrt(q);
    roots[0] = sq * cos(theta / 3.0) - a1 / 3.0;
    roots[1] = sq * cos((theta + 2.0 * {pi}) / 3.0) - a1 / 3.0;
    roots[2] = sq * cos((theta + 4.0 * {pi}) / 3.0) - a1 / 3.0;
    return 3;
  }}
  float big = fabs(r) + sqrt(r2 - q3);
  if (big < 0.000001) {{ big = 0.000001; }}
  float e = exp(log(big) / 3.0);
  if (r > 0.0) {{ e = -e; }}
  float root = e;
  if (e != 0.0) {{ root = e + q / e; }}
  roots[0] = root - a1 / 3.0;
  return 1;
}}

int isqrt(int x) {{
  int result = 0;
  int bit = 1 << 14;
  while (bit > x) {{ bit = bit >> 2; }}
  while (bit != 0) {{
    if (x >= result + bit) {{
      x = x - (result + bit);
      result = (result >> 1) + bit;
    }} else {{
      result = result >> 1;
    }}
    bit = bit >> 2;
  }}
  return result;
}}

int main() {{
  float root_sum = 0.0;
  int count = 0;
  int i;
  for (i = 0; i < {cubics}; i++) {{
    float a = 1.0;
    float b = (float)(i % 40) - 20.0;
    float c = (float)((i * 3) % 60) - 25.0;
    float d = (float)((i * 7) % 30) - 15.0;
    int n = solve_cubic(a, b, c, d);
    count = count + n;
    int j;
    for (j = 0; j < n; j++) {{
      root_sum = root_sum + roots[j];
    }}
  }}
  int sq_sum = 0;
  for (i = 1; i < {squares}; i = i + 7) {{
    sq_sum = sq_sum + isqrt(i);
  }}
  float rad_sum = 0.0;
  for (i = 0; i < {angles}; i++) {{
    float rad = (float)i * {pi} / 180.0;
    rad_sum = rad_sum + rad * rad;
  }}
  printf("basicmath %d %.3f %d %.3f\\n", count, root_sum, sq_sum, rad_sum);
  return 0;
}}
"""


def get_source(input_name: str) -> str:
    cubics, squares, angles = _PARAMS[input_name]
    return _TEMPLATE.format(cubics=cubics, squares=squares, angles=angles, pi=_PI)


def _solve_cubic(a: float, b: float, c: float, d: float) -> list[float]:
    a1 = b / a
    a2 = c / a
    a3 = d / a
    q = (a1 * a1 - 3.0 * a2) / 9.0
    r = (2.0 * a1 * a1 * a1 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0
    r2 = r * r
    q3 = q * q * q
    if r2 < q3:
        ratio = r / math.sqrt(q3)
        ratio = min(1.0, max(-1.0, ratio))
        lo = 0.0
        hi = _PI
        theta = 0.0
        for _ in range(30):
            theta = (lo + hi) / 2.0
            if math.cos(theta) > ratio:
                lo = theta
            else:
                hi = theta
        sq = -2.0 * math.sqrt(q)
        return [
            sq * math.cos(theta / 3.0) - a1 / 3.0,
            sq * math.cos((theta + 2.0 * _PI) / 3.0) - a1 / 3.0,
            sq * math.cos((theta + 4.0 * _PI) / 3.0) - a1 / 3.0,
        ]
    big = abs(r) + math.sqrt(r2 - q3)
    if big < 0.000001:
        big = 0.000001
    e = math.exp(math.log(big) / 3.0)
    if r > 0.0:
        e = -e
    root = e + q / e if e != 0.0 else e
    return [root - a1 / 3.0]


def _isqrt(x: int) -> int:
    result = 0
    bit = 1 << 14
    while bit > x:
        bit >>= 2
    while bit != 0:
        if x >= result + bit:
            x -= result + bit
            result = (result >> 1) + bit
        else:
            result >>= 1
        bit >>= 2
    return result


def reference_output(input_name: str) -> str:
    cubics, squares, angles = _PARAMS[input_name]
    root_sum = 0.0
    count = 0
    for i in range(cubics):
        roots = _solve_cubic(
            1.0,
            float(i % 40) - 20.0,
            float((i * 3) % 60) - 25.0,
            float((i * 7) % 30) - 15.0,
        )
        count += len(roots)
        for value in roots:
            root_sum = root_sum + value
    sq_sum = 0
    for i in range(1, squares, 7):
        sq_sum += _isqrt(i)
    rad_sum = 0.0
    for i in range(angles):
        rad = float(i) * _PI / 180.0
        rad_sum = rad_sum + rad * rad
    return f"basicmath {count} {root_sum:.3f} {sq_sum} {rad_sum:.3f}\n"
