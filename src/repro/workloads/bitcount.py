"""bitcount — bit-population counts via several methods (MiBench auto/bitcount).

Four counting strategies (shift loop, Kernighan, nibble table, SWAR)
applied to an LCG stream; the oracle uses Python's ``int.bit_count``.
"""

from __future__ import annotations

from repro.workloads.data import int_array_literal, lcg_stream

NAME = "bitcount"

_SIZES = {"small": 1200, "large": 4200}

_NIBBLE_TABLE = [bin(i).count("1") for i in range(16)]

_TEMPLATE = """\
{data_decl}
{nibble_decl}

int count_shift(unsigned x) {{
  int count = 0;
  while (x) {{
    count = count + (int)(x & 1u);
    x = x >> 1;
  }}
  return count;
}}

int count_kernighan(unsigned x) {{
  int count = 0;
  while (x) {{
    x = x & (x - 1u);
    count++;
  }}
  return count;
}}

int count_nibbles(unsigned x) {{
  int count = 0;
  while (x) {{
    count = count + nibbles[x & 15u];
    x = x >> 4;
  }}
  return count;
}}

int count_swar(unsigned x) {{
  x = x - ((x >> 1) & 1431655765u);
  x = (x & 858993459u) + ((x >> 2) & 858993459u);
  x = (x + (x >> 4)) & 252645135u;
  return (int)((x * 16843009u) >> 24);
}}

int main() {{
  int sums0 = 0;
  int sums1 = 0;
  int sums2 = 0;
  int sums3 = 0;
  int i;
  for (i = 0; i < {n}; i++) {{
    unsigned x = (unsigned)data[i];
    sums0 = sums0 + count_shift(x);
    sums1 = sums1 + count_kernighan(x);
    sums2 = sums2 + count_nibbles(x);
    sums3 = sums3 + count_swar(x);
  }}
  printf("bitcount %d %d %d %d\\n", sums0, sums1, sums2, sums3);
  return 0;
}}
"""


def _values(input_name: str) -> list[int]:
    return lcg_stream(41, _SIZES[input_name])


def get_source(input_name: str) -> str:
    data = _values(input_name)
    return _TEMPLATE.format(
        data_decl=int_array_literal("data", data),
        nibble_decl=int_array_literal("nibbles", _NIBBLE_TABLE),
        n=len(data),
    )


def reference_output(input_name: str) -> str:
    total = sum(v.bit_count() for v in _values(input_name))
    return f"bitcount {total} {total} {total} {total}\n"
