"""The workload suite: hand-ported kernels plus generated programs.

Workload identity is an open namespace routed through the pluggable
registry (:mod:`repro.workloads.registry`): the builtin provider wraps
the mini-C re-implementations of the MiBench kernels the paper profiles
(one module per kernel, enumerated in ``_MODULES`` below), and the
synthetic provider (:mod:`repro.workloads.synth`) resolves seeded
``synth:<recipe-fingerprint>`` names by regenerating programs over the
:mod:`repro.lang` AST.  Every workload — ported or generated — has a
``small`` and ``large`` input and prints a deterministic checksum that
an independent Python reference computes too, giving the test suite
end-to-end compiler/simulator correctness oracles.

Dynamic instruction counts are scaled to interpreter speed (see
DESIGN.md §5): ``small`` inputs run roughly 50k-200k instructions at
-O0, ``large`` inputs several times more; synthetic recipes choose
their own scale via loop/footprint parameters.
"""

from __future__ import annotations

from repro.workloads import (
    adpcm,
    basicmath,
    bitcount,
    crc32,
    dijkstra,
    fft,
    gsm,
    jpeg,
    patricia,
    qsort,
    sha,
    stringsearch,
    susan,
)
from repro.workloads.registry import (
    UnknownWorkloadError,
    Workload,
    WorkloadProvider,
    all_pairs,
    get_workload,
    parse_pairs,
    providers,
    register_provider,
    workload_names,
)
from repro.workloads.synth import SynthProvider, SynthRecipe

_MODULES = (
    adpcm,
    basicmath,
    bitcount,
    crc32,
    dijkstra,
    fft,
    gsm,
    jpeg,
    patricia,
    qsort,
    sha,
    stringsearch,
    susan,
)

#: The builtin kernels by bare name — kept as a dict for the many
#: existing call sites; registry routing goes through the provider.
WORKLOADS: dict[str, Workload] = {
    module.NAME: Workload(
        name=module.NAME,
        source=module.get_source,
        reference=module.reference_output,
    )
    for module in _MODULES
}


class BuiltinProvider(WorkloadProvider):
    """The hand-ported kernel suite: bare (prefix-less) names."""

    prefix = ""

    def resolve(self, name: str) -> Workload:
        try:
            return WORKLOADS[name]
        except KeyError:
            from repro.workloads.registry import _suggestions

            raise UnknownWorkloadError(name, _suggestions(name)) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(WORKLOADS))


# replace=True keeps module re-imports (importlib.reload in tests,
# pickling round-trips) idempotent.
register_provider(BuiltinProvider(), replace=True)
register_provider(SynthProvider(), replace=True)

__all__ = [
    "WORKLOADS",
    "Workload",
    "WorkloadProvider",
    "UnknownWorkloadError",
    "SynthProvider",
    "SynthRecipe",
    "all_pairs",
    "get_workload",
    "parse_pairs",
    "providers",
    "register_provider",
    "workload_names",
]
