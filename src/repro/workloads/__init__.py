"""MiBench-like workload suite (§IV).

Thirteen mini-C re-implementations of the MiBench kernels the paper
profiles, each with a ``small`` and ``large`` input baked into the source
(the paper's profiles capture workload *and* input).  Every workload
prints a deterministic checksum; the Python reference implementations in
each module compute the same value independently, giving the test suite
end-to-end compiler/simulator correctness oracles.

Dynamic instruction counts are scaled to interpreter speed (see
DESIGN.md §5): ``small`` inputs run roughly 50k-200k instructions at -O0,
``large`` inputs several times more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads import (
    adpcm,
    basicmath,
    bitcount,
    crc32,
    dijkstra,
    fft,
    gsm,
    jpeg,
    patricia,
    qsort,
    sha,
    stringsearch,
    susan,
)


@dataclass(frozen=True)
class Workload:
    """One benchmark: source generator plus reference oracle."""

    name: str
    source: Callable[[str], str]
    reference: Callable[[str], str]
    inputs: tuple[str, ...] = ("small", "large")

    def source_for(self, input_name: str) -> str:
        if input_name not in self.inputs:
            raise KeyError(f"{self.name}: unknown input {input_name!r}")
        return self.source(input_name)

    def expected_output(self, input_name: str) -> str:
        return self.reference(input_name)


_MODULES = (
    adpcm,
    basicmath,
    bitcount,
    crc32,
    dijkstra,
    fft,
    gsm,
    jpeg,
    patricia,
    qsort,
    sha,
    stringsearch,
    susan,
)

WORKLOADS: dict[str, Workload] = {
    module.NAME: Workload(
        name=module.NAME,
        source=module.get_source,
        reference=module.reference_output,
    )
    for module in _MODULES
}


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


def all_pairs() -> list[tuple[str, str]]:
    """Every (workload, input) combination, like the paper's Fig. 4 axis."""
    pairs: list[tuple[str, str]] = []
    for name in workload_names():
        for input_name in WORKLOADS[name].inputs:
            pairs.append((name, input_name))
    return pairs
