"""crc32 — CRC-32 over a synthetic buffer (MiBench telecomm/crc32).

Table-driven CRC-32 (the IEEE 802.3 polynomial, same as ``binascii``),
computed over an LCG byte stream; the reference oracle is Python's
``binascii.crc32``.
"""

from __future__ import annotations

import binascii

from repro.workloads.data import int_array_literal, lcg_stream

NAME = "crc32"

_SIZES = {"small": 6000, "large": 30000}

_TEMPLATE = """\
{data_decl}
unsigned crcTable[256];

void build_table() {{
  unsigned c;
  int n;
  int k;
  for (n = 0; n < 256; n++) {{
    c = (unsigned)n;
    for (k = 0; k < 8; k++) {{
      if (c & 1u) {{
        c = 3988292384u ^ (c >> 1);
      }} else {{
        c = c >> 1;
      }}
    }}
    crcTable[n] = c;
  }}
}}

unsigned crc_buffer(int n) {{
  unsigned crc = 4294967295u;
  int i;
  for (i = 0; i < n; i++) {{
    crc = crcTable[(crc ^ (unsigned)data[i]) & 255u] ^ (crc >> 8);
  }}
  return crc ^ 4294967295u;
}}

int main() {{
  build_table();
  unsigned crc = crc_buffer({n});
  unsigned twice = crc ^ crc_buffer({half});
  printf("crc32 %u %u\\n", crc, twice);
  return 0;
}}
"""


def _payload(input_name: str) -> list[int]:
    return lcg_stream(97, _SIZES[input_name], 256)


def get_source(input_name: str) -> str:
    data = _payload(input_name)
    return _TEMPLATE.format(
        data_decl=int_array_literal("data", data),
        n=len(data),
        half=len(data) // 2,
    )


def reference_output(input_name: str) -> str:
    data = bytes(_payload(input_name))
    crc = binascii.crc32(data) & 0xFFFFFFFF
    twice = crc ^ (binascii.crc32(data[: len(data) // 2]) & 0xFFFFFFFF)
    return f"crc32 {crc} {twice}\n"
