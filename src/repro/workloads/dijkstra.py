"""dijkstra — all-pairs-ish shortest paths (MiBench network/dijkstra).

Dijkstra with a linear-scan priority queue over a dense random weight
matrix, from several source nodes.  The oracle mirrors the algorithm in
Python (any correct implementation yields the same distances).
"""

from __future__ import annotations

from repro.workloads.data import int_array_literal, lcg_stream

NAME = "dijkstra"

_PARAMS = {"small": (40, 10), "large": (64, 18)}  # (nodes, sources)
_INF = 1 << 28


def _matrix(nodes: int) -> list[int]:
    raw = lcg_stream(73, nodes * nodes, 100)
    flat: list[int] = []
    for i in range(nodes):
        for j in range(nodes):
            if i == j:
                flat.append(0)
            else:
                weight = raw[i * nodes + j] + 1
                flat.append(weight if weight < 95 else _INF)
    return flat


_TEMPLATE = """\
{matrix_decl}
int dist[{nodes}];
int visited[{nodes}];

int run_dijkstra(int source) {{
  int i;
  for (i = 0; i < {nodes}; i++) {{
    dist[i] = {inf};
    visited[i] = 0;
  }}
  dist[source] = 0;
  int round;
  for (round = 0; round < {nodes}; round++) {{
    int best = -1;
    int best_dist = {inf};
    for (i = 0; i < {nodes}; i++) {{
      if (!visited[i] && dist[i] < best_dist) {{
        best = i;
        best_dist = dist[i];
      }}
    }}
    if (best < 0) {{ break; }}
    visited[best] = 1;
    for (i = 0; i < {nodes}; i++) {{
      int w = adj[best * {nodes} + i];
      if (w < {inf} && dist[best] + w < dist[i]) {{
        dist[i] = dist[best] + w;
      }}
    }}
  }}
  int total = 0;
  for (i = 0; i < {nodes}; i++) {{
    if (dist[i] < {inf}) {{
      total = total + dist[i];
    }}
  }}
  return total;
}}

int main() {{
  int checksum = 0;
  int s;
  for (s = 0; s < {sources}; s++) {{
    checksum = checksum + run_dijkstra(s * {stride});
  }}
  printf("dijkstra %d\\n", checksum);
  return 0;
}}
"""


def get_source(input_name: str) -> str:
    nodes, sources = _PARAMS[input_name]
    return _TEMPLATE.format(
        matrix_decl=int_array_literal("adj", _matrix(nodes)),
        nodes=nodes,
        sources=sources,
        stride=max(1, nodes // sources),
        inf=_INF,
    )


def reference_output(input_name: str) -> str:
    nodes, sources = _PARAMS[input_name]
    adj = _matrix(nodes)
    stride = max(1, nodes // sources)
    checksum = 0
    for s in range(sources):
        source = s * stride
        dist = [_INF] * nodes
        visited = [False] * nodes
        dist[source] = 0
        for _ in range(nodes):
            best = -1
            best_dist = _INF
            for i in range(nodes):
                if not visited[i] and dist[i] < best_dist:
                    best = i
                    best_dist = dist[i]
            if best < 0:
                break
            visited[best] = True
            for i in range(nodes):
                w = adj[best * nodes + i]
                if w < _INF and dist[best] + w < dist[i]:
                    dist[i] = dist[best] + w
        checksum += sum(d for d in dist if d < _INF)
    return f"dijkstra {checksum}\n"
