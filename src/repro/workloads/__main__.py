"""``python -m repro.workloads`` — list, inspect, and mint workloads.

Examples::

    python -m repro.workloads list                  # suite enumeration
    python -m repro.workloads show crc32            # mini-C source
    python -m repro.workloads show crc32 --reference  # oracle output
    python -m repro.workloads synth --seed 7 --mix mem   # canonical name
    python -m repro.workloads synth --seed 7 --mix mem --source

``synth`` prints the canonical ``synth:<fingerprint>`` registry name
for a recipe — the name alone regenerates the program byte-identically
anywhere (sweep ``--pairs``, daemon submissions, shard workers), so
this is how CI and scripts mint workloads without touching Python.

Unknown workload or input names are usage errors (exit 2) with
did-you-mean suggestions, same as the explore/experiments CLIs.
"""

from __future__ import annotations

import argparse

from repro.workloads import (
    UnknownWorkloadError,
    WORKLOADS,
    get_workload,
    providers,
    workload_names,
)
from repro.workloads.synth import MIX_PRESETS, SynthRecipe


def _cmd_list(args) -> int:
    names = workload_names()
    if args.pairs:
        from repro.workloads import all_pairs

        for workload, input_name in all_pairs():
            print(f"{workload}/{input_name}")
        return 0
    prefixes = {p or "(builtin)": type(obj).__name__
                for p, obj in sorted(providers().items())}
    for name in names:
        print(name)
    print(f"\n{len(names)} enumerable workload(s); providers: "
          + ", ".join(f"{p} [{cls}]" for p, cls in prefixes.items()))
    print("generative namespace: synth:<fingerprint> "
          "(see 'python -m repro.workloads synth --help')")
    return 0


def _cmd_show(args, parser) -> int:
    try:
        workload = get_workload(args.name)
        if args.reference:
            print(workload.expected_output(args.input), end="")
        else:
            print(workload.source_for(args.input), end="")
    except UnknownWorkloadError as exc:
        parser.error(str(exc))
    return 0


def _cmd_synth(args, parser) -> int:
    try:
        recipe = SynthRecipe(
            seed=args.seed, mix=args.mix, footprint=args.footprint,
            depth=args.depth, trip=args.trip, entropy=args.entropy,
            calls=args.calls,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.source or args.reference:
        from repro.workloads.synth import generate_source, reference_output

        if args.source:
            print(generate_source(recipe, args.input), end="")
        if args.reference:
            print(reference_output(recipe, args.input), end="")
    else:
        print(recipe.name)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="List, inspect, and mint (synthetic) workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list", help="enumerate registry workload names")
    p_list.add_argument(
        "--pairs", action="store_true",
        help="print every (workload, input) pair instead, one per line")

    p_show = sub.add_parser(
        "show", help="print a workload's mini-C source (or oracle output)")
    p_show.add_argument("name", help="registry name (builtin or synth:...)")
    p_show.add_argument("--input", default="small",
                        help="input name (default: small)")
    p_show.add_argument(
        "--reference", action="store_true",
        help="print the Python reference oracle's output instead")

    p_synth = sub.add_parser(
        "synth",
        help="mint a synthetic recipe: prints its canonical synth: name")
    p_synth.add_argument("--seed", type=int, default=1,
                         help="RNG seed (default: %(default)s)")
    p_synth.add_argument("--mix", default="balanced",
                         choices=sorted(MIX_PRESETS),
                         help="statement mix preset (default: %(default)s)")
    p_synth.add_argument("--footprint", type=int, default=256,
                         help="data array words, power of two "
                              "(default: %(default)s)")
    p_synth.add_argument("--depth", type=int, default=2,
                         help="loop-nest depth 1..3 (default: %(default)s)")
    p_synth.add_argument("--trip", type=int, default=8,
                         help="base trip count 2..256 (default: %(default)s)")
    p_synth.add_argument("--entropy", type=int, default=50,
                         help="branch entropy percent 0..100 "
                              "(default: %(default)s)")
    p_synth.add_argument("--calls", type=int, default=2,
                         help="worker functions 1..8 (default: %(default)s)")
    p_synth.add_argument("--input", default="small",
                         choices=("small", "large"),
                         help="input for --source/--reference "
                              "(default: small)")
    p_synth.add_argument("--source", action="store_true",
                         help="print the generated mini-C source")
    p_synth.add_argument(
        "--reference", action="store_true",
        help="print the reference evaluator's output (the checksum "
             "oracle the compiled binary must reproduce)")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "show":
        return _cmd_show(args, parser)
    return _cmd_synth(args, parser)


if __name__ == "__main__":
    raise SystemExit(main())
