"""adpcm — IMA ADPCM encode/decode (MiBench telecomm/adpcm).

Encodes a synthetic audio buffer to 4-bit ADPCM, decodes it back, and
prints checksums of the code stream and the reconstructed signal.
"""

from __future__ import annotations

from repro.workloads.data import audio_samples, int_array_literal

NAME = "adpcm"

_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41,
    45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190,
    209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724,
    796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132,
    7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500,
    20350, 22385, 24623, 27086, 29794, 32767,
]
_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

_SIZES = {"small": 800, "large": 3600}

_TEMPLATE = """\
{samples_decl}
{steps_decl}
{index_decl}
int codes[{n}];
int decoded[{n}];

int encode(int n) {{
  int valpred = 0;
  int index = 0;
  int checksum = 0;
  int i;
  for (i = 0; i < n; i++) {{
    int val = samples[i];
    int step = stepTable[index];
    int diff = val - valpred;
    int sign = 0;
    if (diff < 0) {{ sign = 8; diff = -diff; }}
    int delta = 0;
    int vpdiff = step >> 3;
    if (diff >= step) {{ delta = 4; diff = diff - step; vpdiff = vpdiff + step; }}
    step = step >> 1;
    if (diff >= step) {{ delta = delta | 2; diff = diff - step; vpdiff = vpdiff + step; }}
    step = step >> 1;
    if (diff >= step) {{ delta = delta | 1; vpdiff = vpdiff + step; }}
    if (sign) {{ valpred = valpred - vpdiff; }} else {{ valpred = valpred + vpdiff; }}
    if (valpred > 32767) {{ valpred = 32767; }}
    if (valpred < -32768) {{ valpred = -32768; }}
    delta = delta | sign;
    index = index + indexTable[delta];
    if (index < 0) {{ index = 0; }}
    if (index > 88) {{ index = 88; }}
    codes[i] = delta;
    checksum = checksum + delta;
  }}
  return checksum;
}}

int decode(int n) {{
  int valpred = 0;
  int index = 0;
  int checksum = 0;
  int i;
  for (i = 0; i < n; i++) {{
    int delta = codes[i];
    int step = stepTable[index];
    index = index + indexTable[delta];
    if (index < 0) {{ index = 0; }}
    if (index > 88) {{ index = 88; }}
    int sign = delta & 8;
    delta = delta & 7;
    int vpdiff = step >> 3;
    if (delta & 4) {{ vpdiff = vpdiff + step; }}
    if (delta & 2) {{ vpdiff = vpdiff + (step >> 1); }}
    if (delta & 1) {{ vpdiff = vpdiff + (step >> 2); }}
    if (sign) {{ valpred = valpred - vpdiff; }} else {{ valpred = valpred + vpdiff; }}
    if (valpred > 32767) {{ valpred = 32767; }}
    if (valpred < -32768) {{ valpred = -32768; }}
    decoded[i] = valpred;
    checksum = checksum + (valpred & 255);
  }}
  return checksum;
}}

int main() {{
  int enc = encode({n});
  int dec = decode({n});
  printf("adpcm %d %d\\n", enc, dec);
  return 0;
}}
"""


def get_source(input_name: str) -> str:
    n = _SIZES[input_name]
    samples = audio_samples(n)
    return _TEMPLATE.format(
        samples_decl=int_array_literal("samples", samples),
        steps_decl=int_array_literal("stepTable", _STEP_TABLE),
        index_decl=int_array_literal("indexTable", _INDEX_TABLE),
        n=n,
    )


def _encode(samples: list[int]) -> tuple[list[int], int]:
    valpred = 0
    index = 0
    checksum = 0
    codes: list[int] = []
    for val in samples:
        step = _STEP_TABLE[index]
        diff = val - valpred
        sign = 0
        if diff < 0:
            sign = 8
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index = max(0, min(88, index + _INDEX_TABLE[delta]))
        codes.append(delta)
        checksum += delta
    return codes, checksum


def _decode(codes: list[int]) -> int:
    valpred = 0
    index = 0
    checksum = 0
    for delta in codes:
        step = _STEP_TABLE[index]
        index = max(0, min(88, index + _INDEX_TABLE[delta]))
        sign = delta & 8
        delta &= 7
        vpdiff = step >> 3
        if delta & 4:
            vpdiff += step
        if delta & 2:
            vpdiff += step >> 1
        if delta & 1:
            vpdiff += step >> 2
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        checksum += valpred & 255
    return checksum


def reference_output(input_name: str) -> str:
    samples = audio_samples(_SIZES[input_name])
    codes, enc = _encode(samples)
    dec = _decode(codes)
    return f"adpcm {enc} {dec}\n"
