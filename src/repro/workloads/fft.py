"""fft — iterative radix-2 FFT (MiBench telecomm/FFT).

In-place Cooley-Tukey with bit-reversal permutation and per-stage
``sin``/``cos`` twiddles over a synthetic signal, plus an inverse pass;
checksums are energy sums printed with fixed precision.  The Python
oracle replays the identical floating-point operation sequence, so the
values match bit-for-bit.
"""

from __future__ import annotations

import math

from repro.workloads.data import lcg_stream

NAME = "fft"

_SIZES = {"small": 128, "large": 512}
_WAVES = 4


def _signal(n: int) -> list[float]:
    noise = lcg_stream(19, n, 1000)
    return [
        math.sin(2.0 * math.pi * 5.0 * i / n) * 100.0
        + math.sin(2.0 * math.pi * 13.0 * i / n) * 40.0
        + (noise[i] - 500) * 0.05
        for i in range(n)
    ]


_TEMPLATE = """\
float re[{n}];
float im[{n}];
{init_decl}

void fft(int n, int inverse) {{
  int i;
  int j = 0;
  for (i = 0; i < n - 1; i++) {{
    if (i < j) {{
      float tr = re[i];
      re[i] = re[j];
      re[j] = tr;
      float ti = im[i];
      im[i] = im[j];
      im[j] = ti;
    }}
    int k = n >> 1;
    while (k <= j) {{
      j = j - k;
      k = k >> 1;
    }}
    j = j + k;
  }}
  int len;
  for (len = 2; len <= n; len = len << 1) {{
    float ang = 6.283185307179586 / (float)len;
    if (inverse) {{ ang = -ang; }}
    int half = len >> 1;
    for (i = 0; i < n; i = i + len) {{
      int m;
      for (m = 0; m < half; m++) {{
        float wr = cos(ang * (float)m);
        float wi = -sin(ang * (float)m);
        int a = i + m;
        int b = a + half;
        float xr = re[b] * wr - im[b] * wi;
        float xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
      }}
    }}
  }}
  if (inverse) {{
    for (i = 0; i < n; i++) {{
      re[i] = re[i] / (float)n;
      im[i] = im[i] / (float)n;
    }}
  }}
}}

int main() {{
  int i;
  for (i = 0; i < {n}; i++) {{
    im[i] = 0.0;
  }}
  fft({n}, 0);
  float energy = 0.0;
  for (i = 0; i < {n}; i++) {{
    energy = energy + re[i] * re[i] + im[i] * im[i];
  }}
  fft({n}, 1);
  float drift = 0.0;
  for (i = 0; i < {n}; i++) {{
    drift = drift + fabs(re[i] - sig[i]);
  }}
  printf("fft %.2f %.4f\\n", energy, drift);
  return 0;
}}
"""


def get_source(input_name: str) -> str:
    n = _SIZES[input_name]
    signal = _signal(n)
    items = ", ".join(f"{v!r}" for v in signal)
    init_decl = f"float sig[{n}] = {{{items}}};"
    # re[] starts as a copy of the signal.
    copy_loop = "\n".join(
        ["void load_signal() {", "  int i;",
         f"  for (i = 0; i < {n}; i++) {{", "    re[i] = sig[i];", "  }", "}"]
    )
    template = _TEMPLATE.replace(
        "int main() {{\n  int i;",
        "int main() {{\n  int i;\n  load_signal();",
        1,
    )
    return copy_loop + "\n" + template.format(n=n, init_decl=init_decl)


def _fft_py(re: list[float], im: list[float], n: int, inverse: bool) -> None:
    j = 0
    for i in range(n - 1):
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
        k = n >> 1
        while k <= j:
            j -= k
            k >>= 1
        j += k
    length = 2
    while length <= n:
        ang = 6.283185307179586 / float(length)
        if inverse:
            ang = -ang
        half = length >> 1
        for i in range(0, n, length):
            for m in range(half):
                wr = math.cos(ang * float(m))
                wi = -math.sin(ang * float(m))
                a = i + m
                b = a + half
                xr = re[b] * wr - im[b] * wi
                xi = re[b] * wi + im[b] * wr
                re[b] = re[a] - xr
                im[b] = im[a] - xi
                re[a] = re[a] + xr
                im[a] = im[a] + xi
        length <<= 1
    if inverse:
        for i in range(n):
            re[i] /= float(n)
            im[i] /= float(n)


def reference_output(input_name: str) -> str:
    n = _SIZES[input_name]
    signal = _signal(n)
    re = list(signal)
    im = [0.0] * n
    _fft_py(re, im, n, False)
    energy = 0.0
    for i in range(n):
        energy = energy + re[i] * re[i] + im[i] * im[i]
    _fft_py(re, im, n, True)
    drift = 0.0
    for i in range(n):
        drift = drift + abs(re[i] - signal[i])
    return f"fft {energy:.2f} {drift:.4f}\n"
