"""Compiler driver: mini-C source to linked binary."""

from repro.cc.driver import CompileResult, compile_program, compile_to_ir

__all__ = ["CompileResult", "compile_program", "compile_to_ir"]
