"""The compiler driver, playing the role GCC plays in the paper.

``compile_program(source, isa, opt_level)`` runs the full pipeline:

    parse → [O3: inline, unroll] → analyze → lower (O0: memory-resident
    locals / O1+: promoted scalars) → IR passes → [CISC O1+: load-op
    fusion] → register allocation → code generation → link

The optimization-level behaviours are chosen to reproduce the first-order
compiler effects the paper measures: the O0→O1 dynamic-instruction drop
(Fig. 5), the shrinking load fraction at O2 (Fig. 6), and the extra
static-scheduling benefit IA64 sees from O2/O3 (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.lang.semantics import analyze
from repro.ir.builder import lower_program
from repro.ir.instructions import IRProgram
from repro.ir.verify import verify_program
from repro.isa.linker import link_program
from repro.isa.machine import Binary
from repro.isa.targets import ISA, ISA_BY_NAME, X86
from repro.opt.inline import inline_small_functions
from repro.opt.pipeline import optimize_ir
from repro.opt.unroll import unroll_loops


@dataclass
class CompileResult:
    """A compiled binary plus pipeline byproducts useful for analysis."""

    binary: Binary
    ir: IRProgram
    ast: Program
    opt_stats: dict = field(default_factory=dict)


def _resolve_isa(isa: ISA | str) -> ISA:
    if isinstance(isa, str):
        return ISA_BY_NAME[isa]
    return isa


def compile_to_ir(
    source: str,
    opt_level: int = 0,
    cisc_fusion: bool = False,
    allocatable_int_regs: int = 16,
):
    """Front half of the pipeline: source to optimized IR."""
    program = parse_program(source)
    if opt_level >= 3:
        program = inline_small_functions(program)
        # Unrolling doubles loop-body register pressure; production
        # compilers throttle it on register-starved targets, so do we.
        if allocatable_int_regs >= 8:
            program = unroll_loops(program)
    analyzer = analyze(program)
    ir = lower_program(program, analyzer, promote_scalars=opt_level >= 1)
    verify_program(ir)
    stats = optimize_ir(
        ir, opt_level, cisc_fusion=cisc_fusion,
        allocatable_int_regs=allocatable_int_regs,
    )
    verify_program(ir)
    return program, ir, stats


def compile_program(source: str, isa: ISA | str = X86, opt_level: int = 0) -> CompileResult:
    """Compile mini-C *source* for *isa* at *opt_level* (0..3)."""
    if opt_level not in (0, 1, 2, 3):
        raise ValueError(f"unsupported optimization level {opt_level}")
    target = _resolve_isa(isa)
    program, ir, stats = compile_to_ir(
        source,
        opt_level=opt_level,
        cisc_fusion=target.cisc_fusion,
        allocatable_int_regs=target.allocatable_int,
    )
    binary = link_program(ir, target, opt_level)
    return CompileResult(binary=binary, ir=ir, ast=program, opt_stats=stats)
