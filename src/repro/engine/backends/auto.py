"""Cost-aware composite backend: route each task to the pool it deserves.

The per-task backends treat every stage uniformly, which wastes either
side of the cost spectrum: a timing replay shipped to a process pool
pays to pickle its multi-megabyte trace dependency out and its result
back, while a compile on a thread pool serializes real work behind the
GIL.  :class:`AutoBackend` closes that gap with one rule, stated in the
units both tables share (process-pool dispatch = 1.0):

    route a task to the heavyweight pool only when its estimated
    compute (:func:`repro.engine.tasks.stage_cost`) is at least the
    pool's ``dispatch_cost``; otherwise keep it on threads.

With the default tables that sends ``replay`` (cost 0.5) to the thread
pool and ``compile``/``run``/``synthesize``/clone stages — and any
stage the table doesn't know — to the process pool.  Attaching a
learned cost model (``cost_model=`` — anything with ``cost(stage)`` in
the same units, typically :class:`repro.serve.costs.CostModel`) swaps
the estimate for an EWMA over measured stage wall-clock, so routing
follows reality when it diverges from the static prior.  Routing decisions
are recorded on the instance (``routed`` counts per pool,
``routed_stages`` stage → pool), which is the accounting the tests and
the acceptance criteria assert against.

Two consequences of the design are worth stating plainly:

* the scheduler resolves cache hits parent-side before dispatch, so
  *warm* replays never reach any pool — what the thread pool actually
  receives are cold replays, where thread dispatch trades the process
  pool's per-task trace pickling for GIL-serialized execution.  That
  trade favors threads for the mixed graphs this backend targets
  (replays interleaved with heavy compiles that keep the process pool
  busy); a replay-only cold storm would parallelize better on
  ``process``, which stays one ``--backend`` flag away.
* each pool is sized to ``workers``.  Thread-pool tasks are GIL-bound
  Python, so they add at most roughly one core of CPU on top of the
  process workers — not ``2×workers`` — but strict single-budget
  accounting should use a simple backend.

The composite does not persist worker-side (``persists = False``): the
scheduler writes every result from the parent, so mixed graphs keep one
uniform accounting no matter which pool computed a node.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.engine.backends.base import ExecutionBackend, register_backend
from repro.engine.backends.local import ProcessPoolBackend, ThreadBackend
from repro.engine.tasks import Task, stage_cost


@register_backend
class AutoBackend(ExecutionBackend):
    """Composite thread+process backend routed by the stage cost table."""

    name = "auto"
    # Dispatch overhead of the composite is whichever pool a task lands
    # on; advertise the cheap side (routing already accounts for the
    # expensive one).
    dispatch_cost = ThreadBackend.dispatch_cost

    #: A stage at least this expensive amortizes process-pool dispatch.
    heavy_cost: float = ProcessPoolBackend.dispatch_cost

    def __init__(self, workers: int = 1, heavy_cost: float | None = None,
                 cost_model=None):
        super().__init__(workers)
        if heavy_cost is not None:
            self.heavy_cost = heavy_cost
        #: Optional learned cost source — anything with a
        #: ``cost(stage) -> float`` in static-table units, typically a
        #: :class:`repro.serve.costs.CostModel`.  When set, routing
        #: follows measured history (EWMA over observed wall-clock)
        #: instead of the static table, so a stage whose real cost
        #: diverges from its estimate re-routes itself.
        self.cost_model = cost_model
        self._threads: ThreadPoolExecutor | None = None
        self._processes: ProcessPoolExecutor | None = None
        #: Dispatch accounting: pool name -> tasks routed there.
        self.routed: Counter = Counter()
        #: stage -> pool name it was last routed to.
        self.routed_stages: dict[str, str] = {}

    def task_cost(self, stage: str) -> float:
        """The cost estimate routing uses: learned when a cost model is
        attached, the static table otherwise."""
        if self.cost_model is not None:
            return self.cost_model.cost(stage)
        return stage_cost(stage)

    def route(self, task: Task) -> str:
        """``"process"`` or ``"thread"`` for *task*, by the cost rule."""
        return "process" if self.task_cost(task.stage) >= self.heavy_cost \
            else "thread"

    def submit(self, task: Task, deps: dict[str, Any]) -> Future:
        pool_name = self.route(task)
        self.routed[pool_name] += 1
        self.routed_stages[task.stage] = pool_name
        if pool_name == "process":
            if self._processes is None:  # lazy, like the simple pools
                self._processes = ProcessPoolExecutor(
                    max_workers=self.workers)
            pool = self._processes
        else:
            if self._threads is None:
                self._threads = ThreadPoolExecutor(max_workers=self.workers)
            pool = self._threads
        return pool.submit(self.context.runner, task, deps)

    def shutdown(self) -> None:
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=True)
            self._processes = None
