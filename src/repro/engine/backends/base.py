"""The :class:`ExecutionBackend` contract and the backend registry.

A backend owns *how* task stages execute — in-process, on a thread or
process pool, or in isolated shard subprocesses — while the scheduler
(:func:`repro.engine.scheduler.run_graph`) keeps owning *what* runs:
topological ordering, cache probing, dependency resolution, and store
accounting.  The split is the seam remote/distributed execution plugs
into: a new backend only has to honor this module's contract.

Contract
--------

Per-task backends implement ``submit(task, deps) -> Future`` (a
:class:`concurrent.futures.Future` or anything with the same
``done()``/``result()`` surface) plus the lifecycle hooks ``start`` and
``shutdown``.  The scheduler calls ``start(context)`` once before the
first submit, drains completions with ``wait``, and always calls
``shutdown`` — including on error paths.

Capability flags refine how the scheduler drives a backend:

* ``deterministic`` — execution follows the scheduler's sorted-ready
  order exactly (``workers=1`` semantics); results are byte-for-byte
  reproducible across runs.
* ``persists`` — workers write their own results into the store (the
  scheduler then only accounts for the put instead of re-writing).
* ``whole_graph`` — the backend takes entire task graphs via
  ``execute_graph`` (sharded/remote backends that partition work);
  ``submit`` is never called.

``dispatch_cost`` is the contract's scheduling hint: the relative
per-task overhead of handing work to this backend (thread handoff ≪
pickling to a process pool ≪ spawning a shard subprocess), on a scale
where process-pool dispatch is 1.0.  Cost-aware composites — the
``auto`` backend — compare it against the scheduler's per-stage cost
table (:data:`repro.engine.tasks.STAGE_COSTS`) so a stage cheaper than
a pool's dispatch overhead is never shipped to that pool.

Selection
---------

Backends register by name (:func:`register_backend`).  Resolution order
for :func:`resolve_backend`: an explicit instance or name, the
``REPRO_BACKEND`` environment variable, then the default — ``inline``
for ``workers <= 1`` (preserving deterministic serial semantics),
``process`` otherwise (the historical multiprocessing fan-out).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Iterable

from repro.engine.store import ArtifactStore, toolchain_fingerprint
from repro.engine.tasks import Task

#: Environment variable naming the default backend.
BACKEND_ENV = "REPRO_BACKEND"


@dataclass
class ExecutionContext:
    """Everything a backend needs to run stages: the shared store handle
    plus the (picklable) stage executor and content-address recipe.

    *metrics* and *tracer* are the scheduler's observability handles
    (``repro.obs``), or ``None`` when the run is uninstrumented.
    Whole-graph backends use them to fold worker-side registry
    snapshots and spans back into the parent (see
    ``backends.shard.SubprocessShardBackend.execute_graph``)."""

    store: ArtifactStore | None
    runner: Callable[[Task, dict], Any]
    keyer: Callable[[Task], dict]
    metrics: Any = None
    tracer: Any = None
    _store_spec: tuple | None = field(default=None, init=False, repr=False)

    def store_spec(self) -> tuple | None:
        """``(root, schema_version, toolchain)`` for worker-side store
        handles, or ``None`` when caching is off.

        The toolchain digest is resolved here, once per run, so workers
        don't each re-hash the whole package (and can't diverge if a
        source file changes mid-run).
        """
        if self.store is None:
            return None
        if self._store_spec is None:
            self._store_spec = (
                self.store.root,
                self.store.schema_version,
                self.store.toolchain or toolchain_fingerprint(),
            )
        return self._store_spec


class ExecutionBackend(ABC):
    """Where task stages run.  See the module docstring for the contract."""

    #: Registry name (``--backend`` / ``REPRO_BACKEND`` value).
    name: ClassVar[str]
    #: Execution follows the deterministic sorted-ready order.
    deterministic: ClassVar[bool] = False
    #: Workers persist results into the store themselves.
    persists: ClassVar[bool] = False
    #: The backend executes whole graphs (``execute_graph``), not tasks.
    whole_graph: ClassVar[bool] = False
    #: Relative per-task dispatch overhead (process-pool dispatch = 1.0).
    dispatch_cost: ClassVar[float] = 1.0

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self.context: ExecutionContext | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, context: ExecutionContext) -> None:
        """Called once per graph before the first ``submit``."""
        self.context = context

    def shutdown(self) -> None:
        """Called once per graph, on success and on error paths alike."""

    # -- execution ---------------------------------------------------------

    @abstractmethod
    def submit(self, task: Task, deps: dict[str, Any]) -> Future:
        """Begin executing *task* with its resolved *deps*; returns a
        future for the stage result."""

    def wait(self, pending: Iterable[Future]) -> set[Future]:
        """Block until at least one pending future completes."""
        done, _ = futures_wait(list(pending), return_when=FIRST_COMPLETED)
        return done

    def execute_graph(self, graph: dict[str, Task], pending: list[Task],
                      resolved: dict[str, Any],
                      context: ExecutionContext) -> dict[str, Any]:
        """Whole-graph capability hook (``whole_graph`` backends only).

        *pending* lists the tasks the scheduler could not resolve from
        the memo or store, in deterministic topological order;
        *resolved* maps every already-resolved task id to its value.
        Returns ``{task_id: result}`` for every pending task.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not execute whole graphs"
        )


# -- registry ----------------------------------------------------------------

_REGISTRY: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Class decorator adding a backend to the registry by its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> type[ExecutionBackend]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r} "
            f"(available: {', '.join(backend_names())})"
        ) from None


def default_backend_name(workers: int = 1) -> str:
    """``$REPRO_BACKEND``, else inline for serial runs, process for
    parallel ones — the pre-backend behavior, now spelled out."""
    env = os.environ.get(BACKEND_ENV)
    if env:
        return env
    return "inline" if workers <= 1 else "process"


def resolve_backend(backend: "ExecutionBackend | str | None" = None,
                    workers: int = 1) -> ExecutionBackend:
    """Resolve a backend spec (instance, name, or ``None``) to a ready
    instance; ``None`` falls back to :func:`default_backend_name`."""
    if isinstance(backend, ExecutionBackend):
        return backend
    name = backend or default_backend_name(workers)
    return get_backend(name)(workers=workers)
