"""Single-host backends: inline, thread pool, process pool.

* :class:`InlineBackend` — runs every stage synchronously in the
  scheduler's own process, in the deterministic sorted-ready order
  (``workers=1`` semantics).  The baseline every other backend's
  results are conformance-tested against.
* :class:`ThreadBackend` — a thread pool for I/O-bound or warm-replay
  graphs where pickling dependency results to worker processes would
  dominate; stages share the parent's memory, the scheduler persists
  results from the main thread.
* :class:`ProcessPoolBackend` — the historical multiprocessing fan-out,
  now an implementation detail behind the backend interface.  Workers
  receive dependency results by pickle and persist what they compute
  through their own store handle, so artifacts survive no matter which
  process produced them.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.engine.backends.base import (
    ExecutionBackend,
    ExecutionContext,
    register_backend,
)
from repro.engine.store import ArtifactStore
from repro.engine.tasks import Task


@register_backend
class InlineBackend(ExecutionBackend):
    """Synchronous in-process execution, deterministic order."""

    name = "inline"
    deterministic = True
    dispatch_cost = 0.0

    def submit(self, task: Task, deps: dict[str, Any]) -> Future:
        future: Future = Future()
        try:
            future.set_result(self.context.runner(task, deps))
        except BaseException as exc:  # propagate via Future.result()
            future.set_exception(exc)
        return future


@register_backend
class ThreadBackend(ExecutionBackend):
    """Thread-pool fan-out; stages share the parent's address space."""

    name = "thread"
    dispatch_cost = 0.05

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def submit(self, task: Task, deps: dict[str, Any]) -> Future:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool.submit(self.context.runner, task, deps)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _execute_and_persist(task: Task, deps: dict[str, Any], store_spec,
                         runner, keyer):
    """Run one task in a pool worker, persisting the result if possible."""
    started = time.perf_counter()
    value = runner(task, deps)
    elapsed = time.perf_counter() - started
    if store_spec is not None:
        root, schema_version, toolchain = store_spec
        # max_bytes deliberately stays None here: per-task stores would
        # rescan the objects directory on every put and run concurrent
        # LRU sweeps; the parent enforces the cap once per run instead.
        store = ArtifactStore(root=root, schema_version=schema_version,
                              toolchain=toolchain, max_bytes=None)
        store.put(store.key_for(task.stage, **keyer(task)), value,
                  stage=task.stage, seconds=elapsed)
    return value


@register_backend
class ProcessPoolBackend(ExecutionBackend):
    """Multiprocessing fan-out with worker-side persistence."""

    name = "process"
    persists = True
    dispatch_cost = 1.0

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool: ProcessPoolExecutor | None = None

    def start(self, context: ExecutionContext) -> None:
        super().start(context)
        self._store_spec = context.store_spec()

    def submit(self, task: Task, deps: dict[str, Any]) -> Future:
        if self._pool is None:  # lazy: cache-only graphs never pay for it
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(),
            )
        return self._pool.submit(_execute_and_persist, task, deps,
                                 self._store_spec, self.context.runner,
                                 self.context.keyer)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
