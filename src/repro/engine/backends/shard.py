"""Sharded subprocess execution: partition a graph, run isolated workers.

:class:`SubprocessShardBackend` splits the unresolved portion of a task
graph into dependency-closed shards (weakly-connected components,
balanced across ``workers``), launches each shard as an isolated
``python -m repro.engine.shard`` worker process with its **own private
store handle**, and merges everything back through the content-addressed
store: each worker exports exactly the keys it computed
(:meth:`ArtifactStore.export_keys`) and the parent absorbs them
(:meth:`ArtifactStore.import_keys`).  Results needed for the caller ride
back in each shard's output pickle.

Because a shard never shares a store or an address space with its
siblings, this is the local stand-in for remote execution: an SSH or
cluster backend replaces the ``subprocess.Popen`` call and ships the
export directory over the wire, and nothing else changes.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Any

from repro.engine.backends.base import (
    ExecutionBackend,
    ExecutionContext,
    register_backend,
)
from repro.engine.tasks import Task


class ShardError(RuntimeError):
    """A shard worker failed without a picklable original exception."""


def partition_components(graph: dict[str, Task],
                         pending: list[Task]) -> list[list[str]]:
    """Weakly-connected components of the *pending* subgraph.

    Edges are dependency links between two pending tasks; links to
    already-resolved tasks don't connect components (their values are
    shipped to whichever shard needs them).  Components come back as
    sorted id lists, ordered by their smallest id — fully deterministic.
    """
    pending_ids = {task.id for task in pending}
    parent = {task_id: task_id for task_id in pending_ids}

    def find(task_id: str) -> str:
        root = task_id
        while parent[root] != root:
            root = parent[root]
        while parent[task_id] != root:  # path compression
            parent[task_id], task_id = root, parent[task_id]
        return root

    for task in pending:
        for dep in task.deps:
            if dep in pending_ids:
                left, right = sorted((find(task.id), find(dep)))
                parent[right] = left

    components: dict[str, list[str]] = {}
    for task_id in pending_ids:
        components.setdefault(find(task_id), []).append(task_id)
    return sorted((sorted(ids) for ids in components.values()),
                  key=lambda ids: ids[0])


def balance_shards(components: list[list[str]],
                   shards: int) -> list[list[str]]:
    """Pack components into at most *shards* bins, largest-first onto
    the least-loaded bin (deterministic ties: lowest bin index)."""
    count = max(1, min(shards, len(components)))
    bins: list[list[str]] = [[] for _ in range(count)]
    loads = [0] * count
    for component in sorted(components, key=lambda ids: (-len(ids), ids[0])):
        index = loads.index(min(loads))
        bins[index].extend(component)
        loads[index] += len(component)
    return [sorted(ids) for ids in bins if ids]


@register_backend
class SubprocessShardBackend(ExecutionBackend):
    """Partitioned execution in isolated worker processes."""

    name = "shard"
    whole_graph = True
    persists = True  # shards persist; the parent imports their exports
    dispatch_cost = 25.0  # subprocess spawn + pickle round trip

    def submit(self, task: Task, deps: dict[str, Any]):
        raise RuntimeError(
            "SubprocessShardBackend executes whole graphs; "
            "drive it through run_graph()"
        )

    # -- shard construction ------------------------------------------------

    def _shard_spec(self, graph: dict[str, Task], shard_ids: list[str],
                    resolved: dict[str, Any], context: ExecutionContext,
                    shard_dir: Path) -> dict:
        """The worker's input payload: a dependency-closed subgraph plus
        the resolved values it reads at its boundary.

        Resolved boundary tasks are included with their deps stripped —
        they never execute (their value ships in ``preloaded``), so the
        worker's graph stays closed without dragging in the transitive
        history behind them.
        """
        subgraph = {task_id: graph[task_id] for task_id in shard_ids}
        preloaded: dict[str, Any] = {}
        for task_id in shard_ids:
            for dep in graph[task_id].deps:
                if dep not in subgraph:
                    preloaded[dep] = resolved[dep]
                    subgraph[dep] = replace(graph[dep], deps=())
        spec = {
            "graph": subgraph,
            "preloaded": preloaded,
            "runner": context.runner,
            "keyer": context.keyer,
            "store_spec": None,
            "export_dir": None,
            # Observability flags: a worker asked for metrics ships a
            # registry snapshot back (merged into the parent's via the
            # same commutative seam store stats already use); one asked
            # for tracing ships its spans plus its wall-clock epoch so
            # the parent can remap them onto its own timeline.
            "metrics": context.metrics is not None,
            "trace": context.tracer is not None,
        }
        if context.store is not None:
            _, schema_version, toolchain = context.store_spec()
            # Own store handle per shard: a private root the worker
            # fills, then exports from — the isolation a future remote
            # backend inherits unchanged.
            spec["store_spec"] = (str(shard_dir / "store"), schema_version,
                                  toolchain)
            spec["export_dir"] = str(shard_dir / "export")
        return spec

    @staticmethod
    def _worker_env() -> dict[str, str]:
        """Propagate the parent's import path so workers can unpickle
        runner/keyer references from any currently-importable module."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            dict.fromkeys(p for p in sys.path if p)
        )
        return env

    # -- execution ---------------------------------------------------------

    #: Seconds a terminated worker gets to drain its in-flight task and
    #: write its payload before the parent resorts to SIGKILL.
    shutdown_grace: float = 10.0

    def _reap(self, launched) -> None:
        """Terminate still-running workers gracefully: SIGTERM (the
        worker drains, persists, exits 0), a grace period, then SIGKILL.
        No-op on the normal path, where every worker already exited."""
        alive = [proc for _, _, proc in launched if proc.poll() is None]
        for proc in alive:
            proc.terminate()
        deadline = time.monotonic() + self.shutdown_grace
        for proc in alive:
            try:
                proc.communicate(
                    timeout=max(0.1, deadline - time.monotonic())
                )
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()

    def execute_graph(self, graph: dict[str, Task], pending: list[Task],
                      resolved: dict[str, Any],
                      context: ExecutionContext) -> dict[str, Any]:
        shards = balance_shards(
            partition_components(graph, pending), self.workers
        )
        computed: dict[str, Any] = {}
        with tempfile.TemporaryDirectory(prefix="repro-shard-") as tmp:
            launched = []
            try:
                for index, shard_ids in enumerate(shards):
                    shard_dir = Path(tmp) / f"shard{index:02d}"
                    shard_dir.mkdir(parents=True)
                    spec = self._shard_spec(graph, shard_ids, resolved,
                                            context, shard_dir)
                    input_path = shard_dir / "in.pkl"
                    output_path = shard_dir / "out.pkl"
                    with open(input_path, "wb") as fh:
                        pickle.dump(spec, fh,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                    proc = subprocess.Popen(
                        [sys.executable, "-m", "repro.engine.shard",
                         "--input", str(input_path),
                         "--output", str(output_path)],
                        env=self._worker_env(),
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                    launched.append((shard_dir, output_path, proc))

                failures: list[BaseException] = []
                drained = False
                for shard_dir, output_path, proc in launched:
                    _, stderr = proc.communicate()
                    payload = None
                    if output_path.exists():
                        with open(output_path, "rb") as fh:
                            payload = pickle.load(fh)
                    if payload is None:
                        failures.append(ShardError(
                            f"shard worker exited with status "
                            f"{proc.returncode} and no output\n"
                            f"{stderr.strip()}"
                        ))
                        continue
                    if "error" in payload:
                        failures.append(payload["error"])
                        continue
                    computed.update(payload["results"])
                    drained = drained or payload.get("drained", False)
                    if context.metrics is not None and payload.get("metrics"):
                        context.metrics.merge(payload["metrics"])
                    if context.tracer is not None and payload.get("spans"):
                        context.tracer.absorb(payload["spans"],
                                              payload.get("trace_epoch_wall"))
                    if context.store is not None and payload["export_dir"]:
                        context.store.import_keys(payload["export_dir"])
                if failures:
                    raise failures[0]
                if drained:
                    # A worker was told to drain (SIGTERM mid-run): the
                    # finished prefix is already persisted and imported,
                    # so the interrupted remainder is a cache-resume
                    # away — report it rather than fabricate results.
                    raise ShardError(
                        "shard worker(s) drained before completing "
                        f"({len(computed)}/{len(pending)} tasks finished "
                        "and persisted; re-run resumes from the store)"
                    )
            finally:
                # Error paths (a failed sibling, KeyboardInterrupt in
                # the parent) must not orphan worker subprocesses.
                self._reap(launched)
        return computed
