"""repro.engine.backends — pluggable execution backends.

The scheduler delegates *where* stages run to an
:class:`ExecutionBackend`; five ship in-tree:

========= ============================================================
name      execution model
========= ============================================================
inline    synchronous, deterministic sorted-ready order (workers=1)
thread    thread pool — warm-replay / I/O-bound graphs, no pickling
process   multiprocessing pool, worker-side persistence (historical
          ``workers>1`` behavior)
shard     dependency-closed shards in isolated
          ``python -m repro.engine.shard`` subprocesses, each with a
          private store, merged via export_keys/import_keys
auto      cost-aware composite: per-stage compute estimates
          (``tasks.STAGE_COSTS``) vs pool ``dispatch_cost`` route
          cheap replays to threads, heavy compiles to processes
========= ============================================================

Select with ``--backend NAME`` on the CLIs, the ``REPRO_BACKEND``
environment variable, or ``Engine(backend=...)``; third-party backends
subclass :class:`ExecutionBackend` and call :func:`register_backend`.
"""

from repro.engine.backends.base import (
    BACKEND_ENV,
    ExecutionBackend,
    ExecutionContext,
    backend_names,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.engine.backends.local import (
    InlineBackend,
    ProcessPoolBackend,
    ThreadBackend,
)
from repro.engine.backends.auto import AutoBackend
from repro.engine.backends.shard import (
    ShardError,
    SubprocessShardBackend,
    balance_shards,
    partition_components,
)

__all__ = [
    "AutoBackend",
    "BACKEND_ENV",
    "ExecutionBackend",
    "ExecutionContext",
    "InlineBackend",
    "ProcessPoolBackend",
    "ShardError",
    "SubprocessShardBackend",
    "ThreadBackend",
    "backend_names",
    "balance_shards",
    "default_backend_name",
    "get_backend",
    "partition_components",
    "register_backend",
    "resolve_backend",
]
