"""Cache-aware benchmark baseline comparison.

The figure-regeneration benchmarks record the engine's cache
hit/miss/put deltas in ``benchmark.extra_info["cache"]`` (see
``benchmarks/conftest.py``), so a saved ``--benchmark-json`` baseline
carries each measurement's *cache mode* alongside its timing:

* ``cold`` — the timed run performed store misses (real compiles/runs);
* ``warm`` — it replayed entirely from the store (hits, zero misses);
* ``uncached`` — the store was disabled or untouched.

Comparing wall-clock numbers without that context misattributes every
cache transition: a warm rerun looks like a 100x "speedup", a cleared
cache like a catastrophic "regression".  :func:`compare_baselines`
classifies each benchmark pair by cache mode first and only calls
something a compute regression/improvement when both sides ran in the
same mode; :func:`split_cold_warm` splits one mixed baseline file into
the cold/warm pair that later runs should be compared against.

CLI: ``python -m repro.engine.bench compare OLD.json NEW.json``,
``python -m repro.engine.bench split BENCH.json [--out-dir DIR]``,
``python -m repro.engine.bench replay BENCH.json`` (the replay-kernel
throughput table recorded by ``benchmarks/bench_replay_kernels.py``)
and ``python -m repro.engine.bench functional BENCH.json`` (the
python-vs-fast execution-engine table from
``benchmarks/bench_functional.py``).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path

#: Relative timing change below which same-mode runs count as stable.
DEFAULT_TOLERANCE = 0.15


def cache_mode(cache: dict | None) -> str:
    """Classify one run's recorded cache-counter deltas."""
    if not cache:
        return "uncached"
    if cache.get("misses", 0) > 0:
        return "cold"
    if cache.get("hits", 0) > 0:
        return "warm"
    return "uncached"


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark measurement: mean seconds + cache-counter deltas.

    ``replay`` carries the replay-kernel metadata the
    ``bench_replay_kernels`` benchmarks record (kernel, machine,
    instruction count, instrs/sec); ``functional`` carries the
    execution-engine metadata from ``bench_functional`` (engine, pair,
    instrs/sec).  Both are empty for every other benchmark.
    """

    name: str
    mean: float
    cache: dict
    replay: dict = dataclass_field(default_factory=dict)
    functional: dict = dataclass_field(default_factory=dict)

    @property
    def mode(self) -> str:
        return cache_mode(self.cache)


@dataclass(frozen=True)
class Verdict:
    """Outcome of comparing one benchmark against its baseline."""

    name: str
    verdict: str  # compute-regression | compute-improvement | stable |
    #               cache-speedup | cache-cold | new | missing
    ratio: float  # new mean / old mean (NaN when either side is absent)
    old_mode: str
    new_mode: str
    detail: str = ""


def load_benchmark_json(path: Path | str) -> dict[str, BenchRecord]:
    """Parse a pytest-benchmark ``--benchmark-json`` file."""
    data = json.loads(Path(path).read_text())
    return records_from_data(data)


def records_from_data(data: dict) -> dict[str, BenchRecord]:
    records: dict[str, BenchRecord] = {}
    for bench in data.get("benchmarks", ()):
        extra = bench.get("extra_info") or {}
        records[bench["name"]] = BenchRecord(
            name=bench["name"],
            mean=bench["stats"]["mean"],
            cache=extra.get("cache") or {},
            replay=extra.get("replay") or {},
            functional=extra.get("functional") or {},
        )
    return records


def compare_records(old: BenchRecord, new: BenchRecord,
                    tolerance: float = DEFAULT_TOLERANCE) -> Verdict:
    """Classify one old/new pair, cache mode first, timing second.

    Cold and uncached runs both measure real compute (the latter with
    the store disabled), so they compare against each other directly —
    only a warm side changes the interpretation.
    """
    ratio = new.mean / old.mean if old.mean else float("inf")
    if (old.mode == "warm") == (new.mode == "warm"):
        if ratio > 1 + tolerance:
            verdict, detail = "compute-regression", (
                f"{ratio:.2f}x slower at comparable cache mode "
                f"({old.mode}->{new.mode})"
            )
        elif ratio < 1 - tolerance:
            verdict, detail = "compute-improvement", (
                f"{1 / ratio:.2f}x faster at comparable cache mode "
                f"({old.mode}->{new.mode})"
            )
        else:
            verdict, detail = "stable", f"within {tolerance:.0%}"
        return Verdict(old.name, verdict, ratio, old.mode, new.mode, detail)
    if new.mode == "warm":
        if ratio > 1 + tolerance:
            # Replaying from the store yet slower than computing from
            # scratch: the non-cached part of the pipeline regressed.
            return Verdict(old.name, "compute-regression", ratio,
                           old.mode, new.mode,
                           f"{ratio:.2f}x slower despite warm cache")
        return Verdict(old.name, "cache-speedup", ratio, old.mode, new.mode,
                       "expected hit-driven speedup, not a compute win")
    return Verdict(old.name, "cache-cold", ratio, old.mode, new.mode,
                   "baseline was warm; slowdown reflects cache state, "
                   "not compute")


def compare_baselines(old: dict[str, BenchRecord],
                      new: dict[str, BenchRecord],
                      tolerance: float = DEFAULT_TOLERANCE) -> list[Verdict]:
    """Verdicts for every benchmark present on either side."""
    verdicts: list[Verdict] = []
    for name in sorted(set(old) | set(new)):
        if name not in new:
            verdicts.append(Verdict(name, "missing", float("nan"),
                                    old[name].mode, "-",
                                    "present in baseline only"))
        elif name not in old:
            verdicts.append(Verdict(name, "new", float("nan"), "-",
                                    new[name].mode, "no baseline entry"))
        else:
            verdicts.append(compare_records(old[name], new[name], tolerance))
    return verdicts


def regressions(verdicts: list[Verdict]) -> list[Verdict]:
    return [v for v in verdicts if v.verdict == "compute-regression"]


def split_cold_warm(data: dict) -> tuple[dict, dict]:
    """Split one ``--benchmark-json`` payload into a cold/warm pair.

    Each output keeps the file's metadata but only the benchmarks whose
    recorded cache deltas match the mode (uncached runs count as cold:
    they measured pure compute).
    """
    cold = {k: v for k, v in data.items() if k != "benchmarks"}
    warm = {k: v for k, v in data.items() if k != "benchmarks"}
    cold["benchmarks"] = []
    warm["benchmarks"] = []
    for bench in data.get("benchmarks", ()):
        mode = cache_mode((bench.get("extra_info") or {}).get("cache"))
        (warm if mode == "warm" else cold)["benchmarks"].append(bench)
    return cold, warm


def write_cold_warm_pair(json_path: Path | str,
                         out_dir: Path | str | None = None
                         ) -> tuple[Path, Path]:
    """Write ``<stem>_cold.json`` / ``<stem>_warm.json`` next to (or in
    *out_dir* from) a mixed baseline file; returns the two paths."""
    json_path = Path(json_path)
    out = Path(out_dir) if out_dir else json_path.parent
    out.mkdir(parents=True, exist_ok=True)
    cold, warm = split_cold_warm(json.loads(json_path.read_text()))
    cold_path = out / f"{json_path.stem}_cold.json"
    warm_path = out / f"{json_path.stem}_warm.json"
    cold_path.write_text(json.dumps(cold, indent=2, sort_keys=True))
    warm_path.write_text(json.dumps(warm, indent=2, sort_keys=True))
    return cold_path, warm_path


def replay_records(records: dict[str, BenchRecord]) -> list[BenchRecord]:
    """The replay-kernel measurements in *records* (throughput rows
    first, grouped by machine, python before numpy)."""
    kernel_order = {"python": 0, "numpy-cold": 1, "numpy-warm": 2}
    rows = [r for r in records.values()
            if r.replay and "instrs_per_sec" in r.replay]
    rows.sort(key=lambda r: (r.replay.get("machine", ""),
                             kernel_order.get(r.replay.get("kernel"), 9)))
    return rows


def format_replay_table(records: dict[str, BenchRecord]) -> str:
    """Python-vs-numpy replay throughput per machine config.

    The speedup column compares each numpy row against the same
    machine's python row from the same file.
    """
    rows = replay_records(records)
    if not rows:
        return "(no replay-kernel records)"
    python_secs = {r.replay["machine"]: r.mean for r in rows
                   if r.replay.get("kernel") == "python"}
    lines = [f"{'machine':<20} {'kernel':<12} {'instrs/sec':>14} "
             f"{'seconds':>9} {'speedup':>8}"]
    for record in rows:
        info = record.replay
        base = python_secs.get(info["machine"])
        speedup = (f"{base / record.mean:.1f}x"
                   if base and info["kernel"] != "python" else "-")
        lines.append(
            f"{info['machine']:<20} {info['kernel']:<12} "
            f"{info['instrs_per_sec']:>14,.0f} {record.mean:>9.3f} "
            f"{speedup:>8}"
        )
    return "\n".join(lines)


def functional_records(records: dict[str, BenchRecord]) -> list[BenchRecord]:
    """The execution-engine measurements in *records* (throughput rows
    only, python before fast-cold before fast-warm)."""
    engine_order = {"python": 0, "fast-cold": 1, "fast-warm": 2}
    rows = [r for r in records.values()
            if r.functional and "instrs_per_sec" in r.functional]
    rows.sort(key=lambda r: (r.functional.get("pair", ""),
                             engine_order.get(r.functional.get("engine"), 9)))
    return rows


def format_functional_table(records: dict[str, BenchRecord]) -> str:
    """Python-vs-fast functional execution throughput per workload pair.

    The speedup column compares each fast row against the same pair's
    python row from the same file.
    """
    rows = functional_records(records)
    if not rows:
        return "(no functional-engine records)"
    python_secs = {r.functional["pair"]: r.mean for r in rows
                   if r.functional.get("engine") == "python"}
    lines = [f"{'pair':<24} {'engine':<12} {'instrs/sec':>14} "
             f"{'seconds':>9} {'speedup':>8}"]
    for record in rows:
        info = record.functional
        base = python_secs.get(info["pair"])
        speedup = (f"{base / record.mean:.1f}x"
                   if base and info["engine"] != "python" else "-")
        lines.append(
            f"{info['pair']:<24} {info['engine']:<12} "
            f"{info['instrs_per_sec']:>14,.0f} {record.mean:>9.3f} "
            f"{speedup:>8}"
        )
    return "\n".join(lines)


def format_verdicts(verdicts: list[Verdict]) -> str:
    lines = []
    for v in verdicts:
        ratio = "-" if v.ratio != v.ratio else f"{v.ratio:.2f}x"
        lines.append(
            f"{v.verdict:<20} {v.name}  [{v.old_mode}->{v.new_mode}, "
            f"{ratio}] {v.detail}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.bench",
        description="Cache-aware comparison of pytest-benchmark baselines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    compare = sub.add_parser(
        "compare", help="classify NEW against OLD, cache mode first"
    )
    compare.add_argument("old")
    compare.add_argument("new")
    compare.add_argument("--tolerance", type=float,
                         default=DEFAULT_TOLERANCE)
    split = sub.add_parser(
        "split", help="emit the cold/warm baseline pair of a mixed file"
    )
    split.add_argument("json_path")
    split.add_argument("--out-dir", default=None)
    replay = sub.add_parser(
        "replay",
        help="print the replay-kernel throughput table of a baseline",
    )
    replay.add_argument("json_path")
    functional = sub.add_parser(
        "functional",
        help="print the execution-engine throughput table of a baseline",
    )
    functional.add_argument("json_path")
    args = parser.parse_args(argv)

    if args.command == "replay":
        print(format_replay_table(load_benchmark_json(args.json_path)))
        return 0
    if args.command == "functional":
        print(format_functional_table(load_benchmark_json(args.json_path)))
        return 0
    if args.command == "compare":
        verdicts = compare_baselines(
            load_benchmark_json(args.old), load_benchmark_json(args.new),
            tolerance=args.tolerance,
        )
        print(format_verdicts(verdicts))
        bad = regressions(verdicts)
        if bad:
            print(f"\n{len(bad)} compute regression(s)")
            return 1
        return 0
    cold_path, warm_path = write_cold_warm_pair(args.json_path,
                                                args.out_dir)
    print(f"wrote {cold_path} and {warm_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
