"""``python -m repro.engine`` — the ``repro-cache`` CLI without install."""

from repro.engine.store import main

raise SystemExit(main())
