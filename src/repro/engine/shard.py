"""``python -m repro.engine.shard`` — execute one shard of a task graph.

The worker half of
:class:`repro.engine.backends.shard.SubprocessShardBackend`.  Input is a
pickled spec (``--input``): a dependency-closed subgraph, preloaded
boundary values, the runner/keyer pair, and optionally a private store
spec plus an export directory.  The worker runs the subgraph inline
(deterministic order) against its own store handle, exports exactly the
keys it computed via :meth:`ArtifactStore.export_keys`, and writes a
pickled result payload (``--output``) for the parent to merge.

Failures are reported in-band: the original exception is pickled into
the output payload when possible (so the parent re-raises the real
thing), with a traceback on stderr either way.

Graceful shutdown: SIGTERM/SIGINT flip a drain flag the scheduler polls
between dispatches — the in-flight task finishes, everything already
computed is persisted and exported, the payload is written with
``"drained": True``, and the worker exits 0.  No partial artifacts, no
orphaned work: what the worker finished, the parent (or the next cold
run, via the store) keeps.
"""

from __future__ import annotations

import argparse
import pickle
import signal
import sys
import threading
import traceback

from repro.engine.store import ArtifactStore


def run_shard(spec: dict, stop=None) -> dict:
    """Execute one shard spec; returns the worker's output payload.

    *stop* — optional ``callable() -> bool`` polled between task
    dispatches (see :func:`repro.engine.scheduler.run_graph`); once true
    the shard stops submitting, persists and exports what it computed,
    and reports ``"drained": True``.
    """
    from repro.engine.scheduler import run_graph

    graph = spec["graph"]
    preloaded = spec.get("preloaded") or {}
    store = None
    store_spec = spec.get("store_spec")
    if store_spec is not None:
        root, schema_version, toolchain = store_spec
        store = ArtifactStore(root=root, schema_version=schema_version,
                              toolchain=toolchain, max_bytes=None)

    # Per-worker observability.  The registry records only what the
    # parent cannot see from outside — which stages actually executed
    # here, and how long each took — via the on_timing hook; the
    # worker's private-store probe/put counters stay out of the
    # snapshot because the parent's own accounting (probe misses before
    # sharding, puts on import) is authoritative and already
    # backend-invariant.  The tracer records full per-node spans, which
    # the parent remaps onto its timeline.
    registry = None
    if spec.get("metrics"):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
    tracer = None
    if spec.get("trace"):
        from repro.obs.trace import Tracer
        tracer = Tracer()

    def observe_stage(stage: str, seconds: float) -> None:
        registry.count("engine_stages_executed", tag=stage, label="stage")
        registry.observe_latency("engine_dispatch_seconds", seconds,
                                 tags={"stage": stage})

    # Per-workload execution counts ride the same seam: the runner is
    # invoked exactly once per executed (cache-missed) node, matching
    # the parent scheduler's engine_workload_stages accounting on the
    # non-sharded backends, so merged snapshots stay backend-invariant.
    stage_runner = spec["runner"]
    if registry is not None:
        base_runner = stage_runner

        def stage_runner(task, deps):
            workload = task.payload.get("workload")
            if workload:
                registry.count("engine_workload_stages", tag=workload,
                               label="workload")
            return base_runner(task, deps)

    results = run_graph(
        graph,
        workers=1,
        store=store,
        preloaded=preloaded,
        runner=stage_runner,
        keyer=spec["keyer"],
        backend="inline",
        on_timing=observe_stage if registry is not None else None,
        tracer=tracer,
        stop=stop,
    )
    computed = {task_id: value for task_id, value in results.items()
                if task_id not in preloaded}
    export_dir = spec.get("export_dir")
    exported = 0
    if store is not None and export_dir:
        keyer = spec["keyer"]
        keys = [
            store.key_for(graph[task_id].stage, **keyer(graph[task_id]))
            for task_id in sorted(computed)
        ]
        exported = store.export_keys(keys, export_dir)
    drained = bool(stop is not None and stop() and
                   len(computed) + len(preloaded) < len(graph))
    payload = {"results": computed, "exported": exported,
               "export_dir": export_dir, "drained": drained}
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if tracer is not None:
        payload["spans"] = tracer.spans()
        payload["trace_epoch_wall"] = tracer.epoch_wall
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.shard",
        description="Run one shard of a repro task graph (worker process "
                    "of the 'shard' execution backend).",
    )
    parser.add_argument("--input", required=True,
                        help="pickled shard spec to execute")
    parser.add_argument("--output", required=True,
                        help="where to write the pickled result payload")
    args = parser.parse_args(argv)

    with open(args.input, "rb") as fh:
        spec = pickle.load(fh)

    # SIGTERM/SIGINT request a drain, not an abort: finish the task in
    # flight, persist + export everything computed, exit 0.  The parent
    # backend relies on this when it terminates workers on its own
    # error paths — no orphaned subprocesses, no torn artifacts.
    drain = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: drain.set())
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    try:
        payload = run_shard(spec, stop=drain.is_set)
        status = 0
    except BaseException as exc:
        traceback.print_exc(file=sys.stderr)
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(
                f"shard failed with unpicklable "
                f"{type(exc).__name__}: {exc}"
            )
        payload = {"error": exc, "traceback": traceback.format_exc()}
        status = 1
    with open(args.output, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
