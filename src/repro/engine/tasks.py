"""The experiment pipeline expressed as a DAG of pure task nodes.

Each node is one paper-pipeline stage applied to one (workload, input,
ISA, opt-level) coordinate:

    compile ──▶ run ──▶ replay@machine       (original side, per ISA/opt)
    compile@ref ──▶ run@ref ──▶ profile ──▶ synthesize
                                               │
                          compile-clone ◀──────┘
                                 │
                            run-clone ──▶ replay@machine   (synthetic side)

Stage functions take ``(payload, deps)`` where ``deps`` maps dependency
task ids to their results, and return a picklable artifact.  They are
module-level so process-based execution backends can ship them to
worker processes, and pure in the caching sense: output depends only on the
payload (synthesis is seeded), which is what lets
:func:`key_fields` assign every node a content-address computable
*before* execution — upstream clone sources never need to be in hand to
decide whether a downstream node is already cached.

The seventh stage, **replay**, times an execution trace on a parametric
:class:`~repro.sim.machines.MachineSpec`.  Its payload carries the spec
itself (for execution) while its content-address uses
:meth:`MachineSpec.fingerprint` — so a replay's key is computable
without the trace in hand, exactly like every other stage, and a
design-space sweep's hot path caches and fans out like any other node.

:data:`STAGE_COSTS` is the scheduler's per-stage cost table: a relative
estimate of each stage's compute weight, which cost-aware backends (the
``auto`` composite) compare against a pool's ``dispatch_cost`` to route
cheap warm replays to threads and heavy compiles to processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable

from repro.engine.store import source_fingerprint

#: The reference coordinate every profile/synthesis derives from
#: (the paper compiles originals at -O0 on x86 before profiling).
REF_ISA = "x86"
REF_OPT = 0

#: Synthetic size target (see DESIGN.md §5: the paper's 10M scaled ~1e3).
DEFAULT_TARGET_INSTRUCTIONS = 20_000

STAGE_COMPILE = "compile"
STAGE_RUN = "run"
STAGE_PROFILE = "profile"
STAGE_SYNTHESIZE = "synthesize"
STAGE_COMPILE_CLONE = "compile-clone"
STAGE_RUN_CLONE = "run-clone"
STAGE_REPLAY = "replay"

STAGES = (
    STAGE_COMPILE,
    STAGE_RUN,
    STAGE_PROFILE,
    STAGE_SYNTHESIZE,
    STAGE_COMPILE_CLONE,
    STAGE_RUN_CLONE,
    STAGE_REPLAY,
)

#: Relative compute weight per stage — the scheduler's cost table.
#: Units are arbitrary; what matters is the ordering and the comparison
#: against a backend pool's ``dispatch_cost`` (process-pool dispatch is
#: the 1.0 reference point).  A stage cheaper than a pool's dispatch
#: overhead should not be shipped to that pool: that is the whole
#: routing rule of the ``auto`` backend.
STAGE_COSTS: dict[str, float] = {
    STAGE_COMPILE: 20.0,
    STAGE_RUN: 15.0,
    STAGE_PROFILE: 5.0,
    STAGE_SYNTHESIZE: 25.0,
    STAGE_COMPILE_CLONE: 8.0,
    STAGE_RUN_CLONE: 4.0,
    STAGE_REPLAY: 0.5,
}

#: Cost assumed for stages the table doesn't know (third-party graphs):
#: heavy, so unknown work lands on the isolating pool, never a thread.
DEFAULT_STAGE_COST = 10.0


def stage_cost(stage: str) -> float:
    """Estimated relative compute weight of *stage* (see STAGE_COSTS)."""
    return STAGE_COSTS.get(stage, DEFAULT_STAGE_COST)


@dataclass(frozen=True)
class Task:
    """One pure pipeline step: ``stage`` applied to ``payload``."""

    id: str
    stage: str
    payload: dict = field(default_factory=dict, hash=False)
    deps: tuple[str, ...] = ()


def _workload_source(payload: dict) -> str:
    from repro.workloads import get_workload

    return get_workload(payload["workload"]).source_for(payload["input"])


@lru_cache(maxsize=None)
def pair_fingerprint(workload: str, input_name: str) -> str:
    """Source fingerprint per (workload, input), generated once per
    process — key computation happens far more often than synthesis."""
    return source_fingerprint(
        _workload_source({"workload": workload, "input": input_name})
    )


def _single_dep(task: Task, deps: dict[str, Any], stage: str):
    for dep_id in task.deps:
        if dep_id.startswith(stage + ":"):
            return deps[dep_id]
    raise KeyError(f"{task.id} has no resolved '{stage}' dependency")


def run_stage(task: Task, deps: dict[str, Any]):
    """Execute one task given its resolved dependencies."""
    from repro.cc.driver import compile_program
    from repro.profiling.profile import profile_trace
    from repro.sim.functional import run_binary
    from repro.synthesis.synthesizer import synthesize

    payload = task.payload
    if task.stage == STAGE_COMPILE:
        return compile_program(_workload_source(payload), payload["isa"],
                               payload["opt_level"])
    if task.stage == STAGE_RUN:
        compiled = _single_dep(task, deps, STAGE_COMPILE)
        # run_binary honors REPRO_SIM_EXEC (python|fast|auto).  The
        # engine selection deliberately stays OUT of key_fields: both
        # engines produce byte-identical traces, so artifacts are
        # interchangeable and learned stage costs absorb the speedup.
        return run_binary(compiled.binary)
    if task.stage == STAGE_PROFILE:
        trace = _single_dep(task, deps, STAGE_RUN)
        name = f"{payload['workload']}/{payload['input']}"
        return profile_trace(trace.binary, trace, source_name=name)
    if task.stage == STAGE_SYNTHESIZE:
        profile = _single_dep(task, deps, STAGE_PROFILE)
        return synthesize(profile,
                          target_instructions=payload["target_instructions"])
    if task.stage == STAGE_COMPILE_CLONE:
        clone = _single_dep(task, deps, STAGE_SYNTHESIZE)
        return compile_program(clone.source, payload["isa"],
                               payload["opt_level"])
    if task.stage == STAGE_RUN_CLONE:
        compiled = _single_dep(task, deps, STAGE_COMPILE_CLONE)
        return run_binary(compiled.binary)
    if task.stage == STAGE_REPLAY:
        trace_stage = STAGE_RUN_CLONE if payload["side"] == "syn" \
            else STAGE_RUN
        trace = _single_dep(task, deps, trace_stage)
        return payload["machine_spec"].build().simulate(trace)
    raise ValueError(f"unknown stage: {task.stage!r}")


def key_fields(task: Task) -> dict:
    """Content-address fields for *task* (joined with the schema version
    and stage name by :meth:`ArtifactStore.key_for`).

    Original-side stages key on the workload source text; synthetic-side
    stages key on the derivation inputs (source + target size), which
    pin the clone because synthesis is deterministic under its fixed
    seed.  Changing the source, ISA, opt level, target size, or schema
    version therefore changes the key.
    """
    payload = task.payload
    fields: dict = {
        "source_sha": pair_fingerprint(payload["workload"], payload["input"])
    }
    if task.stage in (STAGE_COMPILE, STAGE_RUN):
        fields.update(isa=payload["isa"], opt_level=payload["opt_level"])
    elif task.stage == STAGE_PROFILE:
        fields.update(ref_isa=REF_ISA, ref_opt=REF_OPT)
    elif task.stage == STAGE_SYNTHESIZE:
        fields.update(ref_isa=REF_ISA, ref_opt=REF_OPT,
                      target_instructions=payload["target_instructions"])
    elif task.stage in (STAGE_COMPILE_CLONE, STAGE_RUN_CLONE):
        fields.update(isa=payload["isa"], opt_level=payload["opt_level"],
                      target_instructions=payload["target_instructions"])
    elif task.stage == STAGE_REPLAY:
        # The machine enters the key as its canonical fingerprint, so
        # the address is computable before the spec's trace exists and
        # machines that share cycle-model axes share one artifact.
        fields.update(isa=payload["isa"], opt_level=payload["opt_level"],
                      side=payload["side"],
                      machine=payload["machine_spec"].fingerprint())
        if payload["side"] == "syn":
            fields["target_instructions"] = payload["target_instructions"]
    else:
        raise ValueError(f"unknown stage: {task.stage!r}")
    return fields


# -- graph construction ------------------------------------------------------


def _coord(workload: str, input_name: str, isa: str, opt_level: int) -> str:
    return f"{workload}/{input_name}@{isa}-O{opt_level}"


def compile_task(workload: str, input_name: str, isa: str,
                 opt_level: int) -> Task:
    payload = {"workload": workload, "input": input_name, "isa": isa,
               "opt_level": opt_level}
    return Task(id=f"compile:{_coord(workload, input_name, isa, opt_level)}",
                stage=STAGE_COMPILE, payload=payload)


def run_task(workload: str, input_name: str, isa: str, opt_level: int) -> Task:
    coord = _coord(workload, input_name, isa, opt_level)
    payload = {"workload": workload, "input": input_name, "isa": isa,
               "opt_level": opt_level}
    return Task(id=f"run:{coord}", stage=STAGE_RUN, payload=payload,
                deps=(f"compile:{coord}",))


def profile_task(workload: str, input_name: str) -> Task:
    ref = _coord(workload, input_name, REF_ISA, REF_OPT)
    payload = {"workload": workload, "input": input_name}
    return Task(id=f"profile:{workload}/{input_name}", stage=STAGE_PROFILE,
                payload=payload, deps=(f"run:{ref}",))


def synthesize_task(workload: str, input_name: str,
                    target_instructions: int) -> Task:
    payload = {"workload": workload, "input": input_name,
               "target_instructions": target_instructions}
    return Task(
        id=f"synthesize:{workload}/{input_name}#{target_instructions}",
        stage=STAGE_SYNTHESIZE, payload=payload,
        deps=(f"profile:{workload}/{input_name}",),
    )


def compile_clone_task(workload: str, input_name: str, isa: str,
                       opt_level: int, target_instructions: int) -> Task:
    coord = _coord(workload, input_name, isa, opt_level)
    payload = {"workload": workload, "input": input_name, "isa": isa,
               "opt_level": opt_level,
               "target_instructions": target_instructions}
    return Task(
        id=f"compile-clone:{coord}#{target_instructions}",
        stage=STAGE_COMPILE_CLONE, payload=payload,
        deps=(f"synthesize:{workload}/{input_name}#{target_instructions}",),
    )


def run_clone_task(workload: str, input_name: str, isa: str, opt_level: int,
                   target_instructions: int) -> Task:
    coord = _coord(workload, input_name, isa, opt_level)
    payload = {"workload": workload, "input": input_name, "isa": isa,
               "opt_level": opt_level,
               "target_instructions": target_instructions}
    return Task(
        id=f"run-clone:{coord}#{target_instructions}",
        stage=STAGE_RUN_CLONE, payload=payload,
        deps=(f"compile-clone:{coord}#{target_instructions}",),
    )


def replay_task(workload: str, input_name: str, opt_level: int,
                machine_spec, side: str = "org",
                target_instructions: int | None = None) -> Task:
    """Time one side's trace on *machine_spec* (a
    :class:`~repro.sim.machines.MachineSpec`).

    The task id embeds the fingerprint prefix so distinct machines never
    collide; the full fingerprint goes into the content-address (see
    :func:`key_fields`).
    """
    if side not in ("org", "syn"):
        raise ValueError(f"replay side must be 'org' or 'syn', got {side!r}")
    isa = machine_spec.isa
    coord = _coord(workload, input_name, isa, opt_level)
    fp = machine_spec.fingerprint()[:12]
    payload = {"workload": workload, "input": input_name, "isa": isa,
               "opt_level": opt_level, "side": side,
               "machine_spec": machine_spec}
    if side == "syn":
        if target_instructions is None:
            raise ValueError("synthetic replays need target_instructions")
        payload["target_instructions"] = target_instructions
        return Task(
            id=f"replay:syn:{coord}#{target_instructions}@{fp}",
            stage=STAGE_REPLAY, payload=payload,
            deps=(f"run-clone:{coord}#{target_instructions}",),
        )
    return Task(id=f"replay:org:{coord}@{fp}", stage=STAGE_REPLAY,
                payload=payload, deps=(f"run:{coord}",))


def build_pipeline_graph(
    pairs,
    coords=((REF_ISA, REF_OPT),),
    target_instructions: int = DEFAULT_TARGET_INSTRUCTIONS,
    sides: tuple[str, ...] = ("org", "syn"),
    machine_points=(),
) -> dict[str, Task]:
    """Full experiment DAG for *pairs* across (ISA, opt-level) *coords*.

    *machine_points* extends the grid with timing replays: each entry is
    a ``(MachineSpec, opt_level)`` pair, and contributes — per workload
    pair and requested side — the compile/run chain at the machine's ISA
    plus a replay node timing that trace on the machine.  A design-space
    sweep is therefore one graph: shared compiles deduplicate across
    machine points exactly like the reference chain deduplicates across
    coordinates.

    Returns ``{task_id: Task}`` with shared prefixes deduplicated — the
    reference compile/run/profile/synthesize chain appears once per pair
    no matter how many coordinates request it.
    """
    graph: dict[str, Task] = {}

    def add(task: Task) -> None:
        graph.setdefault(task.id, task)

    machine_points = tuple(machine_points)
    for workload, input_name in pairs:
        if "syn" in sides:
            add(compile_task(workload, input_name, REF_ISA, REF_OPT))
            add(run_task(workload, input_name, REF_ISA, REF_OPT))
            add(profile_task(workload, input_name))
            add(synthesize_task(workload, input_name, target_instructions))
        for isa, opt_level in coords:
            if "org" in sides:
                add(compile_task(workload, input_name, isa, opt_level))
                add(run_task(workload, input_name, isa, opt_level))
            if "syn" in sides:
                add(compile_clone_task(workload, input_name, isa, opt_level,
                                       target_instructions))
                add(run_clone_task(workload, input_name, isa, opt_level,
                                   target_instructions))
        for spec, opt_level in machine_points:
            isa = spec.isa
            if "org" in sides:
                add(compile_task(workload, input_name, isa, opt_level))
                add(run_task(workload, input_name, isa, opt_level))
                add(replay_task(workload, input_name, opt_level, spec,
                                side="org"))
            if "syn" in sides:
                add(compile_clone_task(workload, input_name, isa, opt_level,
                                       target_instructions))
                add(run_clone_task(workload, input_name, isa, opt_level,
                                   target_instructions))
                add(replay_task(workload, input_name, opt_level, spec,
                                side="syn",
                                target_instructions=target_instructions))
    return graph


StageRunner = Callable[[Task, dict], Any]
