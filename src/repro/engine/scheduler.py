"""Topological DAG scheduler over pluggable execution backends.

:func:`run_graph` executes a ``{task_id: Task}`` graph in dependency
order.  The scheduler owns ordering, cache probing, dependency
resolution, and store accounting; *where* stages run belongs to an
:class:`~repro.engine.backends.ExecutionBackend` (``inline``,
``thread``, ``process``, ``shard``, or anything registered by a third
party).  ``workers=1`` with no explicit backend resolves to the inline
backend and stays byte-for-byte deterministic (Kahn + sorted-ready
order); ``workers>1`` defaults to the process pool, the historical
fan-out, unless ``REPRO_BACKEND`` or the ``backend`` argument says
otherwise.  The scheduler's per-stage cost table lives in
:data:`repro.engine.tasks.STAGE_COSTS`; cost-aware backends (``auto``)
compare it against each pool's ``dispatch_cost`` to route cheap warm
replays to threads and heavy compiles to processes.

Cache discipline: the parent consults the store once per node before
dispatch (a hit skips execution entirely and counts toward
``store.stats.hits``; a miss counts toward ``misses``).  Backends that
persist results themselves (``persists=True`` — the process pool and
shard backends) write through their own store handles and the parent
only accounts for the put, so a warm run reports zero misses and
performs zero compiles/runs no matter the backend.
"""

from __future__ import annotations

import time
from typing import Any

from repro.engine.backends import resolve_backend
from repro.engine.backends.base import ExecutionContext
from repro.engine.store import ArtifactStore
from repro.engine.tasks import Task, key_fields, run_stage

_MISS = object()


class GraphError(ValueError):
    """Raised for cyclic graphs or dangling dependency references."""


def topological_order(graph: dict[str, Task]) -> list[Task]:
    """Deterministic topological order (Kahn's algorithm, sorted ties)."""
    indegree: dict[str, int] = {}
    dependents: dict[str, list[str]] = {task_id: [] for task_id in graph}
    for task in graph.values():
        count = 0
        for dep in task.deps:
            if dep not in graph:
                raise GraphError(f"{task.id} depends on unknown task {dep!r}")
            dependents[dep].append(task.id)
            count += 1
        indegree[task.id] = count

    ready = sorted(task_id for task_id, deg in indegree.items() if deg == 0)
    order: list[Task] = []
    while ready:
        task_id = ready.pop(0)
        order.append(graph[task_id])
        newly_ready = []
        for child in dependents[task_id]:
            indegree[child] -= 1
            if indegree[child] == 0:
                newly_ready.append(child)
        if newly_ready:
            ready = sorted(ready + newly_ready)
    if len(order) != len(graph):
        unreached = sorted(set(graph) - {task.id for task in order})
        raise GraphError(f"dependency cycle involving: {', '.join(unreached)}")
    return order


def _lookup(store: ArtifactStore | None, task: Task, keyer):
    if store is None:
        return None, _MISS
    key = store.key_for(task.stage, **keyer(task))
    return key, store.get(key, _MISS)


def _run_whole_graph(graph, order, results, store, backend, context):
    """Drive a ``whole_graph`` backend: probe the cache for every node
    up front (deterministic order, parent-side counters), hand the
    unresolved remainder to the backend in one call."""
    metrics, tracer = context.metrics, context.tracer
    pending: list[Task] = []
    for task in order:
        if task.id in results:
            continue
        _, cached = _lookup(store, task, context.keyer)
        if cached is not _MISS:
            results[task.id] = cached
            if metrics is not None:
                metrics.count("engine_cache", tag="hit", label="outcome")
            if tracer is not None:
                tracer.add_span(task.id, task.stage, tracer.now(), 0.0,
                                {"outcome": "hit"})
            continue
        if metrics is not None and store is not None:
            metrics.count("engine_cache", tag="miss", label="outcome")
        pending.append(task)
    if pending:
        backend.start(context)
        try:
            results.update(
                backend.execute_graph(graph, pending, dict(results), context)
            )
        finally:
            backend.shutdown()
    return results


def run_graph(
    graph: dict[str, Task],
    workers: int = 1,
    store: ArtifactStore | None = None,
    preloaded: dict[str, Any] | None = None,
    runner=run_stage,
    keyer=key_fields,
    backend=None,
    on_timing=None,
    stop=None,
    metrics=None,
    tracer=None,
) -> dict[str, Any]:
    """Execute *graph*; returns ``{task_id: result}`` for every node.

    Nodes whose ids appear in *preloaded* are taken as already resolved
    (no store lookup, no execution) — the engine seeds these from its
    in-process memo.  *runner* and *keyer* default to the experiment
    pipeline's stage executor and content-address recipe; tests (or
    future non-pipeline graphs) may substitute any picklable pair.

    *backend* selects where stages run: an
    :class:`~repro.engine.backends.ExecutionBackend` instance, a
    registered name (``inline``/``thread``/``process``/``shard``), or
    ``None`` for the default (``$REPRO_BACKEND``, else inline when
    ``workers <= 1``, else the process pool).

    *on_timing* — ``callable(stage, seconds)`` — observes each executed
    node's submit-to-completion wall-clock (cache hits are never
    reported).  The same measurement lands in the provenance sidecar of
    every parent-persisted put; worker-persisting backends record their
    own (exact, worker-side) seconds instead.  Whole-graph backends
    (``shard``) time inside their workers only.

    *stop* — ``callable() -> bool`` — polled before each dispatch; once
    true the scheduler submits nothing further, drains what is already
    in flight (persisting the results), and returns the partial result
    map.  This is the graceful-drain hook SIGTERM handling is built on.

    *metrics* — a :class:`repro.obs.MetricsRegistry` — collects cache
    probe outcomes, executed-stage counts, store-op deltas, and
    (volatile) ready-queue depth and dispatch latency.  *tracer* — a
    :class:`repro.obs.Tracer` — records one span per graph node
    (category = stage, cache outcome in ``args``) plus a root
    ``run_graph`` span; shard workers report their own spans, which the
    backend remaps onto this tracer's timeline.  The store-op and
    cache-probe accounting is parent-side and therefore identical
    across backends for the same graph and store state.
    """
    order = topological_order(graph)
    results: dict[str, Any] = {
        task_id: value for task_id, value in (preloaded or {}).items()
        if task_id in graph
    }
    if not graph:
        return results
    if backend is None and len(graph) <= 1:
        # Nothing to fan out; don't pay pool startup for one node.  An
        # explicit backend choice is honored even here.
        backend = "inline"
    backend = resolve_backend(backend, workers=workers)
    if tracer is not None:
        # Worker threads record exact in-worker stage spans; the wrapper
        # degrades to the bare runner under pickling (process/shard),
        # where the parent-side dispatch span or the worker's own tracer
        # covers the node instead.
        from repro.obs.trace import TracedRunner
        runner = TracedRunner(tracer, runner)
    context = ExecutionContext(store=store, runner=runner, keyer=keyer,
                               metrics=metrics, tracer=tracer)
    stats_before = (store.stats.as_dict()
                    if metrics is not None and store is not None else None)
    root_start = tracer.now() if tracer is not None else 0.0

    try:
        if backend.whole_graph:
            results = _run_whole_graph(graph, order, results, store, backend,
                                       context)
        else:
            results = _run_submitting(graph, results, store, backend, context,
                                      on_timing=on_timing, stop=stop)
        if (store is not None and backend.persists
                and store.max_bytes is not None):
            # Workers write uncapped (see backends.local/shard); settle
            # the size cap once now that the run is complete.
            store.evict(max_bytes=store.max_bytes)
    finally:
        if tracer is not None:
            tracer.add_span("run_graph", "scheduler", root_start,
                            tracer.now() - root_start,
                            {"nodes": len(graph), "backend": backend.name})
        if stats_before is not None:
            for op, value in store.stats.as_dict().items():
                delta = value - stats_before.get(op, 0)
                if delta:
                    metrics.count("engine_store_ops", delta, tag=op,
                                  label="op")
    return results


def _run_submitting(graph, results, store, backend, context,
                    on_timing=None, stop=None):
    """The generic submit/wait loop shared by all per-task backends."""
    keyer = context.keyer
    metrics, tracer = context.metrics, context.tracer
    indegree = {task.id: len(task.deps) for task in graph.values()}
    dependents: dict[str, list[str]] = {task_id: [] for task_id in graph}
    for task in graph.values():
        for dep in task.deps:
            dependents[dep].append(task.id)

    ready = sorted(task_id for task_id, deg in indegree.items() if deg == 0)
    pending: dict = {}

    def resolve(task_id: str, value: Any) -> None:
        results[task_id] = value
        for child in dependents[task_id]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)

    def harvest(done) -> None:
        for future in done:
            task_id, key, submitted_at = pending.pop(future)
            value = future.result()
            elapsed = time.perf_counter() - submitted_at
            if store is not None:
                if backend.persists:
                    # The worker performed the actual write; account for
                    # it here so the parent's counters cover the run.
                    store.stats.puts += 1
                else:
                    store.put(key, value, stage=graph[task_id].stage,
                              seconds=elapsed)
            if on_timing is not None:
                on_timing(graph[task_id].stage, elapsed)
            if metrics is not None:
                stage = graph[task_id].stage
                metrics.count("engine_stages_executed", tag=stage,
                              label="stage")
                workload = graph[task_id].payload.get("workload")
                if workload:
                    metrics.count("engine_workload_stages", tag=workload,
                                  label="workload")
                metrics.observe_latency("engine_dispatch_seconds", elapsed,
                                        tags={"stage": stage})
            if tracer is not None:
                tracer.add_span(task_id, graph[task_id].stage,
                                submitted_at - tracer.epoch_perf, elapsed,
                                {"outcome": "executed"})
            resolve(task_id, value)
        ready.sort()

    backend.start(context)
    try:
        while ready or pending:
            # Drain the ready list: preloaded nodes and cache hits
            # resolve immediately (and may ready further nodes), misses
            # go to the backend.
            while ready:
                if stop is not None and stop():
                    # Draining: dispatch nothing further — not even
                    # free cache hits, whose resolution would only
                    # ready more work we are about to abandon.
                    ready.clear()
                    break
                task_id = ready.pop(0)
                task = graph[task_id]
                if task_id in results:
                    resolve(task_id, results[task_id])
                    ready.sort()
                    continue
                key, cached = _lookup(store, task, keyer)
                if cached is not _MISS:
                    if metrics is not None:
                        metrics.count("engine_cache", tag="hit",
                                      label="outcome")
                    if tracer is not None:
                        tracer.add_span(task_id, task.stage, tracer.now(),
                                        0.0, {"outcome": "hit"})
                    resolve(task_id, cached)
                    ready.sort()
                    continue
                if metrics is not None and store is not None:
                    metrics.count("engine_cache", tag="miss", label="outcome")
                deps = {dep: results[dep] for dep in task.deps}
                if metrics is not None:
                    # Queue depth at dispatch (this task included);
                    # interleaving-dependent, hence volatile.
                    metrics.observe("engine_ready_depth", len(ready) + 1,
                                    volatile=True)
                # Clock starts before submit: synchronous backends
                # (inline) do the work inside the call itself.
                submitted_at = time.perf_counter()
                future = backend.submit(task, deps)
                pending[future] = (task_id, key, submitted_at)
                if future.done():
                    # Synchronous backends complete in submit; harvest
                    # now so execution keeps the sorted-ready order.
                    harvest((future,))
            if not pending:
                break
            harvest(backend.wait(pending))
    finally:
        backend.shutdown()
    return results
