"""Topological DAG scheduler with optional multiprocessing fan-out.

:func:`run_graph` executes a ``{task_id: Task}`` graph in dependency
order.  With ``workers=1`` everything runs inline in deterministic
(Kahn + sorted-ready) order.  With ``workers>1`` independent ready
nodes are fanned out over a process pool; dependency results are
shipped to workers by pickle and each worker writes what it computes
into the shared on-disk store, so artifacts persist no matter which
process produced them.

Cache discipline: the parent consults the store once per node before
dispatch (a hit skips execution entirely and counts toward
``store.stats.hits``; a miss counts toward ``misses``), so a warm run
reports zero misses and performs zero compiles/runs.  Workers use their
own store handle only to persist results, keeping the parent's counters
an accurate account of the whole run.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any

from repro.engine.store import ArtifactStore, toolchain_fingerprint
from repro.engine.tasks import Task, key_fields, run_stage

_MISS = object()


class GraphError(ValueError):
    """Raised for cyclic graphs or dangling dependency references."""


def topological_order(graph: dict[str, Task]) -> list[Task]:
    """Deterministic topological order (Kahn's algorithm, sorted ties)."""
    indegree: dict[str, int] = {}
    dependents: dict[str, list[str]] = {task_id: [] for task_id in graph}
    for task in graph.values():
        count = 0
        for dep in task.deps:
            if dep not in graph:
                raise GraphError(f"{task.id} depends on unknown task {dep!r}")
            dependents[dep].append(task.id)
            count += 1
        indegree[task.id] = count

    ready = sorted(task_id for task_id, deg in indegree.items() if deg == 0)
    order: list[Task] = []
    while ready:
        task_id = ready.pop(0)
        order.append(graph[task_id])
        newly_ready = []
        for child in dependents[task_id]:
            indegree[child] -= 1
            if indegree[child] == 0:
                newly_ready.append(child)
        if newly_ready:
            ready = sorted(ready + newly_ready)
    if len(order) != len(graph):
        unreached = sorted(set(graph) - {task.id for task in order})
        raise GraphError(f"dependency cycle involving: {', '.join(unreached)}")
    return order


def _lookup(store: ArtifactStore | None, task: Task, keyer):
    if store is None:
        return None, _MISS
    key = store.key_for(task.stage, **keyer(task))
    return key, store.get(key, _MISS)


def _worker_execute(task: Task, deps: dict[str, Any], store_spec,
                    runner, keyer):
    """Run one task in a pool worker, persisting the result if possible."""
    value = runner(task, deps)
    if store_spec is not None:
        root, schema_version, toolchain = store_spec
        # max_bytes deliberately stays None here: per-task stores would
        # rescan the objects directory on every put and run concurrent
        # LRU sweeps; the parent enforces the cap once per run instead.
        store = ArtifactStore(root=root, schema_version=schema_version,
                              toolchain=toolchain, max_bytes=None)
        store.put(store.key_for(task.stage, **keyer(task)), value)
    return value


def _run_inline(order: list[Task], store: ArtifactStore | None,
                results: dict[str, Any], runner, keyer) -> dict[str, Any]:
    for task in order:
        if task.id in results:
            continue
        key, cached = _lookup(store, task, keyer)
        if cached is not _MISS:
            results[task.id] = cached
            continue
        deps = {dep: results[dep] for dep in task.deps}
        value = runner(task, deps)
        if store is not None:
            store.put(key, value)
        results[task.id] = value
    return results


def run_graph(
    graph: dict[str, Task],
    workers: int = 1,
    store: ArtifactStore | None = None,
    preloaded: dict[str, Any] | None = None,
    runner=run_stage,
    keyer=key_fields,
) -> dict[str, Any]:
    """Execute *graph*; returns ``{task_id: result}`` for every node.

    Nodes whose ids appear in *preloaded* are taken as already resolved
    (no store lookup, no execution) — the engine seeds these from its
    in-process memo.  *runner* and *keyer* default to the experiment
    pipeline's stage executor and content-address recipe; tests (or
    future non-pipeline graphs) may substitute any picklable pair.
    """
    order = topological_order(graph)
    results: dict[str, Any] = {
        task_id: value for task_id, value in (preloaded or {}).items()
        if task_id in graph
    }
    if workers <= 1 or len(graph) <= 1:
        return _run_inline(order, store, results, runner, keyer)

    indegree = {task.id: len(task.deps) for task in graph.values()}
    dependents: dict[str, list[str]] = {task_id: [] for task_id in graph}
    for task in graph.values():
        for dep in task.deps:
            dependents[dep].append(task.id)

    def resolve(task_id: str, value: Any, ready: list[str]) -> None:
        results[task_id] = value
        for child in dependents[task_id]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)

    ready = sorted(task_id for task_id, deg in indegree.items() if deg == 0)
    futures: dict = {}
    ctx = multiprocessing.get_context()
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        while ready or futures:
            # Drain the ready list: preloaded nodes and cache hits
            # resolve immediately (and may ready further nodes), misses
            # go to the pool.
            while ready:
                task_id = ready.pop(0)
                task = graph[task_id]
                if task_id in results:
                    resolve(task_id, results[task_id], ready)
                    ready.sort()
                    continue
                _, cached = _lookup(store, task, keyer)
                if cached is not _MISS:
                    resolve(task_id, cached, ready)
                    ready.sort()
                    continue
                deps = {dep: results[dep] for dep in task.deps}
                # Resolve the toolchain digest here so workers don't
                # each re-hash the whole package (and can't diverge if
                # a source file changes mid-run).
                store_spec = None if store is None else (
                    store.root, store.schema_version,
                    store.toolchain or toolchain_fingerprint())
                future = pool.submit(_worker_execute, task, deps, store_spec,
                                     runner, keyer)
                futures[future] = task_id
            if not futures:
                break
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                task_id = futures.pop(future)
                value = future.result()
                if store is not None:
                    # The worker performed the actual write; account for
                    # it here so the parent's counters cover the run.
                    store.stats.puts += 1
                resolve(task_id, value, ready)
            ready.sort()
    if store is not None and store.max_bytes is not None:
        # Workers write uncapped (see _worker_execute); settle the size
        # cap once now that the run is complete.
        store.evict(max_bytes=store.max_bytes)
    return results
