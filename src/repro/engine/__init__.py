"""repro.engine — parallel experiment engine with a persistent store.

Three pieces:

* :mod:`repro.engine.store` — content-addressed on-disk artifact cache
  (``~/.cache/repro`` by default, ``REPRO_CACHE_DIR`` to relocate,
  ``repro-cache`` CLI to inspect/clear);
* :mod:`repro.engine.tasks` / :mod:`repro.engine.scheduler` — the
  paper's pipeline as a DAG of pure stages plus a topological scheduler
  that drives a pluggable execution backend;
* :mod:`repro.engine.backends` — where stages run: ``inline``,
  ``thread``, ``process``, ``shard`` (isolated subprocess shards
  synced through the store), or ``auto`` (cost-routed composite:
  cheap replays to threads, heavy compiles to processes), selected via
  ``--backend`` / ``REPRO_BACKEND`` / ``Engine(backend=...)``;
* :mod:`repro.engine.api` — the :class:`Engine` facade that
  ``ExperimentRunner`` and the report/benchmark harnesses delegate to.
"""

from repro.engine.api import DEFAULT_TARGET_INSTRUCTIONS, Engine
from repro.engine.backends import (
    AutoBackend,
    BACKEND_ENV,
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    SubprocessShardBackend,
    ThreadBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.engine.scheduler import GraphError, run_graph, topological_order
from repro.engine.store import (
    CACHE_DIR_ENV,
    SCHEMA_VERSION,
    ArtifactStore,
    StoreStats,
    canonical_key,
    default_cache_root,
    source_fingerprint,
)
from repro.engine.tasks import Task, build_pipeline_graph

__all__ = [
    "ArtifactStore",
    "AutoBackend",
    "BACKEND_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_TARGET_INSTRUCTIONS",
    "Engine",
    "ExecutionBackend",
    "GraphError",
    "InlineBackend",
    "ProcessPoolBackend",
    "SCHEMA_VERSION",
    "StoreStats",
    "SubprocessShardBackend",
    "Task",
    "ThreadBackend",
    "backend_names",
    "build_pipeline_graph",
    "canonical_key",
    "default_cache_root",
    "register_backend",
    "resolve_backend",
    "run_graph",
    "source_fingerprint",
    "topological_order",
]
