"""Content-addressed on-disk artifact store.

Every pipeline artifact (compile results, execution traces, statistical
profiles, synthesized clones) is keyed by the SHA-256 of a canonical
JSON record: the source fingerprint, ISA, optimization level, pipeline
stage, stage-specific parameters, and the engine schema version.  Equal
inputs therefore map to the same on-disk entry across processes and
across runs, which is what makes warm-cache report generation skip every
compile/run/profile/synthesize step.

Layout: ``<root>/objects/<key[:2]>/<key>.pkl`` with atomic writes
(temp file + ``os.replace``), so concurrent writers — the scheduler's
worker processes — can race on the same key safely: last write wins and
both wrote identical bytes.

The root directory resolves, in order: explicit ``root=`` argument, the
``REPRO_CACHE_DIR`` environment variable, ``$XDG_CACHE_HOME/repro``,
``~/.cache/repro``.

``repro-cache`` (console script, also ``python -m repro.engine.store``)
exposes ``info`` / ``clear`` / ``evict`` against that same resolution.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

#: Bump whenever the pickled artifact layout or the key recipe changes;
#: old entries then become unreachable instead of silently wrong.
SCHEMA_VERSION = 1

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISS = object()


def default_cache_root() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def source_fingerprint(source: str) -> str:
    """SHA-256 of a source text, the ``source_sha`` field of every key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


_TOOLCHAIN_FINGERPRINT: str | None = None


def toolchain_fingerprint() -> str:
    """SHA-256 over the ``repro`` package sources (computed once).

    Folded into every key so artifacts produced by one version of the
    compiler/simulator/synthesizer never satisfy lookups from another —
    the same reason ccache hashes the compiler binary.
    """
    global _TOOLCHAIN_FINGERPRINT
    if _TOOLCHAIN_FINGERPRINT is None:
        import repro

        package_root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _TOOLCHAIN_FINGERPRINT = digest.hexdigest()
    return _TOOLCHAIN_FINGERPRINT


def canonical_key(fields: dict) -> str:
    """SHA-256 of the canonical JSON encoding of *fields*.

    Field order never matters (keys are sorted) and only JSON-stable
    types should appear in *fields*; anything else is stringified, which
    keeps the recipe total but places the burden of stability on callers.
    """
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss/write/eviction counters for one store handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def merge(self, other: "StoreStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.evictions += other.evictions

    def reset(self) -> None:
        self.hits = self.misses = self.puts = self.evictions = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


@dataclass
class ArtifactStore:
    """Persistent pickle store addressed by canonical content keys."""

    root: Path | str | None = None
    schema_version: int = SCHEMA_VERSION
    toolchain: str | None = None
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root).expanduser() if self.root else \
            default_cache_root()

    # -- keys --------------------------------------------------------------

    def key_for(self, stage: str, **fields) -> str:
        """Canonical key for *stage* under this store's schema version
        and toolchain fingerprint (default: the live ``repro`` package).
        """
        record = {
            "schema": self.schema_version,
            "stage": stage,
            "toolchain": self.toolchain or toolchain_fingerprint(),
        }
        record.update(fields)
        return canonical_key(record)

    def path_for(self, key: str) -> Path:
        return Path(self.root) / "objects" / key[:2] / f"{key}.pkl"

    # -- access ------------------------------------------------------------

    def get(self, key: str, default=None):
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # A truncated or stale entry is a miss; drop it so the slot
            # gets rewritten rather than failing every future lookup.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return default
        try:
            # Freshen mtime so evict()'s LRU order reflects reads, not
            # just writes.
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, key: str, value) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        return path

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    # -- maintenance ---------------------------------------------------------

    def entries(self):
        """Yield ``(path, size_bytes, mtime)`` for every stored object."""
        objects = Path(self.root) / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.pkl")):
            try:
                stat = path.stat()
            except FileNotFoundError:  # racing eviction
                continue
            yield path, stat.st_size, stat.st_mtime

    def info(self) -> dict:
        count = 0
        total = 0
        for _, size, _ in self.entries():
            count += 1
            total += size
        return {
            "root": str(self.root),
            "schema_version": self.schema_version,
            "entries": count,
            "total_bytes": total,
            "stats": self.stats.as_dict(),
        }

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path, _, _ in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        self.stats.evictions += removed
        return removed

    def evict(self, max_bytes: int | None = None,
              max_entries: int | None = None) -> int:
        """LRU-evict (oldest mtime first) until both limits hold."""
        entries = sorted(self.entries(), key=lambda item: item[2])
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        removed = 0
        for path, size, _ in entries:
            over_bytes = max_bytes is not None and total > max_bytes
            over_entries = max_entries is not None and count > max_entries
            if not (over_bytes or over_entries):
                break
            path.unlink(missing_ok=True)
            total -= size
            count -= 1
            removed += 1
        self.stats.evictions += removed
        return removed


def main(argv=None) -> int:
    """``repro-cache`` — inspect and manage the artifact store."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Inspect and manage the repro content-addressed "
                    "artifact store.",
    )
    parser.add_argument(
        "--cache-dir",
        help=f"store root (default: ${CACHE_DIR_ENV} or ~/.cache/repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="print store location, entry count, size")
    sub.add_parser("clear", help="remove every cached artifact")
    evict = sub.add_parser("evict", help="LRU-evict down to the given limits")
    evict.add_argument("--max-bytes", type=int, default=None)
    evict.add_argument("--max-entries", type=int, default=None)
    args = parser.parse_args(argv)

    store = ArtifactStore(root=args.cache_dir)
    if args.command == "info":
        info = store.info()
        print(f"root:           {info['root']}")
        print(f"schema version: {info['schema_version']}")
        print(f"entries:        {info['entries']}")
        print(f"total bytes:    {info['total_bytes']}")
    elif args.command == "clear":
        print(f"removed {store.clear()} entries from {store.root}")
    elif args.command == "evict":
        if args.max_bytes is None and args.max_entries is None:
            parser.error("evict requires --max-bytes and/or --max-entries")
        removed = store.evict(max_bytes=args.max_bytes,
                              max_entries=args.max_entries)
        print(f"evicted {removed} entries from {store.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
